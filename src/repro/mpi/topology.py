"""Process topologies: Cartesian grids and node groups.

Stencil codes — the scientific workloads MPI bindings exist to serve —
arrange ranks on a grid and exchange halos with neighbours.  This module
provides the topology bookkeeping: rank <-> coordinate mapping, neighbour
shifts with optional periodic wrap-around, and sub-grid extraction.

It also owns the *node-group* model used by the scale-out fabric
(:mod:`repro.mpi.fabric`): a :class:`GroupMap` partitions the world into
contiguous rank blocks standing in for nodes.  Ranks inside a group are
assumed to share a cheap channel (SHM rings, or just locality), the
first rank of each group is its *leader*, and the two-level collectives
(:mod:`repro.mpi.collectives.hierarchy`) route inter-group traffic
through leaders only — the MVAPICH2 SMP-aware design the source paper
benchmarks against.
"""

from __future__ import annotations

import bisect
import math
import os
from dataclasses import dataclass
from typing import Sequence

from .comm import Comm
from .constants import PROC_NULL
from .exceptions import MPIError

#: Environment variable carrying the group spec to every rank process.
ENV_GROUPS = "OMBPY_GROUPS"


class TopologyError(MPIError):
    """Invalid topology construction or query."""


def dims_create(nnodes: int, ndims: int) -> list[int]:
    """Balanced grid dimensions for ``nnodes`` ranks (MPI_Dims_create).

    Produces non-increasing dimensions whose product is ``nnodes``, as
    close to a hypercube as the factorization allows.
    """
    if nnodes < 1 or ndims < 1:
        raise TopologyError(
            f"need nnodes >= 1 and ndims >= 1, got {nnodes}, {ndims}"
        )
    dims = [1] * ndims
    remaining = nnodes
    # Repeatedly peel the largest prime factor onto the smallest dim.
    factors: list[int] = []
    n = remaining
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for factor in sorted(factors, reverse=True):
        smallest = min(range(ndims), key=dims.__getitem__)
        dims[smallest] *= factor
    return sorted(dims, reverse=True)


@dataclass(frozen=True)
class CartTopology:
    """Geometry of a Cartesian grid (no communicator attached)."""

    dims: tuple[int, ...]
    periods: tuple[bool, ...]

    def __post_init__(self) -> None:
        if not self.dims:
            raise TopologyError("empty dimension list")
        if any(d < 1 for d in self.dims):
            raise TopologyError(f"non-positive dimension in {self.dims}")
        if len(self.periods) != len(self.dims):
            raise TopologyError(
                f"{len(self.periods)} periods for {len(self.dims)} dims"
            )

    @property
    def size(self) -> int:
        return math.prod(self.dims)

    @property
    def ndims(self) -> int:
        return len(self.dims)

    def coords(self, rank: int) -> tuple[int, ...]:
        """Row-major rank -> coordinates (MPI_Cart_coords)."""
        if not 0 <= rank < self.size:
            raise TopologyError(f"rank {rank} outside grid of {self.size}")
        out = []
        for extent in reversed(self.dims):
            out.append(rank % extent)
            rank //= extent
        return tuple(reversed(out))

    def rank(self, coords: Sequence[int]) -> int:
        """Coordinates -> rank (MPI_Cart_rank); wraps periodic dims."""
        if len(coords) != self.ndims:
            raise TopologyError(
                f"{len(coords)} coordinates for {self.ndims} dims"
            )
        rank = 0
        for dim, (c, extent, periodic) in enumerate(
            zip(coords, self.dims, self.periods)
        ):
            if periodic:
                c %= extent
            elif not 0 <= c < extent:
                raise TopologyError(
                    f"coordinate {c} outside non-periodic dim {dim} "
                    f"of extent {extent}"
                )
            rank = rank * extent + c
        return rank

    def shift(
        self, rank: int, direction: int, disp: int = 1
    ) -> tuple[int, int]:
        """(source, dest) ranks for a shift (MPI_Cart_shift).

        Off-grid neighbours in non-periodic dimensions are ``PROC_NULL``.
        """
        if not 0 <= direction < self.ndims:
            raise TopologyError(
                f"direction {direction} outside {self.ndims} dims"
            )
        base = list(self.coords(rank))

        def neighbour(offset: int) -> int:
            c = list(base)
            c[direction] += offset
            extent = self.dims[direction]
            if self.periods[direction]:
                c[direction] %= extent
            elif not 0 <= c[direction] < extent:
                return PROC_NULL
            return self.rank(c)

        return neighbour(-disp), neighbour(+disp)


class CartComm:
    """A communicator with Cartesian topology (MPI_Cart_create)."""

    def __init__(
        self,
        comm: Comm,
        dims: Sequence[int],
        periods: Sequence[bool] | None = None,
    ) -> None:
        topology = CartTopology(
            tuple(dims),
            tuple(periods) if periods is not None
            else tuple(False for _ in dims),
        )
        if topology.size > comm.size:
            raise TopologyError(
                f"grid of {topology.size} ranks exceeds communicator "
                f"size {comm.size}"
            )
        self.topology = topology
        # Ranks beyond the grid are excluded (MPI returns COMM_NULL).
        sub = comm.Split(
            0 if comm.rank < topology.size else -1, comm.rank
        )
        self._comm = sub  # None for excluded ranks

    @property
    def comm(self) -> Comm | None:
        """The grid communicator, or None if this rank is off-grid."""
        return self._comm

    @property
    def rank(self) -> int:
        self._check_member()
        assert self._comm is not None
        return self._comm.rank

    def _check_member(self) -> None:
        if self._comm is None:
            raise TopologyError("this rank is not part of the grid")

    def Get_coords(self, rank: int | None = None) -> tuple[int, ...]:
        self._check_member()
        return self.topology.coords(self.rank if rank is None else rank)

    def Get_cart_rank(self, coords: Sequence[int]) -> int:
        return self.topology.rank(coords)

    def Shift(self, direction: int, disp: int = 1) -> tuple[int, int]:
        """(source, dest) for this rank's shift along ``direction``."""
        self._check_member()
        return self.topology.shift(self.rank, direction, disp)

    def neighbor_sendrecv(
        self,
        payload: bytes,
        direction: int,
        disp: int,
        tag: int,
        max_bytes: int,
    ) -> bytes:
        """Halo step: send ``disp``-ward, receive from the opposite side."""
        self._check_member()
        assert self._comm is not None
        source, dest = self.Shift(direction, disp)
        data, _st = self._comm.sendrecv_bytes(
            payload, dest, tag, source, tag, max_bytes
        )
        return data


# ---------------------------------------------------------------------------
# Node groups (scale-out fabric)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class GroupMap:
    """Partition of the world into contiguous rank blocks ("nodes").

    Group ``g`` owns ranks ``[start(g), start(g) + sizes[g])``; its
    *leader* is the first rank of the block.  Contiguity is a deliberate
    restriction: it matches how launchers place ranks on nodes (block
    placement) and makes every query O(log G) bisection instead of a
    rank->group table that itself scales with N.
    """

    sizes: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.sizes:
            raise TopologyError("empty group list")
        if any(s < 1 for s in self.sizes):
            raise TopologyError(f"non-positive group size in {self.sizes}")
        starts = []
        total = 0
        for s in self.sizes:
            starts.append(total)
            total += s
        object.__setattr__(self, "_starts", tuple(starts))

    # -- shape -----------------------------------------------------------
    @property
    def world_size(self) -> int:
        return sum(self.sizes)

    @property
    def n_groups(self) -> int:
        return len(self.sizes)

    @property
    def max_group_size(self) -> int:
        return max(self.sizes)

    # -- queries ---------------------------------------------------------
    def group_of(self, world_rank: int) -> int:
        """Index of the group owning ``world_rank``."""
        if not 0 <= world_rank < self.world_size:
            raise TopologyError(
                f"rank {world_rank} outside world of {self.world_size}"
            )
        return bisect.bisect_right(self._starts, world_rank) - 1

    def members(self, group: int) -> range:
        """World ranks of ``group``, in order."""
        if not 0 <= group < self.n_groups:
            raise TopologyError(
                f"group {group} outside {self.n_groups} groups"
            )
        start = self._starts[group]
        return range(start, start + self.sizes[group])

    def leader_of(self, group: int) -> int:
        """The group's leader: its first world rank."""
        return self.members(group)[0]

    def leaders(self) -> list[int]:
        """All group leaders, in group order."""
        return [self._starts[g] for g in range(self.n_groups)]

    def is_leader(self, world_rank: int) -> bool:
        return self.leader_of(self.group_of(world_rank)) == world_rank

    def spec(self) -> str:
        """Normalized spec string that round-trips through the parser."""
        if len(set(self.sizes)) == 1:
            return f"{self.n_groups}x{self.sizes[0]}"
        return ",".join(str(s) for s in self.sizes)


def parse_groups(spec: str, world_size: int) -> GroupMap:
    """Parse a ``--groups``/``OMBPY_GROUPS`` spec for ``world_size`` ranks.

    Accepted forms:

    * ``"GxS"`` — G groups of S ranks each; ``G*S`` must equal the world
      size (e.g. ``4x8`` for 32 ranks);
    * ``"a,b,c"`` — explicit per-group sizes summing to the world size;
    * ``"S"`` (plain integer) — groups of S ranks, last group ragged;
    * ``"auto"`` — near-square split (group size ≈ √N), the balance
      point where per-rank fd cost O(group_size + n_groups) is minimal.
    """
    text = spec.strip().lower()
    if world_size < 1:
        raise TopologyError(f"need world_size >= 1, got {world_size}")
    if not text:
        raise TopologyError("empty group spec")
    if text == "auto":
        gsize = max(1, math.isqrt(world_size))
        return parse_groups(str(gsize), world_size)
    try:
        if "x" in text:
            g_str, s_str = text.split("x")
            g, s = int(g_str), int(s_str)
            if g < 1 or s < 1:
                raise TopologyError(f"non-positive group shape {spec!r}")
            if g * s != world_size:
                raise TopologyError(
                    f"group spec {spec!r} covers {g * s} ranks but the "
                    f"world has {world_size}"
                )
            return GroupMap(tuple([s] * g))
        if "," in text:
            sizes = tuple(int(part) for part in text.split(","))
            if sum(sizes) != world_size:
                raise TopologyError(
                    f"group sizes {spec!r} sum to {sum(sizes)} but the "
                    f"world has {world_size}"
                )
            return GroupMap(sizes)
        gsize = int(text)
    except ValueError as exc:
        raise TopologyError(f"unparseable group spec {spec!r}") from exc
    if gsize < 1:
        raise TopologyError(f"non-positive group size in {spec!r}")
    gsize = min(gsize, world_size)
    full, rest = divmod(world_size, gsize)
    sizes = [gsize] * full + ([rest] if rest else [])
    return GroupMap(tuple(sizes))


def group_map_from_env(world_size: int) -> GroupMap | None:
    """The launch's group map, or ``None`` when running flat."""
    spec = os.environ.get(ENV_GROUPS, "").strip()
    if not spec:
        return None
    return parse_groups(spec, world_size)
