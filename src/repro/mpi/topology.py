"""Cartesian process topologies (MPI_Cart_create family).

Stencil codes — the scientific workloads MPI bindings exist to serve —
arrange ranks on a grid and exchange halos with neighbours.  This module
provides the topology bookkeeping: rank <-> coordinate mapping, neighbour
shifts with optional periodic wrap-around, and sub-grid extraction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from .comm import Comm
from .constants import PROC_NULL
from .exceptions import MPIError


class TopologyError(MPIError):
    """Invalid topology construction or query."""


def dims_create(nnodes: int, ndims: int) -> list[int]:
    """Balanced grid dimensions for ``nnodes`` ranks (MPI_Dims_create).

    Produces non-increasing dimensions whose product is ``nnodes``, as
    close to a hypercube as the factorization allows.
    """
    if nnodes < 1 or ndims < 1:
        raise TopologyError(
            f"need nnodes >= 1 and ndims >= 1, got {nnodes}, {ndims}"
        )
    dims = [1] * ndims
    remaining = nnodes
    # Repeatedly peel the largest prime factor onto the smallest dim.
    factors: list[int] = []
    n = remaining
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for factor in sorted(factors, reverse=True):
        smallest = min(range(ndims), key=dims.__getitem__)
        dims[smallest] *= factor
    return sorted(dims, reverse=True)


@dataclass(frozen=True)
class CartTopology:
    """Geometry of a Cartesian grid (no communicator attached)."""

    dims: tuple[int, ...]
    periods: tuple[bool, ...]

    def __post_init__(self) -> None:
        if not self.dims:
            raise TopologyError("empty dimension list")
        if any(d < 1 for d in self.dims):
            raise TopologyError(f"non-positive dimension in {self.dims}")
        if len(self.periods) != len(self.dims):
            raise TopologyError(
                f"{len(self.periods)} periods for {len(self.dims)} dims"
            )

    @property
    def size(self) -> int:
        return math.prod(self.dims)

    @property
    def ndims(self) -> int:
        return len(self.dims)

    def coords(self, rank: int) -> tuple[int, ...]:
        """Row-major rank -> coordinates (MPI_Cart_coords)."""
        if not 0 <= rank < self.size:
            raise TopologyError(f"rank {rank} outside grid of {self.size}")
        out = []
        for extent in reversed(self.dims):
            out.append(rank % extent)
            rank //= extent
        return tuple(reversed(out))

    def rank(self, coords: Sequence[int]) -> int:
        """Coordinates -> rank (MPI_Cart_rank); wraps periodic dims."""
        if len(coords) != self.ndims:
            raise TopologyError(
                f"{len(coords)} coordinates for {self.ndims} dims"
            )
        rank = 0
        for dim, (c, extent, periodic) in enumerate(
            zip(coords, self.dims, self.periods)
        ):
            if periodic:
                c %= extent
            elif not 0 <= c < extent:
                raise TopologyError(
                    f"coordinate {c} outside non-periodic dim {dim} "
                    f"of extent {extent}"
                )
            rank = rank * extent + c
        return rank

    def shift(
        self, rank: int, direction: int, disp: int = 1
    ) -> tuple[int, int]:
        """(source, dest) ranks for a shift (MPI_Cart_shift).

        Off-grid neighbours in non-periodic dimensions are ``PROC_NULL``.
        """
        if not 0 <= direction < self.ndims:
            raise TopologyError(
                f"direction {direction} outside {self.ndims} dims"
            )
        base = list(self.coords(rank))

        def neighbour(offset: int) -> int:
            c = list(base)
            c[direction] += offset
            extent = self.dims[direction]
            if self.periods[direction]:
                c[direction] %= extent
            elif not 0 <= c[direction] < extent:
                return PROC_NULL
            return self.rank(c)

        return neighbour(-disp), neighbour(+disp)


class CartComm:
    """A communicator with Cartesian topology (MPI_Cart_create)."""

    def __init__(
        self,
        comm: Comm,
        dims: Sequence[int],
        periods: Sequence[bool] | None = None,
    ) -> None:
        topology = CartTopology(
            tuple(dims),
            tuple(periods) if periods is not None
            else tuple(False for _ in dims),
        )
        if topology.size > comm.size:
            raise TopologyError(
                f"grid of {topology.size} ranks exceeds communicator "
                f"size {comm.size}"
            )
        self.topology = topology
        # Ranks beyond the grid are excluded (MPI returns COMM_NULL).
        sub = comm.Split(
            0 if comm.rank < topology.size else -1, comm.rank
        )
        self._comm = sub  # None for excluded ranks

    @property
    def comm(self) -> Comm | None:
        """The grid communicator, or None if this rank is off-grid."""
        return self._comm

    @property
    def rank(self) -> int:
        self._check_member()
        assert self._comm is not None
        return self._comm.rank

    def _check_member(self) -> None:
        if self._comm is None:
            raise TopologyError("this rank is not part of the grid")

    def Get_coords(self, rank: int | None = None) -> tuple[int, ...]:
        self._check_member()
        return self.topology.coords(self.rank if rank is None else rank)

    def Get_cart_rank(self, coords: Sequence[int]) -> int:
        return self.topology.rank(coords)

    def Shift(self, direction: int, disp: int = 1) -> tuple[int, int]:
        """(source, dest) for this rank's shift along ``direction``."""
        self._check_member()
        return self.topology.shift(self.rank, direction, disp)

    def neighbor_sendrecv(
        self,
        payload: bytes,
        direction: int,
        disp: int,
        tag: int,
        max_bytes: int,
    ) -> bytes:
        """Halo step: send ``disp``-ward, receive from the opposite side."""
        self._check_member()
        assert self._comm is not None
        source, dest = self.Shift(direction, disp)
        data, _st = self._comm.sendrecv_bytes(
            payload, dest, tag, source, tag, max_bytes
        )
        return data
