"""Reduction operations.

Each :class:`Op` reduces two same-shaped NumPy arrays elementwise.  The
collective algorithms apply ops to *typed views* of wire bytes, so ops never
see raw byte strings.  Commutativity matters: non-commutative user ops force
the tree-based reduce algorithms to combine contributions in rank order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .exceptions import OpError

Reducer = Callable[[np.ndarray, np.ndarray], np.ndarray]


@dataclass(frozen=True)
class Op:
    """A reduction operation.

    Attributes
    ----------
    name:
        MPI-style name, e.g. ``"MPI_SUM"``.
    fn:
        Callable combining two arrays; must not mutate its inputs.
    commutative:
        Whether operand order is irrelevant.  The collective layer uses this
        to decide whether rank-order must be preserved.
    """

    name: str
    fn: Reducer
    commutative: bool = True

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.fn(a, b)

    def Is_commutative(self) -> bool:
        """Return whether this op is commutative."""
        return self.commutative


def _logical_and(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.logical_and(a, b).astype(a.dtype)


def _logical_or(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.logical_or(a, b).astype(a.dtype)


def _logical_xor(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return np.logical_xor(a, b).astype(a.dtype)


def _maxloc(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """MAXLOC on structured (value, index) pairs: max value, lowest index ties."""
    out = a.copy()
    take_b = (b["f0"] > a["f0"]) | ((b["f0"] == a["f0"]) & (b["f1"] < a["f1"]))
    out[take_b] = b[take_b]
    return out


def _minloc(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """MINLOC on structured (value, index) pairs: min value, lowest index ties."""
    out = a.copy()
    take_b = (b["f0"] < a["f0"]) | ((b["f0"] == a["f0"]) & (b["f1"] < a["f1"]))
    out[take_b] = b[take_b]
    return out


SUM = Op("MPI_SUM", np.add)
PROD = Op("MPI_PROD", np.multiply)
MAX = Op("MPI_MAX", np.maximum)
MIN = Op("MPI_MIN", np.minimum)
LAND = Op("MPI_LAND", _logical_and)
LOR = Op("MPI_LOR", _logical_or)
LXOR = Op("MPI_LXOR", _logical_xor)
BAND = Op("MPI_BAND", np.bitwise_and)
BOR = Op("MPI_BOR", np.bitwise_or)
BXOR = Op("MPI_BXOR", np.bitwise_xor)
MAXLOC = Op("MPI_MAXLOC", _maxloc)
MINLOC = Op("MPI_MINLOC", _minloc)
# REPLACE keeps the second operand — used by accumulate-style operations.
REPLACE = Op("MPI_REPLACE", lambda a, b: b.copy())

_PREDEFINED: dict[str, Op] = {
    op.name: op
    for op in (
        SUM, PROD, MAX, MIN, LAND, LOR, LXOR, BAND, BOR, BXOR,
        MAXLOC, MINLOC, REPLACE,
    )
}


def lookup(name: str) -> Op:
    """Return a predefined op by MPI name; raise :class:`OpError` if unknown."""
    try:
        return _PREDEFINED[name]
    except KeyError:
        raise OpError(f"unknown reduction op {name!r}") from None


def create(fn: Reducer, commute: bool = True, name: str = "MPI_OP_USER") -> Op:
    """Create a user-defined op (the analogue of ``MPI_Op_create``)."""
    if not callable(fn):
        raise OpError("user op must be callable")
    return Op(name, fn, commutative=commute)


def predefined_names() -> list[str]:
    """Return the names of all predefined ops (stable order)."""
    return sorted(_PREDEFINED)
