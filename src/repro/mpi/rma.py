"""One-sided communication (RMA), the analogue of ``MPI_Win``.

OMB's C suite includes one-sided benchmarks (osu_put_latency &c.); the
paper's OMB-Py v1 ships point-to-point and blocking collectives and lists
the rest as planned.  This module supplies the substrate: a window
exposes a byte region of local memory; remote ranks access it with
``Put``/``Get``/``Accumulate`` without the target's code participating.

Implementation: window creation is collective and spins up one *service
thread* per rank, listening on a dedicated duplicated communicator.  Put
and Accumulate are fire-and-forget messages the target's service applies;
Get is a request/reply.  ``Fence`` drains remote completion (every origin
waits for acknowledgements of its own accesses, then barriers), which
gives the standard active-target epoch semantics; ``Lock``/``Unlock``
provide passive-target exclusive access per target rank.
"""

from __future__ import annotations

import itertools
import struct
import threading
from typing import Any

import numpy as np

from . import ops as mpi_ops
from .comm import Comm
from .exceptions import MPIError, RankError

# RMA wire ops.
_OP_PUT = 1
_OP_GET = 2
_OP_ACC = 3
_OP_GET_REPLY = 4
_OP_ACK = 5
_OP_SHUTDOWN = 6
_OP_LOCK = 7
_OP_UNLOCK = 8

_HDR = struct.Struct("<iqqi")  # op, offset, nbytes, token
_SERVICE_TAG = 77
_REPLY_TAG = 78


class WinError(MPIError):
    """Invalid window operation (bad range, epoch misuse, ...)."""


class Win:
    """A one-sided communication window over ``comm``.

    Parameters
    ----------
    comm:
        Communicator whose ranks participate (creation is collective).
    local:
        Writable buffer this rank exposes (bytearray or NumPy array); may
        be zero-sized for ranks exposing nothing.
    """

    def __init__(self, comm: Comm, local: Any) -> None:
        self._comm = comm.Dup()
        view = memoryview(local).cast("B") if local is not None else memoryview(b"")
        if view.readonly:
            raise WinError("window memory must be writable")
        self._memory = view
        self._tokens = itertools.count(1)
        # Origin-side operations are serialized per window: one in-flight
        # op means its reply is the next _REPLY_TAG message, so replies
        # can never be consumed by the wrong thread under THREAD_MULTIPLE.
        self._origin_mutex = threading.Lock()
        # Passive-target lock state (held at the *target*).
        self._lock_holder: int | None = None
        self._lock_waiters: list[int] = []
        self._deferred_tokens: dict[int, int] = {}
        self._lock_mutex = threading.Lock()
        self._closed = False
        self._service = threading.Thread(
            target=self._serve, name=f"rma-win-r{comm.rank}", daemon=True
        )
        self._service.start()
        # Window is usable once every rank's service is up.
        self._comm.barrier()

    # -- target-side service ------------------------------------------------
    def _serve(self) -> None:
        comm = self._comm
        while True:
            payload, status = comm.recv_bytes(
                -1, _SERVICE_TAG, 1 << 62
            )
            hdr = _HDR.unpack(payload[:_HDR.size])
            op, offset, nbytes, token = hdr
            body = payload[_HDR.size:]
            origin = status.Get_source()
            if op == _OP_SHUTDOWN:
                return
            if op == _OP_PUT:
                self._memory[offset:offset + nbytes] = body
                self._ack(origin, token)
            elif op == _OP_GET:
                data = bytes(self._memory[offset:offset + nbytes])
                comm.send_bytes(
                    _HDR.pack(_OP_GET_REPLY, offset, nbytes, token) + data,
                    origin, _REPLY_TAG,
                )
            elif op == _OP_ACC:
                op_name = body[:16].rstrip(b"\0").decode()
                dtype = body[16:24].rstrip(b"\0").decode()
                incoming = np.frombuffer(body[24:], dtype=dtype)
                target = np.frombuffer(
                    self._memory[offset:offset + nbytes], dtype=dtype
                )
                result = mpi_ops.lookup(op_name)(target, incoming)
                self._memory[offset:offset + nbytes] = (
                    np.ascontiguousarray(result).tobytes()
                )
                self._ack(origin, token)
            elif op == _OP_LOCK:
                self._grant_or_queue_lock(origin, token)
            elif op == _OP_UNLOCK:
                self._release_lock(origin)
                self._ack(origin, token)

    def _ack(self, origin: int, token: int) -> None:
        self._comm.send_bytes(
            _HDR.pack(_OP_ACK, 0, 0, token), origin, _REPLY_TAG
        )

    def _grant_or_queue_lock(self, origin: int, token: int) -> None:
        with self._lock_mutex:
            if self._lock_holder is None:
                self._lock_holder = origin
                self._ack(origin, token)
            else:
                # ACK deferred until the lock frees (grant = delayed ACK).
                self._lock_waiters.append(origin)
                self._deferred_tokens[origin] = token

    def _release_lock(self, origin: int) -> None:
        with self._lock_mutex:
            if self._lock_holder != origin:
                raise WinError(
                    f"rank {origin} unlocked a window it does not hold"
                )
            if self._lock_waiters:
                nxt = self._lock_waiters.pop(0)
                self._lock_holder = nxt
                token = self._deferred_tokens.pop(nxt)
                self._ack(nxt, token)
            else:
                self._lock_holder = None

    # -- origin-side operations ---------------------------------------------
    def _check_target(self, rank: int) -> None:
        if not 0 <= rank < self._comm.size:
            raise RankError(f"target rank {rank} out of range")
        if self._closed:
            raise WinError("operation on freed window")

    def _transact(self, target_rank: int, request: bytes) -> bytes:
        """Send one RMA request and wait for its ACK/reply."""
        with self._origin_mutex:
            self._comm.send_bytes(request, target_rank, _SERVICE_TAG)
            payload, _st = self._comm.recv_bytes(-1, _REPLY_TAG, 1 << 62)
        op, _off, _n, _tok = _HDR.unpack(payload[:_HDR.size])
        if op == _OP_GET_REPLY:
            return payload[_HDR.size:]
        return b""

    def Put(self, data: Any, target_rank: int, offset: int = 0) -> None:
        """Write ``data`` into the target's window at a byte offset."""
        self._check_target(target_rank)
        body = bytes(memoryview(data).cast("B"))
        token = next(self._tokens)
        self._transact(
            target_rank,
            _HDR.pack(_OP_PUT, offset, len(body), token) + body,
        )

    def Get(self, sink: Any, target_rank: int, offset: int = 0) -> None:
        """Read from the target's window into writable ``sink``."""
        self._check_target(target_rank)
        view = memoryview(sink).cast("B")
        token = next(self._tokens)
        data = self._transact(
            target_rank, _HDR.pack(_OP_GET, offset, view.nbytes, token)
        )
        view[:len(data)] = data

    def Accumulate(
        self,
        data: np.ndarray,
        target_rank: int,
        op=mpi_ops.SUM,
        offset: int = 0,
    ) -> None:
        """Elementwise-combine ``data`` into the target's window."""
        self._check_target(target_rank)
        arr = np.ascontiguousarray(data)
        meta = (
            op.name.encode().ljust(16, b"\0")
            + arr.dtype.str.encode().ljust(8, b"\0")
        )
        token = next(self._tokens)
        self._transact(
            target_rank,
            _HDR.pack(_OP_ACC, offset, arr.nbytes, token) + meta
            + arr.tobytes(),
        )

    # -- synchronization -----------------------------------------------------
    def Fence(self) -> None:
        """Close the current access epoch (active-target).

        Each origin already waits for per-op acknowledgements, so all this
        rank's accesses are remotely complete; the barrier then makes the
        epoch boundary collective.
        """
        if self._closed:
            raise WinError("fence on freed window")
        self._comm.barrier()

    def Lock(self, target_rank: int) -> None:
        """Acquire exclusive passive-target access to one target."""
        self._check_target(target_rank)
        token = next(self._tokens)
        self._transact(
            target_rank, _HDR.pack(_OP_LOCK, 0, 0, token)
        )

    def Unlock(self, target_rank: int) -> None:
        """Release passive-target access."""
        self._check_target(target_rank)
        token = next(self._tokens)
        self._transact(
            target_rank, _HDR.pack(_OP_UNLOCK, 0, 0, token)
        )

    def Free(self) -> None:
        """Tear the window down (collective)."""
        if self._closed:
            return
        self._comm.barrier()
        self._closed = True
        # Stop our own service thread.
        self._comm.send_bytes(
            _HDR.pack(_OP_SHUTDOWN, 0, 0, 0), self._comm.rank, _SERVICE_TAG
        )
        self._service.join(timeout=10)

    @property
    def size(self) -> int:
        """Exposed window size in bytes."""
        return self._memory.nbytes
