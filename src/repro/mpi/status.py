"""Receive-status object, the analogue of ``MPI_Status``.

Filled in by the matching engine on message delivery; exposes the actual
source, tag, and byte count of the matched message — needed by wildcard
receives and by ``Get_count`` in element units.
"""

from __future__ import annotations

from .constants import ANY_SOURCE, ANY_TAG
from .datatypes import Datatype
from .exceptions import DatatypeError


class Status:
    """Mutable status record for a completed (or probed) receive."""

    __slots__ = ("source", "tag", "count_bytes", "error", "cancelled")

    def __init__(self) -> None:
        self.source: int = ANY_SOURCE
        self.tag: int = ANY_TAG
        self.count_bytes: int = 0
        self.error: int = 0
        self.cancelled: bool = False

    def Get_source(self) -> int:
        """Return the rank that sent the matched message."""
        return self.source

    def Get_tag(self) -> int:
        """Return the tag of the matched message."""
        return self.tag

    def Get_error(self) -> int:
        """Return the error code recorded for this operation (0 = success)."""
        return self.error

    def Get_count(self, datatype: Datatype) -> int:
        """Return the received element count in units of ``datatype``.

        Raises :class:`DatatypeError` if the byte count is not a whole
        multiple of the datatype extent (MPI would return MPI_UNDEFINED).
        """
        extent = datatype.Get_size()
        if extent <= 0 or self.count_bytes % extent != 0:
            raise DatatypeError(
                f"received {self.count_bytes} bytes is not a multiple of "
                f"{datatype.Get_name()} extent {extent}"
            )
        return self.count_bytes // extent

    def Get_elements(self, datatype: Datatype) -> int:
        """Alias of :meth:`Get_count` for the basic types supported here."""
        return self.Get_count(datatype)

    def Is_cancelled(self) -> bool:
        """Return whether the matched operation was cancelled."""
        return self.cancelled

    def _fill(self, source: int, tag: int, count_bytes: int) -> None:
        """Populate from a matched envelope (runtime-internal)."""
        self.source = source
        self.tag = tag
        self.count_bytes = count_bytes
        self.error = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Status(source={self.source}, tag={self.tag}, "
            f"count_bytes={self.count_bytes})"
        )
