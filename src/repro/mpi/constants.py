"""MPI-style constants for the runtime.

These mirror the names users of MPI (and mpi4py) expect: wildcard
source/tag values, thread-support levels, predefined null handles, and
the bounds that the matching engine enforces.
"""

from __future__ import annotations

# Wildcards for point-to-point matching.
ANY_SOURCE = -1
ANY_TAG = -1

# Special process sentinel: operations addressed to PROC_NULL complete
# immediately and transfer no data (useful in shift patterns).
PROC_NULL = -2

# Rank returned for "not in this communicator/group".
UNDEFINED = -32766

# Root sentinel used by intercommunicator collectives (kept for API parity).
ROOT = -4

# Upper bound on user tags.  The MPI standard guarantees at least 32767;
# we allow the full non-negative int range but reserve a band of high tags
# for internal collective traffic (see collectives/base.py).
TAG_UB = 2**30 - 1

# Thread support levels (MPI_THREAD_*).  The paper's Allreduce 56-PPN
# discussion hinges on OMB initializing THREAD_SINGLE while mpi4py defaults
# to THREAD_MULTIPLE; the bindings layer reproduces that default.
THREAD_SINGLE = 0
THREAD_FUNNELED = 1
THREAD_SERIALIZED = 2
THREAD_MULTIPLE = 3

# Result of comparing two communicators/groups.
IDENT = 0
CONGRUENT = 1
SIMILAR = 2
UNEQUAL = 3

# Default maximum number of in-flight packets a transport buffers per peer
# before applying backpressure.
DEFAULT_TRANSPORT_WINDOW = 256

# Internal tag base for collective operations: user code must not send with
# tags at or above this value on the same communicator.
INTERNAL_TAG_BASE = 2**30

# mpi4py-compatible names for status fields.
ERR_CODE_SUCCESS = 0


def is_valid_user_tag(tag: int) -> bool:
    """Return True if ``tag`` is a legal tag for user-level sends."""
    return 0 <= tag <= TAG_UB


def is_valid_recv_tag(tag: int) -> bool:
    """Return True if ``tag`` is a legal tag for receives (wildcard allowed)."""
    return tag == ANY_TAG or is_valid_user_tag(tag)


def is_valid_recv_source(source: int, comm_size: int) -> bool:
    """Return True if ``source`` is legal for a receive on a communicator."""
    return source == ANY_SOURCE or source == PROC_NULL or 0 <= source < comm_size
