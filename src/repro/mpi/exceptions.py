"""Error hierarchy for the message-passing runtime.

Mirrors the MPI error-class structure: every failure raised by the runtime
derives from :class:`MPIError` and carries an MPI-style error class so
callers can branch on the *kind* of failure rather than string-matching.
"""

from __future__ import annotations

# MPI error classes (subset of the MPI standard's MPI_ERR_* constants).
ERR_BUFFER = 1
ERR_COUNT = 2
ERR_TYPE = 3
ERR_TAG = 4
ERR_COMM = 5
ERR_RANK = 6
ERR_REQUEST = 7
ERR_ROOT = 8
ERR_GROUP = 9
ERR_OP = 10
ERR_TOPOLOGY = 11
ERR_DIMS = 12
ERR_ARG = 13
ERR_UNKNOWN = 14
ERR_TRUNCATE = 15
ERR_OTHER = 16
ERR_INTERN = 17
ERR_PENDING = 18
ERR_IN_STATUS = 19
ERR_PROC_FAILED = 20  # ULFM's MPI_ERR_PROC_FAILED
ERR_REVOKED = 21      # ULFM's MPI_ERR_REVOKED

#: Process exit code used by ``ombpy`` when a rank dies *because a peer
#: failed* (uncaught :class:`RankFailedError`).  The launcher treats this
#: code as a cascade casualty, not a root cause: when several ranks go
#: down together, job-failure attribution prefers a rank that exited
#: with any other code.
RANK_FAILED_EXIT = 20


class MPIError(Exception):
    """Base class for all runtime errors.

    Parameters
    ----------
    message:
        Human-readable description.
    error_class:
        One of the ``ERR_*`` constants in this module.
    """

    def __init__(self, message: str, error_class: int = ERR_OTHER) -> None:
        super().__init__(message)
        self.error_class = error_class

    def Get_error_class(self) -> int:
        """Return the MPI error class associated with this error."""
        return self.error_class


class RankError(MPIError):
    """An out-of-range or otherwise invalid rank was supplied."""

    def __init__(self, message: str) -> None:
        super().__init__(message, ERR_RANK)


class TagError(MPIError):
    """An invalid tag (negative, non-wildcard) was supplied."""

    def __init__(self, message: str) -> None:
        super().__init__(message, ERR_TAG)


class CommError(MPIError):
    """Operation on an invalid or freed communicator."""

    def __init__(self, message: str) -> None:
        super().__init__(message, ERR_COMM)


class TruncationError(MPIError):
    """An incoming message was larger than the posted receive buffer."""

    def __init__(self, message: str) -> None:
        super().__init__(message, ERR_TRUNCATE)


class CountError(MPIError):
    """A negative or inconsistent element count was supplied."""

    def __init__(self, message: str) -> None:
        super().__init__(message, ERR_COUNT)


class DatatypeError(MPIError):
    """An unknown or mismatched datatype was supplied."""

    def __init__(self, message: str) -> None:
        super().__init__(message, ERR_TYPE)


class OpError(MPIError):
    """An invalid reduction operation was supplied."""

    def __init__(self, message: str) -> None:
        super().__init__(message, ERR_OP)


class RootError(MPIError):
    """An invalid root rank was supplied to a rooted collective."""

    def __init__(self, message: str) -> None:
        super().__init__(message, ERR_ROOT)


class GroupError(MPIError):
    """An invalid group operation was attempted."""

    def __init__(self, message: str) -> None:
        super().__init__(message, ERR_GROUP)


class RequestError(MPIError):
    """Operation on an invalid or already-completed request."""

    def __init__(self, message: str) -> None:
        super().__init__(message, ERR_REQUEST)


class BufferError_(MPIError):
    """A buffer argument could not be interpreted."""

    def __init__(self, message: str) -> None:
        super().__init__(message, ERR_BUFFER)


class InternalError(MPIError):
    """The runtime reached an inconsistent internal state."""

    def __init__(self, message: str) -> None:
        super().__init__(message, ERR_INTERN)


class RankFailedError(MPIError):
    """A peer rank died (process exit, connection reset, heartbeat loss).

    Raised promptly from any blocking receive/wait/collective the survivor
    is parked in once the failure detector declares the peer dead — the
    fail-fast alternative to hanging until the launcher's global timeout.

    Attributes
    ----------
    rank:
        World rank of the failed peer (``-1`` if unknown).
    wait_state:
        Snapshot of this rank's matching-engine state (posted receives,
        queued unexpected messages) at detection time, for diagnosis.
    """

    def __init__(
        self, message: str, rank: int = -1, wait_state: str | None = None
    ) -> None:
        if wait_state:
            message = f"{message} [wait-state: {wait_state}]"
        super().__init__(message, ERR_PROC_FAILED)
        self.rank = rank
        self.wait_state = wait_state


class CommRevokedError(MPIError):
    """The communicator was revoked (ULFM's MPI_ERR_REVOKED).

    After a peer failure, any member may call ``Comm.revoke()``; from
    then on every communication operation on that communicator — on
    every member rank, including ranks parked inside collectives when
    the revocation arrives — raises this error.  Survivors recover by
    calling ``Comm.shrink()`` and continuing on the result.

    Attributes
    ----------
    context:
        Context id of the revoked communicator (``-1`` if unknown).
    """

    def __init__(self, message: str, context: int = -1) -> None:
        super().__init__(message, ERR_REVOKED)
        self.context = context
