"""Persistent communication requests (MPI_Send_init / MPI_Recv_init).

OSU's multi-iteration loops re-issue identical sends and receives; MPI's
persistent requests let an implementation hoist per-call setup out of the
loop — the same hoisting the native baseline (:mod:`repro.native`) does
ad hoc.  A persistent request is created once, then repeatedly
``Start()``-ed and waited.
"""

from __future__ import annotations

from typing import Any

from .comm import Comm
from .exceptions import RequestError
from .request import RecvRequest, Request, SendRequest


class PersistentRequest:
    """Base: a re-startable communication operation."""

    def __init__(self) -> None:
        self._active: Request | None = None
        # Race-sanitizer ownership record for the started instance
        # (duck-typed; None when no sanitizer is attached to the endpoint).
        self._pin = None

    def Start(self) -> None:
        """Begin one instance of the operation."""
        if self._active is not None and not self._active.done():
            raise RequestError(
                "Start() while the previous instance is still active"
            )
        self._pin = self._pin_buffer()
        self._active = self._launch()

    def _launch(self) -> Request:
        raise NotImplementedError

    def _pin_buffer(self):
        """Pin the operation's buffer for the started instance."""
        return None

    def _release_pin(self) -> None:
        pin = self._pin
        if pin is not None:
            self._pin = None
            pin.release()

    def Wait(self) -> None:
        """Complete the active instance."""
        if self._active is None:
            raise RequestError("Wait() before Start()")
        self._active.wait()
        self._release_pin()

    def Test(self) -> bool:
        if self._active is None:
            raise RequestError("Test() before Start()")
        done, _ = self._active.test()
        if done:
            self._release_pin()
        return done


class PersistentSend(PersistentRequest):
    """Created by :func:`send_init`; snapshots the buffer at Start()."""

    def __init__(self, comm: Comm, buf: Any, dest: int, tag: int) -> None:
        super().__init__()
        self._comm = comm
        self._view = memoryview(buf).cast("B")
        self._dest = dest
        self._tag = tag

    def _launch(self) -> Request:
        return self._comm.isend_bytes(
            bytes(self._view), self._dest, self._tag
        )

    def _pin_buffer(self):
        sanitizer = self._comm.endpoint.sanitizer
        if sanitizer is None:
            return None
        # Send side: the snapshot must be intact at Wait/Test.
        return sanitizer.pin_view(
            self._view, "Send_init", writes=False, verify=True
        )


class PersistentRecv(PersistentRequest):
    """Created by :func:`recv_init`; fills the buffer at Wait()."""

    def __init__(self, comm: Comm, buf: Any, source: int, tag: int) -> None:
        super().__init__()
        self._comm = comm
        self._view = memoryview(buf).cast("B")
        if self._view.readonly:
            raise RequestError("persistent receive buffer must be writable")
        self._source = source
        self._tag = tag

    def _launch(self) -> Request:
        return self._comm.irecv_bytes(
            self._source, self._tag, self._view.nbytes, sink=self._view
        )

    def _pin_buffer(self):
        sanitizer = self._comm.endpoint.sanitizer
        if sanitizer is None:
            return None
        # Receive side: the runtime legitimately fills the sink view at
        # completion, so the pin cannot verify a content snapshot; it
        # still participates in overlap checks and blocking-access checks.
        return sanitizer.pin_view(
            self._view, "Recv_init", writes=True, verify=False
        )


def send_init(comm: Comm, buf: Any, dest: int, tag: int) -> PersistentSend:
    """Create a persistent send of ``buf`` to ``dest``."""
    return PersistentSend(comm, buf, dest, tag)


def recv_init(comm: Comm, buf: Any, source: int, tag: int) -> PersistentRecv:
    """Create a persistent receive into ``buf`` from ``source``."""
    return PersistentRecv(comm, buf, source, tag)


def startall(requests: list[PersistentRequest]) -> None:
    """Start several persistent requests (MPI_Startall)."""
    for r in requests:
        r.Start()


def waitall_persistent(requests: list[PersistentRequest]) -> None:
    """Wait for all started persistent requests."""
    for r in requests:
        r.Wait()


# Silence linter: SendRequest/RecvRequest are the concrete launch types.
_ = (SendRequest, RecvRequest)
