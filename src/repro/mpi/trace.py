"""Communication tracing — a PMPI-style profiling layer.

A thin structural-trace shim over :mod:`repro.telemetry`: a
:class:`TraceLog` subscribes to the per-rank telemetry message stream
and records every **send**, **recv** (arrival at the receiver's
matching engine), and **complete** (a receive matched against the
unexpected queue) as a :class:`TraceEvent`.  Used two ways:

* as a debugging/profiling tool (``with traced(comm) as log:`` in user
  code) — for full span traces and job-level Chrome output use
  ``ombpy --trace-out`` instead;
* by the test suite to assert the *structure* of collective algorithms —
  a binomial broadcast must move exactly p-1 payload messages, a ring
  allgather exactly p*(p-1), recursive doubling p*log2(p) — independent
  of whether the numerical results happen to be right.

Event coordinates: ``send`` events carry world ranks on both ends;
``recv``/``complete`` events carry the sender's communicator-local rank
in ``src_world`` (identical to the world rank on COMM_WORLD, which is
what the structural tests trace) and the receiving endpoint's world
rank in ``dst_world``.  Queries filter to ``kind="send"`` by default,
so message-count assertions keep their historical meaning.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from ..telemetry import Telemetry, install_on_endpoint, uninstall_from_endpoint
from .comm import Comm


@dataclass(frozen=True)
class TraceEvent:
    """One traced message event (send, recv, or complete)."""

    src_world: int
    dst_world: int
    context: int
    tag: int
    nbytes: int
    t_ns: int
    kind: str = "send"


@dataclass
class TraceLog:
    """Thread-safe event collection with query helpers."""

    events: list[TraceEvent] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def record(self, event: TraceEvent) -> None:
        with self._lock:
            self.events.append(event)

    def on_message(
        self, kind: str, src: int, dst: int, context: int, tag: int,
        nbytes: int,
    ) -> None:
        """Telemetry message-sink entry point (see ``add_message_sink``)."""
        self.record(TraceEvent(
            src_world=src, dst_world=dst, context=context, tag=tag,
            nbytes=nbytes, t_ns=time.perf_counter_ns(), kind=kind,
        ))

    def snapshot(self, kind: str | None = "send") -> list[TraceEvent]:
        """Consistent copy of the events recorded so far.

        Queries must not iterate ``self.events`` directly: transport
        reader threads append concurrently, and a list resize mid-iteration
        raises ``RuntimeError`` (or silently skips events).  ``kind``
        filters to one event kind; pass None for all kinds.
        """
        with self._lock:
            events = list(self.events)
        if kind is None:
            return events
        return [e for e in events if e.kind == kind]

    # -- queries --------------------------------------------------------
    def message_count(
        self, include_self: bool = False, kind: str | None = "send"
    ) -> int:
        """Total sends (self-sends excluded by default)."""
        return sum(
            1 for e in self.snapshot(kind)
            if include_self or e.src_world != e.dst_world
        )

    def total_bytes(
        self, include_self: bool = False, kind: str | None = "send"
    ) -> int:
        return sum(
            e.nbytes for e in self.snapshot(kind)
            if include_self or e.src_world != e.dst_world
        )

    def by_pair(self, kind: str | None = "send") -> dict[tuple[int, int], int]:
        """{(src, dst): message count}."""
        out: dict[tuple[int, int], int] = {}
        for e in self.snapshot(kind):
            key = (e.src_world, e.dst_world)
            out[key] = out.get(key, 0) + 1
        return out

    def senders(self, kind: str | None = "send") -> set[int]:
        return {e.src_world for e in self.snapshot(kind)}

    def receives(self) -> list[TraceEvent]:
        """Arrival events (one per message reaching the matching engine)."""
        return self.snapshot("recv")

    def completions(self) -> list[TraceEvent]:
        """Receive-completion events (posted hit or unexpected-queue hit)."""
        return self.snapshot("complete")

    def clear(self) -> None:
        with self._lock:
            self.events.clear()


@contextmanager
def traced(comm: Comm, log: TraceLog | None = None):
    """Trace all message traffic on this rank's endpoint.

    Yields a :class:`TraceLog` subscribed to the endpoint's telemetry
    message stream.  When the endpoint has no telemetry installed (the
    common case — no ``--metrics``/``--trace-out``), a minimal
    sink-only :class:`~repro.telemetry.Telemetry` is installed for the
    duration and removed on exit; an already-active telemetry is reused
    and left untouched.  All communicators sharing the endpoint are
    traced.
    """
    endpoint = comm.endpoint
    if log is None:
        log = TraceLog()
    tele = endpoint.telemetry
    installed = None
    if tele is None:
        installed = Telemetry(endpoint.world_rank, metrics=False, trace=False)
        install_on_endpoint(endpoint, installed)
        tele = installed
    tele.add_message_sink(log.on_message)
    try:
        yield log
    finally:
        tele.remove_message_sink(log.on_message)
        if installed is not None:
            uninstall_from_endpoint(endpoint)


def run_traced(n: int, fn, timeout: float = 60.0) -> TraceLog:
    """Run ``fn(comm)`` on n ranks with every rank traced into one log.

    Returns the combined log (events from all ranks).  The per-rank
    ordering of events is preserved; cross-rank ordering is by wall
    clock and should not be relied on.
    """
    from .world import run_on_threads

    shared = TraceLog()

    def work(comm: Comm):
        with traced(comm, shared):
            return fn(comm)

    run_on_threads(n, work, timeout=timeout)
    return shared
