"""Communication tracing — a PMPI-style profiling layer.

Wraps a transport so every outgoing message is recorded as a
:class:`TraceEvent`.  Used two ways:

* as a debugging/profiling tool (`with trace_world(...)` in user code);
* by the test suite to assert the *structure* of collective algorithms —
  a binomial broadcast must move exactly p-1 payload messages, a ring
  allgather exactly p*(p-1), recursive doubling p*log2(p) — independent
  of whether the numerical results happen to be right.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from .comm import Comm
from .matching import Envelope
from .transport.base import Transport


@dataclass(frozen=True)
class TraceEvent:
    """One traced send."""

    src_world: int
    dst_world: int
    context: int
    tag: int
    nbytes: int
    t_ns: int


@dataclass
class TraceLog:
    """Thread-safe event collection with query helpers."""

    events: list[TraceEvent] = field(default_factory=list)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def record(self, event: TraceEvent) -> None:
        with self._lock:
            self.events.append(event)

    def snapshot(self) -> list[TraceEvent]:
        """Consistent copy of the events recorded so far.

        Queries must not iterate ``self.events`` directly: transport
        reader threads append concurrently, and a list resize mid-iteration
        raises ``RuntimeError`` (or silently skips events).
        """
        with self._lock:
            return list(self.events)

    # -- queries --------------------------------------------------------
    def message_count(self, include_self: bool = False) -> int:
        """Total sends (self-sends excluded by default)."""
        return sum(
            1 for e in self.snapshot()
            if include_self or e.src_world != e.dst_world
        )

    def total_bytes(self, include_self: bool = False) -> int:
        return sum(
            e.nbytes for e in self.snapshot()
            if include_self or e.src_world != e.dst_world
        )

    def by_pair(self) -> dict[tuple[int, int], int]:
        """{(src, dst): message count}."""
        out: dict[tuple[int, int], int] = {}
        for e in self.snapshot():
            key = (e.src_world, e.dst_world)
            out[key] = out.get(key, 0) + 1
        return out

    def senders(self) -> set[int]:
        return {e.src_world for e in self.snapshot()}

    def clear(self) -> None:
        with self._lock:
            self.events.clear()


class TracingTransport(Transport):
    """Decorator transport: records, then forwards to the inner one."""

    def __init__(self, inner: Transport, log: TraceLog) -> None:
        super().__init__(inner.world_rank, inner.world_size)
        self._inner = inner
        self._log = log

    def attach(self, engine) -> None:  # type: ignore[override]
        super().attach(engine)
        self._inner.attach(engine)

    def send(self, dest_world_rank: int, env: Envelope, payload: bytes) -> None:
        self._log.record(TraceEvent(
            src_world=self.world_rank,
            dst_world=dest_world_rank,
            context=env.context,
            tag=env.tag,
            nbytes=env.nbytes,
            t_ns=time.perf_counter_ns(),
        ))
        self._inner.send(dest_world_rank, env, payload)

    def close(self) -> None:
        self._inner.close()


@contextmanager
def traced(comm: Comm):
    """Trace all traffic leaving this rank's endpoint.

    Yields the shared :class:`TraceLog`.  Tracing is installed by swapping
    the endpoint's transport for a recording decorator and restored on
    exit; all communicators sharing the endpoint are traced.
    """
    endpoint = comm.endpoint
    original = endpoint.transport
    log = TraceLog()
    wrapper = TracingTransport(original, log)
    wrapper.engine = endpoint.engine
    endpoint.transport = wrapper
    try:
        yield log
    finally:
        endpoint.transport = original


def run_traced(n: int, fn, timeout: float = 60.0) -> TraceLog:
    """Run ``fn(comm)`` on n ranks with every rank traced into one log.

    Returns the combined log (events from all ranks).  The per-rank
    ordering of events is preserved; cross-rank ordering is by wall
    clock and should not be relied on.
    """
    from .world import run_on_threads

    shared = TraceLog()

    def work(comm: Comm):
        endpoint = comm.endpoint
        original = endpoint.transport
        wrapper = TracingTransport(original, shared)
        wrapper.engine = endpoint.engine
        endpoint.transport = wrapper
        try:
            return fn(comm)
        finally:
            endpoint.transport = original

    run_on_threads(n, work, timeout=timeout)
    return shared
