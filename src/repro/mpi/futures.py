"""``MPIPoolExecutor`` — an mpi4py.futures-style task pool.

Rank 0 acts as the master; every other rank runs a worker loop executing
pickled ``(fn, args, kwargs)`` tasks and returning pickled results.  This
mirrors ``mpi4py.futures.MPIPoolExecutor``, which the mpi4py project
positions as the high-level interface OMB-Py-style applications build on.

Usage (all ranks call the constructor; only the master gets an executor)::

    with MPIPoolExecutor(comm) as pool:
        if pool is not None:               # master (rank 0)
            futs = [pool.submit(f, i) for i in range(32)]
            results = [f.result() for f in futs]
"""

from __future__ import annotations

import pickle
import threading
from typing import Any, Callable, Iterable

from .comm import Comm
from .exceptions import MPIError

_TASK_TAG = 91
_RESULT_TAG = 92
_STOP = b"\x00STOP"


class TaskFuture:
    """Result handle for one submitted task."""

    def __init__(self) -> None:
        self._event = threading.Event()
        self._value: Any = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None) -> Any:
        if not self._event.wait(timeout):
            raise TimeoutError("task result timed out")
        if self._error is not None:
            raise self._error
        return self._value

    def _complete(self, value: Any = None,
                  error: BaseException | None = None) -> None:
        self._value = value
        self._error = error
        self._event.set()


class _RemoteError(MPIError):
    """A task raised on a worker; carries the original representation."""


class MPIPoolExecutor:
    """Master/worker task pool over a communicator.

    Collective constructor: rank 0 returns a usable executor; other ranks
    enter the worker loop inside ``__enter__`` and leave it when the
    master shuts down (their ``with`` body sees ``None``).
    """

    def __init__(self, comm: Comm) -> None:
        if comm.size < 2:
            raise MPIError("MPIPoolExecutor needs at least 2 ranks")
        self._comm = comm.Dup()
        self._is_master = comm.rank == 0
        self._futures: dict[int, TaskFuture] = {}
        self._futures_lock = threading.Lock()
        self._next_task = 0
        self._idle: list[int] = []
        self._idle_cv = threading.Condition()
        self._shutdown = False
        self._collector: threading.Thread | None = None
        if self._is_master:
            self._idle = list(range(1, self._comm.size))
            self._collector = threading.Thread(
                target=self._collect, daemon=True, name="pool-collector"
            )
            self._collector.start()

    # -- worker side ---------------------------------------------------------
    def _worker_loop(self) -> None:
        comm = self._comm
        while True:
            payload, _st = comm.recv_bytes(0, _TASK_TAG, 1 << 62)
            if payload == _STOP:
                return
            task_id, fn, args, kwargs = pickle.loads(payload)
            try:
                result = (task_id, True, fn(*args, **kwargs))
            except BaseException as exc:  # noqa: BLE001 - shipped back
                result = (task_id, False, repr(exc))
            comm.send_bytes(pickle.dumps(result), 0, _RESULT_TAG)

    # -- master side -----------------------------------------------------------
    def _collect(self) -> None:
        comm = self._comm
        while not self._shutdown:
            try:
                payload, st = comm.recv_bytes(-1, _RESULT_TAG, 1 << 62)
            except Exception:
                return
            task_id, ok, value = pickle.loads(payload)
            with self._futures_lock:
                fut = self._futures.pop(task_id, None)
            if fut is not None:
                if ok:
                    fut._complete(value)
                else:
                    fut._complete(error=_RemoteError(value))
            with self._idle_cv:
                self._idle.append(st.Get_source())
                self._idle_cv.notify()

    def submit(self, fn: Callable, *args: Any, **kwargs: Any) -> TaskFuture:
        """Schedule ``fn(*args, **kwargs)`` on the next idle worker."""
        if not self._is_master:
            raise MPIError("submit() on a worker rank")
        if self._shutdown:
            raise MPIError("submit() after shutdown")
        with self._idle_cv:
            while not self._idle:
                self._idle_cv.wait()
            worker = self._idle.pop(0)
        task_id = self._next_task
        self._next_task += 1
        fut = TaskFuture()
        with self._futures_lock:
            self._futures[task_id] = fut
        self._comm.send_bytes(
            pickle.dumps((task_id, fn, args, kwargs)), worker, _TASK_TAG
        )
        return fut

    def map(self, fn: Callable, iterable: Iterable[Any]) -> list[Any]:
        """Parallel map; preserves input order."""
        futures = [self.submit(fn, item) for item in iterable]
        return [f.result() for f in futures]

    def shutdown(self) -> None:
        """Stop all workers (master only; idempotent)."""
        if not self._is_master or self._shutdown:
            return
        # Wait for in-flight tasks so STOP never overtakes a task result.
        with self._futures_lock:
            pending = list(self._futures.values())
        for fut in pending:
            fut._event.wait(60)
        self._shutdown = True
        for worker in range(1, self._comm.size):
            self._comm.send_bytes(_STOP, worker, _TASK_TAG)

    # -- context manager ----------------------------------------------------
    def __enter__(self) -> "MPIPoolExecutor | None":
        if self._is_master:
            return self
        self._worker_loop()
        return None

    def __exit__(self, *exc: Any) -> None:
        if self._is_master:
            self.shutdown()
