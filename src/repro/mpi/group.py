"""Process groups, the analogue of ``MPI_Group``.

A group is an ordered set of world ranks.  Communicators are built from
groups; ``Comm_split`` and friends are expressed as group algebra here.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .constants import IDENT, SIMILAR, UNDEFINED, UNEQUAL
from .exceptions import GroupError


class Group:
    """An immutable ordered set of world ranks."""

    __slots__ = ("_ranks", "_index")

    def __init__(self, world_ranks: Sequence[int]) -> None:
        seen: set[int] = set()
        for r in world_ranks:
            if r < 0:
                raise GroupError(f"negative world rank {r}")
            if r in seen:
                raise GroupError(f"duplicate world rank {r} in group")
            seen.add(r)
        self._ranks: tuple[int, ...] = tuple(world_ranks)
        self._index: dict[int, int] = {wr: i for i, wr in enumerate(self._ranks)}

    # -- queries ---------------------------------------------------------
    @property
    def size(self) -> int:
        return len(self._ranks)

    def Get_size(self) -> int:
        """Return the number of processes in the group."""
        return self.size

    def world_ranks(self) -> tuple[int, ...]:
        """Return the ordered tuple of world ranks in this group."""
        return self._ranks

    def rank_of(self, world_rank: int) -> int:
        """Return this group's rank for ``world_rank`` or ``UNDEFINED``."""
        return self._index.get(world_rank, UNDEFINED)

    def world_rank(self, group_rank: int) -> int:
        """Return the world rank for a rank in this group."""
        if not 0 <= group_rank < self.size:
            raise GroupError(
                f"group rank {group_rank} out of range [0, {self.size})"
            )
        return self._ranks[group_rank]

    def Translate_ranks(
        self, ranks: Iterable[int], other: "Group"
    ) -> list[int]:
        """Translate ranks in this group to ranks in ``other``.

        Ranks that do not appear in ``other`` translate to ``UNDEFINED``.
        """
        out = []
        for r in ranks:
            out.append(other.rank_of(self.world_rank(r)))
        return out

    def Compare(self, other: "Group") -> int:
        """Compare two groups: IDENT, SIMILAR, or UNEQUAL."""
        if self._ranks == other._ranks:
            return IDENT
        if set(self._ranks) == set(other._ranks):
            return SIMILAR
        return UNEQUAL

    # -- algebra ---------------------------------------------------------
    def Incl(self, ranks: Sequence[int]) -> "Group":
        """Return the subgroup containing ``ranks`` of this group, in order."""
        return Group([self.world_rank(r) for r in ranks])

    def Excl(self, ranks: Sequence[int]) -> "Group":
        """Return the subgroup excluding ``ranks`` of this group."""
        drop = set(ranks)
        for r in drop:
            if not 0 <= r < self.size:
                raise GroupError(f"excluded rank {r} out of range")
        return Group(
            [wr for i, wr in enumerate(self._ranks) if i not in drop]
        )

    def Union(self, other: "Group") -> "Group":
        """Ranks of self in order, then ranks of other not already present."""
        merged = list(self._ranks)
        have = set(merged)
        for wr in other._ranks:
            if wr not in have:
                merged.append(wr)
                have.add(wr)
        return Group(merged)

    def Intersection(self, other: "Group") -> "Group":
        """Ranks present in both, ordered as in self."""
        keep = set(other._ranks)
        return Group([wr for wr in self._ranks if wr in keep])

    def Difference(self, other: "Group") -> "Group":
        """Ranks in self but not other, ordered as in self."""
        drop = set(other._ranks)
        return Group([wr for wr in self._ranks if wr not in drop])

    def Range_incl(self, ranges: Sequence[tuple[int, int, int]]) -> "Group":
        """Include ranks given as (first, last, stride) triplets."""
        picked: list[int] = []
        for first, last, stride in ranges:
            if stride == 0:
                raise GroupError("zero stride in range")
            step = stride
            stop = last + (1 if step > 0 else -1)
            picked.extend(range(first, stop, step))
        return self.Incl(picked)

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Group) and self._ranks == other._ranks

    def __hash__(self) -> int:
        return hash(self._ranks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Group({list(self._ranks)})"
