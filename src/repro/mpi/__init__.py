"""``repro.mpi`` — a message-passing runtime in pure Python.

This package stands in for the MPI library (MVAPICH2 / Intel MPI in the
paper): communicators and groups, tagged point-to-point messaging with MPI
matching semantics, the full set of blocking collectives the paper's
benchmarks exercise (plus their vector variants), reduction operations,
datatypes, a threads-in-one-process transport for tests, a TCP mesh
transport for real multi-process runs, and an ``ombpy-run`` launcher.
"""

from . import constants, datatypes, ops, ulfm
from .comm import Comm, Endpoint
from .exceptions import CommRevokedError, MPIError, RankFailedError
from .group import Group
from .reliability import ReliableTransport
from .request import Request, testall, waitall, waitany
from .status import Status
from .world import World, init, run_on_processes, run_on_threads

ANY_SOURCE = constants.ANY_SOURCE
ANY_TAG = constants.ANY_TAG
PROC_NULL = constants.PROC_NULL

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "Comm",
    "CommRevokedError",
    "Endpoint",
    "Group",
    "MPIError",
    "RankFailedError",
    "ReliableTransport",
    "Request",
    "Status",
    "World",
    "constants",
    "datatypes",
    "init",
    "ops",
    "run_on_processes",
    "run_on_threads",
    "testall",
    "ulfm",
    "waitall",
    "waitany",
]
