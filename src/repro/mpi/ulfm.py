"""ULFM-style communicator recovery: revoke, shrink, agree.

User-Level Failure Mitigation (the fault-tolerance chapter proposed for
the MPI standard) lets an application *survive* rank failures instead of
aborting: a member that observes a failure revokes the communicator
(``MPI_Comm_revoke``), which flushes every rank out of its pending
operations; the survivors then collectively build a smaller, working
communicator (``MPI_Comm_shrink``) and continue.  ``MPI_Comm_agree``
provides fault-tolerant agreement for application-level decisions.

This module implements those three operations for the runtime's
:class:`~repro.mpi.comm.Comm`:

* **revoke** — non-collective.  Broadcasts a ``CTRL_REVOKE`` control
  frame to every member and condemns the context in the local matching
  engine: posted receives fail with
  :class:`~repro.mpi.exceptions.CommRevokedError`, queued and future
  messages on the context are discarded.
* **shrink / agree** — collective among survivors.  Both run the same
  convergence protocol: repeated rounds of dead-set exchange on a
  reserved recovery context (``ULFM_CONTEXT_FLAG | comm.context``) until
  every survivor has seen the identical failure set.  Failures *during*
  the protocol are absorbed: a round that loses a peer records it and
  starts over with the smaller survivor set.

Recovery traffic is exempt from fault injection (see
:func:`~repro.mpi.transport.base.fault_exempt`) — the protocol must not
depend on the reliability machinery it is rebuilding — but it still
rides the reliability layer's ack/retransmit path when one is stacked,
so lost recovery messages surface as peer failures, not hangs.

Known limitation: a peer that stays silent for the per-round timeout
(``OMBPY_ULFM_TIMEOUT``, default 30 s) is declared dead even if it is
merely slow; and a rank that fails *after* a survivor has concluded the
final round can leave the remaining survivors disagreeing about that
last death until the next recovery.  Both mirror the behaviour of
timeout-based ULFM implementations.
"""

from __future__ import annotations

import os
import struct
import time
from typing import Callable, TypeVar

from .comm import Comm
from .exceptions import CommError, CommRevokedError, MPIError, RankFailedError
from .group import Group
from .matching import Envelope
from .transport.base import CTRL_REVOKE, ULFM_CONTEXT_FLAG

#: Per-round receive timeout (seconds) for the convergence protocol.
ENV_ULFM_TIMEOUT = "OMBPY_ULFM_TIMEOUT"
DEFAULT_TIMEOUT = 30.0

_WORD = struct.Struct("<q")
_CTX_SHIFT = 16
_CTX_MASK = (1 << _CTX_SHIFT) - 1

T = TypeVar("T")


def _recovery_timeout(timeout: float | None) -> float:
    if timeout is not None:
        return timeout
    raw = os.environ.get(ENV_ULFM_TIMEOUT)
    if raw:
        value = float(raw)
        if value <= 0:
            raise ValueError(
                f"{ENV_ULFM_TIMEOUT} must be > 0 seconds, got {raw!r}"
            )
        return value
    return DEFAULT_TIMEOUT


def revoke(comm: Comm) -> None:
    """Revoke ``comm`` everywhere (ULFM ``MPI_Comm_revoke``).

    Best-effort broadcast: peers that are already dead are skipped, and
    a notice that cannot be delivered is dropped (the peer will fail
    its own operations through the failure detector instead).  The
    local revocation is unconditional and idempotent.
    """
    endpoint = comm.endpoint
    _count(endpoint, "ulfm.revokes")
    payload = _WORD.pack(comm.context)
    already_dead = endpoint.engine.failed_ranks()
    for wr in comm.Get_group().world_ranks():
        if wr == endpoint.world_rank or wr in already_dead:
            continue
        endpoint.transport.send_control(wr, CTRL_REVOKE, payload)
    endpoint.engine.revoke_context(comm.context)


def shrink(comm: Comm, timeout: float | None = None) -> Comm:
    """Agree on the failed ranks and return the survivor communicator.

    Collective among survivors (ULFM ``MPI_Comm_shrink``).  The new
    communicator keeps the survivors in their old relative order and
    uses a context derived deterministically from the parent context
    and the (rank-aligned) recovery attempt number, so all survivors
    construct the identical communicator without further traffic.
    """
    _count(comm.endpoint, "ulfm.shrinks")
    dead, _flag, attempt = _converge(comm, True, timeout)
    survivors = [
        wr for wr in comm.Get_group().world_ranks() if wr not in dead
    ]
    if not survivors:
        raise CommError("shrink: no surviving ranks")
    return Comm(
        comm.endpoint,
        Group(survivors),
        _shrink_context(comm.context, attempt),
        comm.thread_level,
    )


def agree(
    comm: Comm, flag: bool = True, timeout: float | None = None
) -> bool:
    """Fault-tolerant agreement: AND of every live member's ``flag``."""
    _count(comm.endpoint, "ulfm.agreements")
    _dead, result, _attempt = _converge(comm, flag, timeout)
    return result


def _count(endpoint, name: str, n: int = 1) -> None:
    """Bump a telemetry counter when the endpoint carries a registry."""
    tele = endpoint.telemetry
    if tele is not None and tele.metrics is not None:
        tele.metrics.counter(name).inc(n)


def run_with_recovery(
    comm: Comm,
    fn: Callable[[Comm], T],
    max_attempts: int | None = None,
) -> tuple[T, Comm]:
    """Run ``fn(comm)``, shrinking and retrying after rank failures.

    On :class:`~repro.mpi.exceptions.RankFailedError` or
    :class:`~repro.mpi.exceptions.CommRevokedError` the communicator is
    revoked (flushing peers out of their pending operations), shrunk to
    the survivors, and ``fn`` is re-run on the new communicator.
    Returns ``(result, final_comm)`` — callers must use ``final_comm``
    for any further communication.  Each rank failure can trigger at
    most one retry, so attempts are bounded by the communicator size.
    """
    attempts = max_attempts if max_attempts is not None else max(1, comm.size)
    current = comm
    last: Exception | None = None
    for _ in range(attempts):
        try:
            return fn(current), current
        except (CommRevokedError, RankFailedError) as exc:
            last = exc
            if current.size <= 1:
                raise
            current.revoke()
            current = current.shrink()
    assert last is not None
    raise last


def _shrink_context(parent_context: int, attempt: int) -> int:
    """Derive the survivor communicator's context id.

    Counts down from the top of the 16-bit derivation slot while
    ``Comm.Dup``/``Split`` count up from 1, so shrink contexts cannot
    collide with ordinary derived communicators short of ~32k
    derivations at the same level.
    """
    slot = _CTX_MASK - (attempt & (_CTX_MASK >> 1))
    context = (parent_context << _CTX_SHIFT) | slot
    if context >= 1 << 62:
        raise CommError("communicator derivation too deep")
    return context


def _converge(
    comm: Comm, flag: bool, timeout: float | None
) -> tuple[set[int], bool, int]:
    """Dead-set convergence among survivors.

    Rounds of all-to-all dead-set exchange on the recovery context.
    Each round every presumed survivor sends ``(flag, sorted dead set)``
    to every other and waits for the same from each.  The protocol
    converges when a round completes with every received set equal to
    the set sent and no new failures observed — at that point all
    survivors hold the identical set (one clean exchange equalizes the
    sets; the next clean round confirms it simultaneously everywhere).

    Returns ``(dead world ranks, AND-ed flag, attempt number)``.
    """
    endpoint = comm.endpoint
    engine = endpoint.engine
    transport = endpoint.transport
    me = endpoint.world_rank
    members = comm.Get_group().world_ranks()
    member_set = set(members)
    uctx = ULFM_CONTEXT_FLAG | comm.context
    attempt = comm._next_ulfm_attempt()
    per_wait = _recovery_timeout(timeout)
    max_bytes = _WORD.size * (1 + len(members))

    # The sticky failure got us here; clear it so recovery receives can
    # be posted.  The per-rank death record survives acknowledgement.
    engine.acknowledge_failure()
    dead = {wr for wr in engine.failed_ranks() if wr in member_set}
    flag_word = 1 if flag else 0
    tele = endpoint.telemetry
    t0 = time.time_ns()

    max_rounds = 4 * len(members) + 4
    for rnd in range(max_rounds):
        tag = attempt * 4096 + rnd
        sent_dead = frozenset(dead)
        peers = [wr for wr in members if wr != me and wr not in dead]
        payload = _WORD.pack(flag_word) + b"".join(
            _WORD.pack(d) for d in sorted(sent_dead)
        )
        tickets = [
            (wr, engine.post_recv(uctx, wr, tag, max_bytes, source_world=wr))
            for wr in peers
        ]
        for wr in peers:
            env = Envelope(uctx, me, wr, tag, len(payload))
            try:
                transport.send(wr, env, payload)
            except Exception:  # noqa: BLE001 - peer death surfaces on wait
                pass

        converged = True
        for wr, ticket in tickets:
            data = None
            for _repost in range(len(members) + 2):
                try:
                    data = ticket.wait(per_wait)
                    break
                except TimeoutError:
                    # Documented limitation: a silent peer is declared
                    # dead after the recovery timeout.
                    engine.cancel_recv(ticket)
                    dead.add(wr)
                    break
                except MPIError as exc:
                    failed = getattr(exc, "rank", -1)
                    engine.acknowledge_failure()
                    if isinstance(failed, int) and failed in member_set:
                        dead.add(failed)
                    if wr in dead:
                        break
                    # Wakeup for a different rank's death: repost — this
                    # peer's round message may already be queued.
                    ticket = engine.post_recv(
                        uctx, wr, tag, max_bytes, source_world=wr
                    )
            else:
                # Repost budget exhausted without progress: give up on
                # this peer rather than spin.
                dead.add(wr)
            if data is None:
                converged = False
                continue
            words = [w for (w,) in _WORD.iter_unpack(data)]
            if words and words[0] == 0:
                flag_word = 0
            their_dead = set(words[1:])
            dead |= their_dead & member_set
            if their_dead != sent_dead:
                converged = False
        if dead != sent_dead:
            converged = False
        if converged:
            # Clear recovery-protocol stragglers (duplicate round
            # messages a peer resent before converging).
            engine.purge_unexpected(uctx)
            if tele is not None:
                _count(endpoint, "ulfm.rounds", rnd + 1)
                if tele.tracer is not None:
                    tele.tracer.complete(
                        "ulfm.converge", "ulfm", t0, time.time_ns() - t0,
                        {"rounds": rnd + 1, "dead": sorted(dead)},
                    )
            return dead, flag_word == 1, attempt

    raise MPIError(
        f"ULFM recovery failed to converge after {max_rounds} rounds "
        f"(dead={sorted(dead)})"
    )
