"""Byte-moving backends for the runtime.

Two transports are provided:

* :mod:`repro.mpi.transport.inproc` — all ranks live as threads in one
  process; used by the test suite and by single-process tooling.
* :mod:`repro.mpi.transport.tcp` — each rank is a real OS process and
  ranks form a localhost TCP mesh; used by the ``ombpy-run`` launcher.

Both preserve per-sender delivery order, which the matching engine relies
on for MPI's non-overtaking guarantee.
"""

from .base import Transport
from .inproc import InprocFabric, InprocTransport
from .tcp import TcpTransport

__all__ = ["Transport", "InprocFabric", "InprocTransport", "TcpTransport"]
