"""Shared-memory ring transport.

The intra-node fast path of real MPI libraries: each *directed* rank
pair owns a single-producer/single-consumer byte ring in a POSIX
shared-memory segment.  The writer copies `header+payload` frames in
(splitting at the wrap point); one reader thread per incoming ring polls
its ring and delivers frames to the matching engine.  No sockets, no
kernel round trips on the data path — only memcpy through the segment.

Ring layout (little-endian)::

    [ head : u64 ][ tail : u64 ][ data : capacity bytes ]

``head`` is advanced only by the reader, ``tail`` only by the writer;
8-byte aligned stores are effectively atomic on the platforms we target,
and the SPSC discipline means no further synchronization is needed.
Selected with ``ombpy-run --transport shm``.
"""

from __future__ import annotations

import struct
import threading
import time
from multiprocessing import shared_memory

from ..exceptions import InternalError, RankError
from ..matching import Envelope
from .base import (
    CTRL_GOODBYE, HEADER_SIZE, Transport, control_envelope, pack_header,
    unpack_header_from,
)

_CTRL = struct.Struct("<QQ")
_WORD = struct.Struct("<Q")
CTRL_SIZE = _CTRL.size
DEFAULT_CAPACITY = 1 << 20  # 1 MiB per directed pair


def segment_name(job_id: str, src: int, dst: int) -> str:
    return f"ombpy-shm-{job_id}-{src}-{dst}"


def _attach(name: str, create: bool, size: int = 0):
    shm = shared_memory.SharedMemory(
        name=name, create=create, size=size if create else 0
    )
    if not create:
        # CPython's resource tracker "owns" every attached segment and
        # unlinks it at process exit, racing the creator's cleanup; the
        # creator (launcher) is the sole owner, so unregister attachments.
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return shm


class _Ring:
    """One SPSC ring over a shared-memory segment."""

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self._shm = shm
        self._buf = shm.buf
        self.capacity = len(self._buf) - CTRL_SIZE

    # -- control words -----------------------------------------------------
    def _load(self) -> tuple[int, int]:
        return _CTRL.unpack_from(self._buf, 0)

    def _store_head(self, head: int) -> None:
        _WORD.pack_into(self._buf, 0, head)

    def _store_tail(self, tail: int) -> None:
        _WORD.pack_into(self._buf, 8, tail)

    # -- producer -----------------------------------------------------------
    def write(self, frame, stop: threading.Event) -> None:
        """Copy bytes in (bytes or memoryview), blocking (with backoff)
        while the ring is full."""
        n = len(frame)
        if n >= self.capacity:
            raise InternalError(
                f"frame of {n} bytes exceeds ring capacity "
                f"{self.capacity}; raise OMBPY_SHM_CAPACITY"
            )
        spins = 0
        while True:
            head, tail = self._load()
            free = self.capacity - (tail - head)
            if free > n:  # keep one byte free to distinguish full/empty
                break
            spins += 1
            if spins > 100:
                time.sleep(50e-6)
            if stop.is_set():
                raise InternalError("shm transport closed during write")
        pos = tail % self.capacity
        first = min(n, self.capacity - pos)
        self._buf[CTRL_SIZE + pos:CTRL_SIZE + pos + first] = frame[:first]
        if first < n:
            self._buf[CTRL_SIZE:CTRL_SIZE + n - first] = frame[first:]
        self._store_tail(tail + n)

    def try_write(self, frame: bytes) -> bool:
        """Non-blocking write; False if the ring lacks space right now.

        Used for control frames (heartbeats): blocking on a full ring
        whose reader is dead would wedge the failure-detector thread —
        the very thread meant to notice that death.
        """
        n = len(frame)
        head, tail = self._load()
        if self.capacity - (tail - head) <= n:
            return False
        pos = tail % self.capacity
        first = min(n, self.capacity - pos)
        self._buf[CTRL_SIZE + pos:CTRL_SIZE + pos + first] = frame[:first]
        if first < n:
            self._buf[CTRL_SIZE:CTRL_SIZE + n - first] = frame[first:]
        self._store_tail(tail + n)
        return True

    # -- consumer -----------------------------------------------------------
    def read_into(self, out: bytearray) -> int:
        """Drain the ring by appending onto ``out``; returns bytes read.

        Extending a caller-owned bytearray from memoryview slices of the
        segment copies each byte exactly once (ring -> accumulator), with
        no intermediate bytes objects even at the wrap point.
        """
        head, tail = self._load()
        n = tail - head
        if n == 0:
            return 0
        pos = head % self.capacity
        first = min(n, self.capacity - pos)
        out += self._buf[CTRL_SIZE + pos:CTRL_SIZE + pos + first]
        if first < n:
            out += self._buf[CTRL_SIZE:CTRL_SIZE + n - first]
        self._store_head(head + n)
        return n

    def read_available(self) -> bytes:
        """Drain whatever is currently in the ring (may be empty)."""
        out = bytearray()
        self.read_into(out)
        return bytes(out)

    def close(self) -> None:
        # Release the memoryview before closing the mapping.
        self._buf = None
        self._shm.close()


def intra_group_pairs(group_map) -> list[tuple[int, int]]:
    """Directed (src, dst) pairs that share a node group.

    The hybrid fabric only needs shm rings within a group; inter-group
    traffic rides the stream fabric, so a grouped launch creates
    O(sum g_i^2) segments instead of O(N^2).
    """
    out: list[tuple[int, int]] = []
    for g in range(group_map.n_groups):
        members = group_map.members(g)
        for src in members:
            for dst in members:
                if src != dst:
                    out.append((src, dst))
    return out


def create_job_segments(
    job_id: str,
    world_size: int,
    capacity: int = DEFAULT_CAPACITY,
    pairs: list[tuple[int, int]] | None = None,
) -> list[shared_memory.SharedMemory]:
    """Launcher-side: create the directed-pair ring segments.

    ``pairs`` restricts creation to the given directed (src, dst) pairs
    (used by grouped launches); the default is the full mesh.
    """
    if pairs is None:
        pairs = [
            (src, dst)
            for src in range(world_size)
            for dst in range(world_size)
            if src != dst
        ]
    segments = []
    for src, dst in pairs:
        shm = _attach(
            segment_name(job_id, src, dst), create=True,
            size=CTRL_SIZE + capacity,
        )
        shm.buf[:CTRL_SIZE] = _CTRL.pack(0, 0)
        segments.append(shm)
    return segments


def destroy_job_segments(
    segments: list[shared_memory.SharedMemory],
) -> None:
    """Launcher-side: unlink every segment (idempotent per segment)."""
    for shm in segments:
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            pass


class ShmTransport(Transport):
    """Per-rank handle: outgoing rings to every peer + reader threads."""

    def __init__(
        self,
        world_rank: int,
        world_size: int,
        job_id: str,
        peers: list[int] | None = None,
    ) -> None:
        super().__init__(world_rank, world_size)
        self._closed = threading.Event()
        self._out: dict[int, _Ring] = {}
        self._in: dict[int, _Ring] = {}
        self._write_locks: dict[int, threading.Lock] = {}
        self._readers: list[threading.Thread] = []
        # ``peers`` restricts the rings attached (grouped/hybrid launches
        # only create intra-group segments); default is the full mesh.
        ring_peers = (
            list(peers) if peers is not None else list(range(world_size))
        )
        for peer in ring_peers:
            if peer == world_rank:
                continue
            self._out[peer] = _Ring(
                _attach(segment_name(job_id, world_rank, peer), False)
            )
            self._in[peer] = _Ring(
                _attach(segment_name(job_id, peer, world_rank), False)
            )
            self._write_locks[peer] = threading.Lock()

    def connected_peers(self) -> list[int]:
        """Shm channels exist from attach time: exactly the ring peers."""
        return sorted(self._out)

    def attach(self, engine) -> None:
        """Bind the engine, *then* start draining the rings.

        Peer processes can write into our rings the moment they come up
        (there is no rendezvous on shm); frames simply wait in shared
        memory until the readers start.  Starting the readers before the
        engine is bound would let an early frame hit an engine-less
        transport and kill the reader thread.
        """
        super().attach(engine)
        if self._readers:
            return
        for peer, ring in self._in.items():
            t = threading.Thread(
                target=self._read_loop, args=(ring,),
                name=f"shm-read-r{self.world_rank}-from{peer}", daemon=True,
            )
            t.start()
            self._readers.append(t)

    def _read_loop(self, ring: _Ring) -> None:
        # One reusable accumulator: the ring drains straight into it,
        # headers are unpacked in place, and consumed frames are trimmed
        # with an in-place `del` — the only per-message copy left is the
        # payload handed to the engine (which outlives the accumulator).
        pending = bytearray()
        spins = 0
        while not self._closed.is_set():
            if not ring.read_into(pending):
                spins += 1
                # Back off quickly: on oversubscribed hosts (ranks >
                # cores) spinning readers starve the senders they wait on.
                if spins > 50:
                    time.sleep(100e-6)
                continue
            spins = 0
            # Parse as many complete frames as are buffered.
            offset = 0
            while len(pending) - offset >= HEADER_SIZE:
                env = unpack_header_from(pending, offset)
                total = HEADER_SIZE + env.nbytes
                if len(pending) - offset < total:
                    break
                with memoryview(pending) as view:
                    payload = bytes(view[offset + HEADER_SIZE:offset + total])  # ombpy-lint: ignore[OMB301,OMB302]
                offset += total
                self._deliver_local(env, payload)
            if offset:
                del pending[:offset]

    def send(self, dest_world_rank: int, env: Envelope, payload: bytes) -> None:
        if dest_world_rank == self.world_rank:
            self._deliver_local(env, payload)
            return
        try:
            ring = self._out[dest_world_rank]
        except KeyError:
            raise RankError(
                f"no shm ring to rank {dest_world_rank}"
            ) from None
        header = pack_header(env)
        # Header and payload go in as separate ring writes under one lock
        # acquisition, so the byte stream stays contiguous without ever
        # concatenating them; large payloads are chunked through the ring
        # as zero-copy memoryview slices.
        with self._write_locks[dest_world_rank]:
            ring.write(header, self._closed)
            if payload:
                limit = ring.capacity // 2
                with memoryview(payload) as view:
                    for off in range(0, len(view), limit):
                        ring.write(view[off:off + limit], self._closed)

    def send_control(
        self, dest_world_rank: int, kind: int, payload: bytes = b""
    ) -> None:
        """Control frames use a non-blocking ring write.

        There is no EOF on shared memory, so heartbeats are the *only*
        liveness signal here; a full ring (reader slow or dead) simply
        skips this beat rather than blocking the detector thread.
        """
        ring = self._out.get(dest_world_rank)
        if ring is None or self._closed.is_set():
            return
        env = control_envelope(
            kind, self.world_rank, dest_world_rank, len(payload)
        )
        with self._write_locks[dest_world_rank]:
            ring.try_write(pack_header(env) + payload)

    def close(self) -> None:
        if self._closed.is_set():
            return
        for peer in list(self._out):
            self.send_control(peer, CTRL_GOODBYE)
        self._closed.set()
        for t in self._readers:
            t.join(timeout=2)
        for ring in list(self._out.values()) + list(self._in.values()):
            ring.close()
