"""In-process transport: all ranks are threads sharing one fabric.

``send`` is a direct call into the destination's matching engine, so the
per-sender ordering guarantee falls out of Python's sequential execution
within each sender thread.  This is the transport the test suite uses —
it is deterministic, needs no sockets, and exercises identical matching
and collective code paths as the multi-process TCP transport.
"""

from __future__ import annotations

import threading

from ..exceptions import InternalError, RankError, RankFailedError
from ..matching import Envelope
from .base import Transport


class InprocFabric:
    """Shared switchboard connecting the per-rank inproc transports."""

    def __init__(self, world_size: int) -> None:
        if world_size < 1:
            raise RankError(f"world size must be >= 1, got {world_size}")
        self.world_size = world_size
        self._transports: list["InprocTransport | None"] = [None] * world_size
        self._lock = threading.Lock()
        self._closed = False

    def create_transport(self, world_rank: int) -> "InprocTransport":
        """Create (and register) the transport for one rank."""
        if not 0 <= world_rank < self.world_size:
            raise RankError(
                f"rank {world_rank} out of range [0, {self.world_size})"
            )
        t = InprocTransport(world_rank, self)
        with self._lock:
            if self._transports[world_rank] is not None:
                raise InternalError(
                    f"transport for rank {world_rank} already registered"
                )
            self._transports[world_rank] = t
        return t

    def route(self, dest: int, env: Envelope, payload: bytes) -> None:
        """Deliver directly into the destination rank's matching engine."""
        if self._closed:
            raise InternalError("send on closed fabric")
        if not 0 <= dest < self.world_size:
            raise RankError(f"destination rank {dest} out of range")
        t = self._transports[dest]
        if t is None or t.engine is None:
            raise InternalError(
                f"destination rank {dest} has no attached endpoint"
            )
        # Route through _deliver_local (not engine.deliver) so control
        # frames are intercepted uniformly across transports.
        t._deliver_local(env, payload)

    def mark_rank_failed(self, world_rank: int, reason: str) -> None:
        """Declare one rank dead to every other rank on the fabric.

        The threads-fabric analogue of a process death: there is no
        socket to EOF, so the harness calls this when a rank thread
        crashes.  Routed through each survivor's failure detector when
        one is attached, else straight into its matching engine.
        """
        for r, t in enumerate(self._transports):
            if r == world_rank or t is None:
                continue
            if t.detector is not None:
                t.detector.on_peer_lost(world_rank, reason)
            elif t.engine is not None:
                t.engine.set_failure(
                    RankFailedError(reason, rank=world_rank)
                )

    def close(self) -> None:
        self._closed = True


class InprocTransport(Transport):
    """Per-rank handle onto an :class:`InprocFabric`."""

    def __init__(self, world_rank: int, fabric: InprocFabric) -> None:
        super().__init__(world_rank, fabric.world_size)
        self._fabric = fabric

    def send(self, dest_world_rank: int, env: Envelope, payload: bytes) -> None:
        if dest_world_rank == self.world_rank:
            self._deliver_local(env, payload)
        else:
            self._fabric.route(dest_world_rank, env, payload)

    def close(self) -> None:
        # Per-rank close is a no-op; the fabric owns shared state.
        pass
