"""TCP mesh transport for multi-process runs.

Each rank binds a listening socket; the launcher distributes the full
``rank -> port`` map; every rank then connects to every *lower* rank, so
each ordered pair of ranks shares exactly one TCP connection.  One reader
thread per peer connection parses frames and delivers them into the local
matching engine.  TCP's in-order delivery per connection provides the
per-sender ordering the matching engine requires.
"""

from __future__ import annotations

import socket
import struct
import threading

from ..exceptions import InternalError, RankError
from ..matching import Envelope
from .base import HEADER_SIZE, Transport, pack_header, unpack_header

# Connection preamble: the connecting side announces its world rank.
_HELLO = struct.Struct("<i")


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ConnectionError on EOF."""
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


class TcpTransport(Transport):
    """Full-mesh localhost TCP transport for one rank."""

    def __init__(
        self,
        world_rank: int,
        world_size: int,
        listen_sock: socket.socket,
        port_map: dict[int, int],
        host: str = "127.0.0.1",
    ) -> None:
        super().__init__(world_rank, world_size)
        self._host = host
        self._listen_sock = listen_sock
        self._port_map = port_map
        self._peers: dict[int, socket.socket] = {}
        self._send_locks: dict[int, threading.Lock] = {}
        self._readers: list[threading.Thread] = []
        self._closed = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._mesh_ready = threading.Event()
        self._expected_inbound = world_rank  # ranks below us dial in... no:
        # ranks *above* us dial in; we dial ranks below us.
        self._expected_inbound = world_size - world_rank - 1

    # -- setup -----------------------------------------------------------
    @staticmethod
    def bind_ephemeral(host: str = "127.0.0.1") -> socket.socket:
        """Bind a listening socket on an OS-assigned port."""
        s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        s.bind((host, 0))
        s.listen(128)
        return s

    def establish_mesh(self, timeout: float = 60.0) -> None:
        """Accept inbound peers and dial lower ranks; blocks until complete."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"tcp-accept-r{self.world_rank}",
            daemon=True,
        )
        self._accept_thread.start()

        # Dial every lower rank.
        for peer in range(self.world_rank):
            port = self._port_map[peer]
            sock = socket.create_connection(
                (self._host, port), timeout=timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.sendall(_HELLO.pack(self.world_rank))
            self._register_peer(peer, sock)

        if not self._mesh_ready.wait(timeout):
            raise InternalError(
                f"rank {self.world_rank}: mesh establishment timed out "
                f"({len(self._peers)}/{self.world_size - 1} peers)"
            )

    def _accept_loop(self) -> None:
        accepted = 0
        while accepted < self._expected_inbound and not self._closed.is_set():
            try:
                sock, _addr = self._listen_sock.accept()
            except OSError:
                break
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            (peer_rank,) = _HELLO.unpack(_recv_exact(sock, _HELLO.size))
            self._register_peer(peer_rank, sock)
            accepted += 1
        self._maybe_ready()

    def _register_peer(self, peer_rank: int, sock: socket.socket) -> None:
        self._peers[peer_rank] = sock
        self._send_locks[peer_rank] = threading.Lock()
        reader = threading.Thread(
            target=self._read_loop, args=(peer_rank, sock),
            name=f"tcp-read-r{self.world_rank}-from{peer_rank}", daemon=True,
        )
        reader.start()
        self._readers.append(reader)
        self._maybe_ready()

    def _maybe_ready(self) -> None:
        if len(self._peers) >= self.world_size - 1:
            self._mesh_ready.set()

    # -- data path -------------------------------------------------------
    def _read_loop(self, peer_rank: int, sock: socket.socket) -> None:
        try:
            while not self._closed.is_set():
                header = _recv_exact(sock, HEADER_SIZE)
                env = unpack_header(header)
                payload = (
                    _recv_exact(sock, env.nbytes) if env.nbytes else b""
                )
                self._deliver_local(env, payload)
        except (ConnectionError, OSError):
            # Peer shut down; normal at teardown.
            return

    def send(self, dest_world_rank: int, env: Envelope, payload: bytes) -> None:
        if dest_world_rank == self.world_rank:
            self._deliver_local(env, payload)
            return
        try:
            sock = self._peers[dest_world_rank]
        except KeyError:
            raise RankError(
                f"no connection to rank {dest_world_rank} "
                f"(world size {self.world_size})"
            ) from None
        frame = pack_header(env) + payload
        # One lock per peer keeps concurrent senders from interleaving frames.
        with self._send_locks[dest_world_rank]:
            sock.sendall(frame)

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self._listen_sock.close()
        except OSError:
            pass
        for sock in self._peers.values():
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
