"""TCP mesh transport for multi-process runs.

Each rank binds a listening socket; the launcher distributes the full
``rank -> port`` map; every rank then connects to every *lower* rank, so
each ordered pair of ranks shares exactly one TCP connection.  One reader
thread per peer connection parses frames and delivers them into the local
matching engine.  TCP's in-order delivery per connection provides the
per-sender ordering the matching engine requires.

Resilience: mesh dialing retries refused/timed-out connects with capped
exponential backoff (a peer may not have reached ``listen`` yet); the
accept loop survives half-open handshakes from peers that die mid-HELLO;
and once the mesh is up, an unexpected EOF / ``ECONNRESET`` on a peer
connection is reported to the attached failure detector instead of being
silently swallowed.
"""

from __future__ import annotations

import errno
import logging
import random
import socket
import struct
import threading
import time

from ..exceptions import InternalError, RankError, RankFailedError
from ..matching import Envelope
from .base import (
    CTRL_GOODBYE, HEADER_SIZE, Transport, pack_header, recv_exact_into,
    send_frame, unpack_header,
)

logger = logging.getLogger(__name__)

# Connection preamble: the connecting side announces its world rank.
_HELLO = struct.Struct("<i")

# Dial-retry backoff (mesh establishment).
_DIAL_INITIAL_BACKOFF = 0.02
_DIAL_MAX_BACKOFF = 1.0

#: Transient connect errnos worth retrying during mesh establishment: the
#: peer's listener may simply not be up yet (startup race).
_RETRYABLE_ERRNOS = frozenset({
    errno.ECONNREFUSED, errno.ETIMEDOUT, errno.ECONNRESET,
    errno.ECONNABORTED, errno.EAGAIN,
})


def _recv_exact(sock: socket.socket, n: int) -> bytearray:
    """Read exactly ``n`` bytes or raise ConnectionError on EOF.

    Single-allocation ``recv_into`` (see ``base.recv_exact_into``): the
    payload is copied exactly once, kernel to buffer.
    """
    return recv_exact_into(sock, n)


def dial_with_retry(
    connect, timeout: float, describe: str,
    initial_backoff: float = _DIAL_INITIAL_BACKOFF,
    max_backoff: float = _DIAL_MAX_BACKOFF,
):
    """Call ``connect()`` until it succeeds or ``timeout`` elapses.

    Retries transient connect failures (refused, timed out, reset) with
    capped exponential backoff plus jitter — the fix for the startup race
    where a rank dials a peer that has not reached ``listen()`` yet.
    """
    deadline = time.monotonic() + timeout
    backoff = initial_backoff
    attempt = 0
    while True:
        attempt += 1
        try:
            return connect()
        except (ConnectionError, TimeoutError, OSError) as exc:
            err = getattr(exc, "errno", None)
            transient = (
                isinstance(exc, (ConnectionError, TimeoutError))
                or err in _RETRYABLE_ERRNOS
            )
            if not transient or time.monotonic() >= deadline:
                raise InternalError(
                    f"{describe}: connect failed after {attempt} "
                    f"attempt(s): {exc!r}"
                ) from exc
            # Full jitter keeps simultaneous dialers from re-colliding.
            # The deadline may slip past between the check above and
            # here under load — clamp so sleep() never goes negative.
            time.sleep(max(0.0, min(backoff, deadline - time.monotonic()))
                       * random.uniform(0.5, 1.0))
            backoff = min(backoff * 2, max_backoff)


class TcpTransport(Transport):
    """Full-mesh localhost TCP transport for one rank."""

    def __init__(
        self,
        world_rank: int,
        world_size: int,
        listen_sock: socket.socket,
        port_map: dict[int, int],
        host: str = "127.0.0.1",
    ) -> None:
        super().__init__(world_rank, world_size)
        self._host = host
        self._listen_sock = listen_sock
        self._port_map = port_map
        self._peers: dict[int, socket.socket] = {}
        self._send_locks: dict[int, threading.Lock] = {}
        self._readers: list[threading.Thread] = []
        self._closed = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._mesh_ready = threading.Event()
        # Ranks *above* us dial in; we dial ranks below us.
        self._expected_inbound = world_size - world_rank - 1

    # -- setup -----------------------------------------------------------
    @staticmethod
    def bind_ephemeral(host: str = "127.0.0.1") -> socket.socket:
        """Bind a listening socket on an OS-assigned port."""
        s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        s.bind((host, 0))
        s.listen(128)
        return s

    def establish_mesh(self, timeout: float = 60.0) -> None:
        """Accept inbound peers and dial lower ranks; blocks until complete."""
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name=f"tcp-accept-r{self.world_rank}",
            daemon=True,
        )
        self._accept_thread.start()

        # Dial every lower rank, retrying the startup race where the peer
        # has bound its port (the map says so) but not yet reached accept.
        for peer in range(self.world_rank):
            addr = (self._host, self._port_map[peer])
            sock = dial_with_retry(
                lambda: socket.create_connection(addr, timeout=timeout),
                timeout,
                f"rank {self.world_rank} dialing rank {peer} at "
                f"{addr[0]}:{addr[1]}",
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.sendall(_HELLO.pack(self.world_rank))
            self._register_peer(peer, sock)

        if not self._mesh_ready.wait(timeout):
            raise InternalError(
                f"rank {self.world_rank}: mesh establishment timed out "
                f"({len(self._peers)}/{self.world_size - 1} peers)"
            )

    def _accept_loop(self) -> None:
        accepted = 0
        while accepted < self._expected_inbound and not self._closed.is_set():
            try:
                sock, _addr = self._listen_sock.accept()
            except OSError:
                break
            # A peer can die between connect() and sending its HELLO; a
            # half-open socket must not kill the accept loop (which would
            # wedge every later-arriving peer).
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
                (peer_rank,) = _HELLO.unpack(_recv_exact(sock, _HELLO.size))
            except (ConnectionError, OSError, struct.error) as exc:
                logger.warning(
                    "rank %d: dropping half-open inbound connection "
                    "(peer died mid-handshake: %r)", self.world_rank, exc,
                )
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            self._register_peer(peer_rank, sock)
            accepted += 1
        self._maybe_ready()

    def _register_peer(self, peer_rank: int, sock: socket.socket) -> None:
        self._peers[peer_rank] = sock
        self._send_locks[peer_rank] = threading.Lock()
        reader = threading.Thread(
            target=self._read_loop, args=(peer_rank, sock),
            name=f"tcp-read-r{self.world_rank}-from{peer_rank}", daemon=True,
        )
        reader.start()
        self._readers.append(reader)
        self._maybe_ready()

    def _maybe_ready(self) -> None:
        if len(self._peers) >= self.world_size - 1:
            self._mesh_ready.set()

    # -- data path -------------------------------------------------------
    def _read_loop(self, peer_rank: int, sock: socket.socket) -> None:
        try:
            while not self._closed.is_set():
                header = _recv_exact(sock, HEADER_SIZE)
                env = unpack_header(header)
                payload = (
                    _recv_exact(sock, env.nbytes) if env.nbytes else b""
                )
                self._deliver_local(env, payload)
        except (ConnectionError, OSError) as exc:
            if self._closed.is_set():
                return  # our own teardown
            # Peer connection died while the job is live: either the peer
            # crashed (report it) or it finalized cleanly (it sent GOODBYE
            # first, which the detector uses to suppress the report).
            self.report_peer_lost(
                peer_rank, f"connection lost mid-run: {exc!r}"
            )

    def send(self, dest_world_rank: int, env: Envelope, payload: bytes) -> None:
        if dest_world_rank == self.world_rank:
            self._deliver_local(env, payload)
            return
        try:
            sock = self._peers[dest_world_rank]
        except KeyError:
            raise RankError(
                f"no connection to rank {dest_world_rank} "
                f"(world size {self.world_size})"
            ) from None
        header = pack_header(env)
        # One lock per peer keeps concurrent senders from interleaving
        # frames; send_frame gathers header+payload without concatenating.
        try:
            with self._send_locks[dest_world_rank]:
                send_frame(sock, header, payload)
        except (BrokenPipeError, ConnectionResetError, ConnectionError) as exc:
            if self._closed.is_set():
                raise
            self.report_peer_lost(
                dest_world_rank, f"send failed: {exc!r}"
            )
            raise RankFailedError(
                f"send to rank {dest_world_rank} failed: peer is dead "
                f"({exc!r})", rank=dest_world_rank,
            ) from exc

    def close(self) -> None:
        if self._closed.is_set():
            return
        # Announce clean departure before tearing sockets down, so peers'
        # read loops interpret the coming EOF as a goodbye, not a crash.
        for peer in list(self._peers):
            self.send_control(peer, CTRL_GOODBYE)
        self._closed.set()
        try:
            self._listen_sock.close()
        except OSError:
            pass
        for sock in self._peers.values():
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
