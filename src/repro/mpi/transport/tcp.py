"""TCP transport for multi-process runs, on the lazy stream fabric.

Each rank binds a listening socket; the launcher distributes the full
``rank -> port`` map; connections are then established *on first send*
by :class:`~repro.mpi.fabric.stream.LazyStreamFabric` instead of the old
eager O(N²) mesh — ``establish_mesh`` just starts the acceptor and
returns.  TCP's in-order delivery per connection provides the per-sender
ordering the matching engine requires, and the fabric's reader chaining
preserves it across LRU eviction and re-dial.

Failure semantics are unchanged: an unexpected EOF / ``ECONNRESET`` on
an established connection is reported to the attached failure detector,
and a dial that stays refused is a dead peer (the port map is only
distributed after every rank reached ``listen``, so there is no
listener-startup race to wait out).
"""

from __future__ import annotations

import socket

from ..exceptions import RankError
from ..fabric.stream import LazyStreamFabric, dial_with_retry  # noqa: F401
from ..matching import Envelope
from .base import CTRL_GOODBYE, Transport

__all__ = ["TcpTransport", "dial_with_retry"]


def _nodelay(sock: socket.socket) -> None:
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)


class TcpTransport(Transport):
    """Localhost TCP transport for one rank (lazy connection cache)."""

    def __init__(
        self,
        world_rank: int,
        world_size: int,
        listen_sock: socket.socket,
        port_map: dict[int, int],
        host: str = "127.0.0.1",
    ) -> None:
        super().__init__(world_rank, world_size)
        self._host = host
        self._port_map = port_map
        self._fabric = LazyStreamFabric(
            self, listen_sock, self._dial_peer,
            label="tcp", configure=_nodelay,
        )

    # -- setup -----------------------------------------------------------
    @staticmethod
    def bind_ephemeral(host: str = "127.0.0.1") -> socket.socket:
        """Bind a listening socket on an OS-assigned port."""
        s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        s.bind((host, 0))
        s.listen(128)
        return s

    def establish_mesh(self, timeout: float = 60.0) -> None:
        """Start the acceptor; O(1) — peers are dialed on first send."""
        self._fabric.start()

    def _dial_peer(self, peer: int) -> socket.socket:
        addr = (self._host, self._port_map[peer])
        return socket.create_connection(addr, timeout=10.0)

    # -- data path -------------------------------------------------------
    def send(self, dest_world_rank: int, env: Envelope, payload: bytes) -> None:
        if dest_world_rank == self.world_rank:
            self._deliver_local(env, payload)
            return
        if dest_world_rank not in self._port_map:
            raise RankError(
                f"no route to rank {dest_world_rank} "
                f"(world size {self.world_size})"
            )
        self._fabric.send(dest_world_rank, env, payload)

    # -- fabric surface ---------------------------------------------------
    def ensure_peer(self, peer_world_rank: int) -> None:
        self._fabric.ensure(peer_world_rank)

    def connected_peers(self) -> list[int]:
        return self._fabric.connected()

    def connection_stats(self) -> dict[str, int]:
        """Connection-cache counters (dials, evictions, peak peers...)."""
        return self._fabric.stats()

    def close(self) -> None:
        # Announce clean departure on *established* channels before
        # tearing them down, so peers' readers interpret the coming EOF
        # as a goodbye, not a crash.  Unestablished peers need nothing:
        # there is no socket whose EOF could be misread.
        for peer in self._fabric.connected():
            self.send_control(peer, CTRL_GOODBYE)
        self._fabric.close()
