"""Unix-domain-socket transport, on the lazy stream fabric.

Same framing and fabric as the TCP transport, but over ``AF_UNIX``
sockets — the lower-latency local path (no TCP/IP stack, no port
allocation), standing in for the shared-memory channels real MPI
libraries use intra-node.  Selected with ``ombpy-run --transport uds``.

UDS has no rendezvous step: a rank's address is its socket file, which
appears when the rank binds.  A dial can therefore race rank startup —
``ENOENT`` (file not there yet) is retried up to the full dial timeout,
while a *refused* connect keeps the short dead-peer patience the fabric
applies everywhere.
"""

from __future__ import annotations

import errno
import os
import socket
import tempfile

from ..exceptions import RankError
from ..fabric.stream import LazyStreamFabric
from ..matching import Envelope
from .base import CTRL_GOODBYE, Transport


def socket_dir(job_id: str) -> str:
    """Directory holding the job's rank sockets."""
    return os.path.join(tempfile.gettempdir(), f"ombpy-uds-{job_id}")


def socket_path(job_id: str, rank: int) -> str:
    return os.path.join(socket_dir(job_id), f"rank{rank}.sock")


class UdsTransport(Transport):
    """AF_UNIX transport for one rank (lazy connection cache)."""

    def __init__(self, world_rank: int, world_size: int, job_id: str) -> None:
        super().__init__(world_rank, world_size)
        self._job_id = job_id
        os.makedirs(socket_dir(job_id), exist_ok=True)
        self._path = socket_path(job_id, world_rank)
        try:
            os.unlink(self._path)
        except FileNotFoundError:
            pass
        listen = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listen.bind(self._path)
        listen.listen(max(world_size, 8))
        self._fabric = LazyStreamFabric(
            self, listen, self._dial_peer, label="uds",
            startup_errnos=frozenset({errno.ENOENT}),
        )

    def establish_mesh(self, timeout: float = 60.0) -> None:
        """Start the acceptor; O(1) — peers are dialed on first send."""
        self._fabric.start()

    def _dial_peer(self, peer: int) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(socket_path(self._job_id, peer))
        except BaseException:
            sock.close()
            raise
        return sock

    # -- data path -------------------------------------------------------
    def send(self, dest_world_rank: int, env: Envelope, payload: bytes) -> None:
        if dest_world_rank == self.world_rank:
            self._deliver_local(env, payload)
            return
        if not 0 <= dest_world_rank < self.world_size:
            raise RankError(
                f"no route to rank {dest_world_rank} "
                f"(world size {self.world_size})"
            )
        self._fabric.send(dest_world_rank, env, payload)

    # -- fabric surface ---------------------------------------------------
    def ensure_peer(self, peer_world_rank: int) -> None:
        self._fabric.ensure(peer_world_rank)

    def connected_peers(self) -> list[int]:
        return self._fabric.connected()

    def connection_stats(self) -> dict[str, int]:
        """Connection-cache counters (dials, evictions, peak peers...)."""
        return self._fabric.stats()

    def close(self) -> None:
        for peer in self._fabric.connected():
            self.send_control(peer, CTRL_GOODBYE)
        self._fabric.close()
        try:
            os.unlink(self._path)
        except OSError:
            pass
