"""Unix-domain-socket mesh transport.

Same mesh topology and framing as the TCP transport, but over
``AF_UNIX`` sockets — the lower-latency local path (no TCP/IP stack,
no port allocation), standing in for the shared-memory channels real MPI
libraries use intra-node.  Selected with ``ombpy-run --transport uds``.

Resilience mirrors the TCP transport: backed-off dial retries during
mesh establishment, a half-open-handshake guard in the accept loop, and
EOF/``ECONNRESET`` interpretation on the data path feeding the failure
detector.
"""

from __future__ import annotations

import logging
import os
import socket
import struct
import tempfile
import threading
import time

from ..exceptions import InternalError, RankError, RankFailedError
from ..matching import Envelope
from .base import (
    CTRL_GOODBYE, HEADER_SIZE, Transport, pack_header, recv_exact_into,
    send_frame, unpack_header,
)

logger = logging.getLogger(__name__)

_HELLO = struct.Struct("<i")


def _recv_exact(sock: socket.socket, n: int) -> bytearray:
    """Read exactly ``n`` bytes, copied once (see base.recv_exact_into)."""
    return recv_exact_into(sock, n)


def socket_dir(job_id: str) -> str:
    """Directory holding the job's rank sockets."""
    return os.path.join(tempfile.gettempdir(), f"ombpy-uds-{job_id}")


def socket_path(job_id: str, rank: int) -> str:
    return os.path.join(socket_dir(job_id), f"rank{rank}.sock")


class UdsTransport(Transport):
    """Full-mesh AF_UNIX transport for one rank."""

    def __init__(self, world_rank: int, world_size: int, job_id: str) -> None:
        super().__init__(world_rank, world_size)
        self._job_id = job_id
        os.makedirs(socket_dir(job_id), exist_ok=True)
        self._path = socket_path(job_id, world_rank)
        try:
            os.unlink(self._path)
        except FileNotFoundError:
            pass
        self._listen = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listen.bind(self._path)
        self._listen.listen(world_size)
        self._peers: dict[int, socket.socket] = {}
        self._send_locks: dict[int, threading.Lock] = {}
        self._closed = threading.Event()
        self._mesh_ready = threading.Event()
        self._expected_inbound = world_size - world_rank - 1

    def establish_mesh(self, timeout: float = 60.0) -> None:
        """Accept higher ranks, dial lower ranks; blocks until complete."""
        accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True,
            name=f"uds-accept-r{self.world_rank}",
        )
        accept_thread.start()
        for peer in range(self.world_rank):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            # The peer's socket file may not exist yet (startup race):
            # retry with capped exponential backoff until the deadline.
            deadline = time.monotonic() + timeout
            backoff = 0.005
            while True:
                try:
                    sock.connect(socket_path(self._job_id, peer))
                    break
                except (FileNotFoundError, ConnectionRefusedError) as exc:
                    if time.monotonic() >= deadline:
                        raise InternalError(
                            f"rank {self.world_rank}: peer {peer} socket "
                            f"never appeared ({exc!r})"
                        ) from exc
                    time.sleep(backoff)
                    backoff = min(backoff * 2, 0.25)
            sock.sendall(_HELLO.pack(self.world_rank))
            self._register_peer(peer, sock)
        if not self._mesh_ready.wait(timeout):
            raise InternalError(
                f"rank {self.world_rank}: UDS mesh establishment timed out"
            )

    def _accept_loop(self) -> None:
        accepted = 0
        while accepted < self._expected_inbound and not self._closed.is_set():
            try:
                sock, _addr = self._listen.accept()
            except OSError:
                break
            try:
                (peer_rank,) = _HELLO.unpack(_recv_exact(sock, _HELLO.size))
            except (ConnectionError, OSError, struct.error) as exc:
                logger.warning(
                    "rank %d: dropping half-open UDS connection "
                    "(peer died mid-handshake: %r)", self.world_rank, exc,
                )
                try:
                    sock.close()
                except OSError:
                    pass
                continue
            self._register_peer(peer_rank, sock)
            accepted += 1
        self._maybe_ready()

    def _register_peer(self, peer_rank: int, sock: socket.socket) -> None:
        self._peers[peer_rank] = sock
        self._send_locks[peer_rank] = threading.Lock()
        threading.Thread(
            target=self._read_loop, args=(peer_rank, sock), daemon=True,
            name=f"uds-read-r{self.world_rank}-from{peer_rank}",
        ).start()
        self._maybe_ready()

    def _maybe_ready(self) -> None:
        if len(self._peers) >= self.world_size - 1:
            self._mesh_ready.set()

    def _read_loop(self, peer_rank: int, sock: socket.socket) -> None:
        try:
            while not self._closed.is_set():
                env = unpack_header(_recv_exact(sock, HEADER_SIZE))
                payload = _recv_exact(sock, env.nbytes) if env.nbytes else b""
                self._deliver_local(env, payload)
        except (ConnectionError, OSError) as exc:
            if self._closed.is_set():
                return
            self.report_peer_lost(
                peer_rank, f"connection lost mid-run: {exc!r}"
            )

    def send(self, dest_world_rank: int, env: Envelope, payload: bytes) -> None:
        if dest_world_rank == self.world_rank:
            self._deliver_local(env, payload)
            return
        try:
            sock = self._peers[dest_world_rank]
        except KeyError:
            raise RankError(
                f"no UDS connection to rank {dest_world_rank}"
            ) from None
        header = pack_header(env)
        # send_frame gathers header+payload in one syscall, no concat copy.
        try:
            with self._send_locks[dest_world_rank]:
                send_frame(sock, header, payload)
        except (BrokenPipeError, ConnectionResetError, ConnectionError) as exc:
            if self._closed.is_set():
                raise
            self.report_peer_lost(
                dest_world_rank, f"send failed: {exc!r}"
            )
            raise RankFailedError(
                f"send to rank {dest_world_rank} failed: peer is dead "
                f"({exc!r})", rank=dest_world_rank,
            ) from exc

    def close(self) -> None:
        if self._closed.is_set():
            return
        for peer in list(self._peers):
            self.send_control(peer, CTRL_GOODBYE)
        self._closed.set()
        try:
            self._listen.close()
        except OSError:
            pass
        for sock in self._peers.values():
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        try:
            os.unlink(self._path)
        except OSError:
            pass
