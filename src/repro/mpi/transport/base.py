"""Transport interface and wire framing.

A transport moves ``(Envelope, payload)`` pairs between world ranks and
feeds the receiver's :class:`~repro.mpi.matching.MatchingEngine`.  The
contract every implementation must honour:

* **per-sender ordering** — two messages from the same sender to the same
  receiver are delivered in send order;
* **reliability** — no drops, no duplicates (we run over threads or local
  TCP, both reliable);
* **thread safety** — ``send`` may be called from multiple threads.

Besides application frames, transports carry a tiny *control plane* on the
same channels: frames whose envelope context is :data:`CONTROL_CONTEXT`
never reach the matching engine — :meth:`Transport._deliver_local` routes
them to the attached :class:`~repro.mpi.resilience.FailureDetector`
instead.  Control frames are heartbeats (peer liveness) and goodbyes
(clean departure, so a following EOF is not misread as a crash).
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod

from ..matching import Envelope, MatchingEngine

# Frame header: context(i64) source(i32) dest(i32) tag(q) nbytes(q)
# Context is 64-bit because derived-communicator context ids are built by
# shifting the parent id left 16 bits per derivation level.
_HEADER = struct.Struct("<qiiqq")
HEADER_SIZE = _HEADER.size

#: Reserved (negative) context id marking control-plane frames.  User
#: communicator contexts are always >= 0, so no collision is possible.
CONTROL_CONTEXT = -1

#: Reserved (negative) context id marking reliability-protocol ACK
#: frames (see :mod:`repro.mpi.reliability`).  Like control frames,
#: ACKs never reach the matching engine; unlike them they are consumed
#: by the reliability layer's receive shim rather than the detector.
ACK_CONTEXT = -2

#: High context bit reserved for runtime-internal (ULFM recovery)
#: traffic.  ``Comm._derive_context`` caps user contexts below this
#: bit, so ``parent_context | ULFM_CONTEXT_FLAG`` can never collide
#: with an application communicator.  Frames in this range bypass
#: fault injection: the recovery protocol must not depend on the very
#: machinery it is reconfiguring.
ULFM_CONTEXT_FLAG = 1 << 62

#: Control frame kinds, carried in the envelope tag.
CTRL_HEARTBEAT = 0
CTRL_GOODBYE = 1
CTRL_REVOKE = 2  # payload: packed context id of the revoked communicator
#: Connection-level farewell (lazy stream fabrics): "I am closing *this
#: connection*" — unlike CTRL_GOODBYE it says nothing about the rank,
#: which stays alive and re-dialable.  Consumed inside the fabric's
#: reader (never reaches the detector), so an LRU eviction is not
#: misread as a peer death.
CTRL_BYE = 3


def control_envelope(
    kind: int, source: int, dest: int, nbytes: int = 0
) -> Envelope:
    """Build the envelope for a control frame."""
    return Envelope(CONTROL_CONTEXT, source, dest, kind, nbytes)


def fault_exempt(context: int) -> bool:
    """Whether frames on ``context`` bypass fault injection.

    Negative contexts (control plane, reliability ACKs) and ULFM
    recovery traffic are wall-clock driven or load-bearing for
    recovery itself; faulting them would destroy replay determinism
    (extra RNG draws at nondeterministic points) or let the chaos
    layer break the machinery that absorbs the chaos.
    """
    return context < 0 or bool(context & ULFM_CONTEXT_FLAG)


def pack_header(env: Envelope) -> bytes:
    """Serialize an envelope into the fixed-size wire header."""
    return _HEADER.pack(env.context, env.source, env.dest, env.tag, env.nbytes)


def unpack_header(data: bytes) -> Envelope:
    """Deserialize the fixed-size wire header into an envelope."""
    context, source, dest, tag, nbytes = _HEADER.unpack(data)
    return Envelope(context, source, dest, tag, nbytes)


def unpack_header_from(buf, offset: int = 0) -> Envelope:
    """Deserialize a header in place from any buffer, without slicing it
    out first — the zero-copy variant for transport read loops."""
    context, source, dest, tag, nbytes = _HEADER.unpack_from(buf, offset)
    return Envelope(context, source, dest, tag, nbytes)


def send_frame(sock, header: bytes, payload: bytes) -> None:
    """Write ``header + payload`` to a stream socket without building the
    concatenated frame.

    ``sendmsg`` gathers both parts into one syscall (kernel-side
    scatter/gather); on a partial write the remainder goes out through
    ``sendall`` over zero-copy memoryview slices.  Callers must hold the
    per-peer send lock so frames never interleave.
    """
    total = len(header) + len(payload)
    try:
        sent = sock.sendmsg([header, payload])
    except (AttributeError, NotImplementedError):
        # Platform without sendmsg: two sendalls still avoid the copy.
        sock.sendall(header)
        if payload:
            sock.sendall(payload)
        return
    if sent >= total:
        return
    if sent < len(header):
        with memoryview(header) as view:
            sock.sendall(view[sent:])
        if payload:
            sock.sendall(payload)
    else:
        with memoryview(payload) as view:
            sock.sendall(view[sent - len(header):])


def recv_exact_into(sock, n: int) -> bytearray:
    """Read exactly ``n`` bytes into one preallocated buffer.

    Replaces the chunk-list + ``b"".join`` pattern: every ``recv_into``
    lands directly in its final position, so the bytes are copied once
    (kernel -> buffer) instead of twice.  Raises ConnectionError on EOF.
    """
    buf = bytearray(n)
    got = 0
    with memoryview(buf) as view:
        while got < n:
            r = sock.recv_into(view[got:], n - got)
            if r == 0:
                raise ConnectionError("peer closed connection mid-frame")
            got += r
    return buf


class Transport(ABC):
    """Moves framed messages between world ranks."""

    def __init__(self, world_rank: int, world_size: int) -> None:
        self.world_rank = world_rank
        self.world_size = world_size
        # The endpoint's matching engine; assigned by the world bootstrap
        # before any traffic flows.
        self.engine: MatchingEngine | None = None
        # Optional failure detector (repro.mpi.resilience); duck-typed so
        # transports stay importable without the resilience module.
        self.detector = None
        # Optional endpoint-level control listener (duck-typed, set by
        # Endpoint on the innermost transport): receives non-liveness
        # control frames such as CTRL_REVOKE, which carry communicator
        # state rather than peer-liveness signals.
        self.control_listener = None

    def attach(self, engine: MatchingEngine) -> None:
        """Bind the matching engine that receives delivered messages."""
        self.engine = engine

    def innermost(self) -> "Transport":
        """Unwrap transport decorators (faults, reliability) to the fabric."""
        t = self
        while True:
            inner = getattr(t, "inner", None)
            if inner is None:
                return t
            t = inner

    def _deliver_local(self, env: Envelope, payload: bytes) -> None:
        """Deliver into the local matching engine (self-sends, loopback).

        Control-plane frames are diverted to the failure detector or the
        endpoint's control listener (and silently dropped when the
        target is not attached).
        """
        if env.context == CONTROL_CONTEXT:
            if env.tag == CTRL_REVOKE:
                listener = self.control_listener
                if listener is not None:
                    listener.on_control(env, payload)
                return
            detector = self.detector
            if detector is not None:
                detector.on_control(env)
            return
        assert self.engine is not None, "transport used before attach()"
        self.engine.deliver(env, payload)

    # -- resilience hooks -------------------------------------------------
    def send_control(
        self, dest_world_rank: int, kind: int, payload: bytes = b""
    ) -> None:
        """Best-effort send of a control frame.

        Never raises: a peer that cannot be reached is reported to the
        detector (heartbeat case) or simply skipped (teardown case).
        """
        env = control_envelope(
            kind, self.world_rank, dest_world_rank, len(payload)
        )
        try:
            self.send(dest_world_rank, env, payload)
        except Exception as exc:  # noqa: BLE001 - liveness probe
            if kind == CTRL_HEARTBEAT:
                self.report_peer_lost(
                    dest_world_rank, f"heartbeat send failed: {exc!r}"
                )

    def report_peer_lost(self, peer_world_rank: int, reason: str) -> None:
        """A data-path thread observed a dead peer (EOF, ECONNRESET...)."""
        detector = self.detector
        if detector is not None:
            detector.on_peer_lost(peer_world_rank, reason)

    def ensure_peer(self, peer_world_rank: int) -> None:
        """Hint that traffic from ``peer_world_rank`` is expected soon.

        Lazy connection-cache fabrics (:mod:`repro.mpi.fabric`) override
        this to kick a background dial, so a rank blocked in a receive
        still establishes the channel that lets it *observe* the peer's
        death (EOF / refused dial) instead of hanging.  Eager fabrics
        ignore it; decorator transports forward it inward.
        """
        inner = getattr(self, "inner", None)
        if inner is not None:
            inner.ensure_peer(peer_world_rank)

    def connected_peers(self) -> list[int]:
        """World ranks this transport currently holds a channel to.

        The failure detector heartbeats exactly this set: on an eager
        fabric that is every peer (the default below), on a lazy fabric
        only the established ones — heartbeating the rest would dial the
        very O(N) mesh the fabric exists to avoid.
        """
        inner = getattr(self, "inner", None)
        if inner is not None:
            return inner.connected_peers()
        return [r for r in range(self.world_size) if r != self.world_rank]

    def send_unfaulted(
        self, dest_world_rank: int, env: Envelope, payload: bytes
    ) -> None:
        """Send bypassing any fault-injection layer in the stack.

        Retransmissions by the reliability layer use this path: they are
        wall-clock driven, so letting them consume fault-plan RNG draws
        would shift every later op index and destroy replay determinism
        (the same exemption the control plane gets).  The frame they
        resend already survived or skipped injection once; injecting it
        again would also let a hostile seed starve the retry loop.
        ``FaultyTransport`` overrides this to skip itself.
        """
        self.send(dest_world_rank, env, payload)

    @abstractmethod
    def send(self, dest_world_rank: int, env: Envelope, payload: bytes) -> None:
        """Send one framed message to ``dest_world_rank``.

        May block for flow control but must not fail for full buffers.
        """

    @abstractmethod
    def close(self) -> None:
        """Tear down connections/threads. Idempotent."""

    @property
    def name(self) -> str:
        """Short identifier used in benchmark output."""
        return type(self).__name__
