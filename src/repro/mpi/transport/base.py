"""Transport interface and wire framing.

A transport moves ``(Envelope, payload)`` pairs between world ranks and
feeds the receiver's :class:`~repro.mpi.matching.MatchingEngine`.  The
contract every implementation must honour:

* **per-sender ordering** — two messages from the same sender to the same
  receiver are delivered in send order;
* **reliability** — no drops, no duplicates (we run over threads or local
  TCP, both reliable);
* **thread safety** — ``send`` may be called from multiple threads.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod

from ..matching import Envelope, MatchingEngine

# Frame header: context(i64) source(i32) dest(i32) tag(q) nbytes(q)
# Context is 64-bit because derived-communicator context ids are built by
# shifting the parent id left 16 bits per derivation level.
_HEADER = struct.Struct("<qiiqq")
HEADER_SIZE = _HEADER.size


def pack_header(env: Envelope) -> bytes:
    """Serialize an envelope into the fixed-size wire header."""
    return _HEADER.pack(env.context, env.source, env.dest, env.tag, env.nbytes)


def unpack_header(data: bytes) -> Envelope:
    """Deserialize the fixed-size wire header into an envelope."""
    context, source, dest, tag, nbytes = _HEADER.unpack(data)
    return Envelope(context, source, dest, tag, nbytes)


class Transport(ABC):
    """Moves framed messages between world ranks."""

    def __init__(self, world_rank: int, world_size: int) -> None:
        self.world_rank = world_rank
        self.world_size = world_size
        # The endpoint's matching engine; assigned by the world bootstrap
        # before any traffic flows.
        self.engine: MatchingEngine | None = None

    def attach(self, engine: MatchingEngine) -> None:
        """Bind the matching engine that receives delivered messages."""
        self.engine = engine

    def _deliver_local(self, env: Envelope, payload: bytes) -> None:
        """Deliver into the local matching engine (self-sends, loopback)."""
        assert self.engine is not None, "transport used before attach()"
        self.engine.deliver(env, payload)

    @abstractmethod
    def send(self, dest_world_rank: int, env: Envelope, payload: bytes) -> None:
        """Send one framed message to ``dest_world_rank``.

        May block for flow control but must not fail for full buffers.
        """

    @abstractmethod
    def close(self) -> None:
        """Tear down connections/threads. Idempotent."""

    @property
    def name(self) -> str:
        """Short identifier used in benchmark output."""
        return type(self).__name__
