"""Communicators: the central runtime object.

A :class:`Comm` couples a :class:`~repro.mpi.group.Group` (which world ranks
participate and in what order), a *context id* (isolating its traffic from
every other communicator in the matching engine), and the per-process
endpoint (transport + matching engine).

The byte-level API here (``send_bytes``/``recv_bytes``/...) is what both the
mpi4py-workalike bindings layer and the "native" baseline build on; the
collectives in :mod:`repro.mpi.collectives` are implemented against it too.
"""

from __future__ import annotations

import itertools
import struct
import threading
import time
from typing import Sequence

import numpy as np

from . import constants as C
from .exceptions import (
    CommError, CommRevokedError, RankError, RootError, TagError,
)
from .group import Group
from .matching import Envelope, MatchingEngine, RecvTicket
from .request import Request, RecvRequest, SendRequest
from .status import Status
from .transport.base import CTRL_REVOKE, Transport

# Bits of context id consumed per derivation level.
_CTX_SHIFT = 16
_CTX_MASK = (1 << _CTX_SHIFT) - 1

# Payload layout of a CTRL_REVOKE frame: the revoked context id.
_REVOKE_FRAME = struct.Struct("<q")


class Endpoint:
    """Per-process communication endpoint: one transport + one engine."""

    def __init__(self, transport: Transport) -> None:
        self.transport = transport
        self.engine = MatchingEngine()
        transport.attach(self.engine)
        # Non-liveness control frames (CTRL_REVOKE) carry communicator
        # state; the innermost transport routes them here rather than to
        # the failure detector.
        transport.innermost().control_listener = self
        self.world_rank = transport.world_rank
        self.world_size = transport.world_size
        # Optional runtime verifier (repro.analysis.verify), buffer-race
        # sanitizer (repro.analysis.sanitize), and telemetry
        # (repro.telemetry); duck-typed so the runtime never imports
        # those packages.
        self.verifier = None
        self.sanitizer = None
        self.telemetry = None
        # Node-group topology (repro.mpi.topology.GroupMap) when the
        # launch declared one (--groups / OMBPY_GROUPS); the collective
        # selector switches to hierarchical algorithms when present.
        self.group_map = None

    def on_control(self, env: Envelope, payload: bytes) -> None:
        """Handle a non-liveness control frame from a peer."""
        if env.tag == CTRL_REVOKE and len(payload) >= 8:
            (context,) = _REVOKE_FRAME.unpack_from(payload)
            self.engine.revoke_context(context)

    def close(self) -> None:
        self.transport.close()


class Comm:
    """A communicator over a group of world ranks."""

    def __init__(
        self,
        endpoint: Endpoint,
        group: Group,
        context: int = 0,
        thread_level: int = C.THREAD_MULTIPLE,
    ) -> None:
        my_rank = group.rank_of(endpoint.world_rank)
        if my_rank == C.UNDEFINED:
            raise CommError(
                f"world rank {endpoint.world_rank} not in communicator group"
            )
        self._endpoint = endpoint
        self._group = group
        self._context = context
        self._rank = my_rank
        self._freed = False
        self.thread_level = thread_level
        # Per-communicator derived-context counter; creation operations are
        # collective, so this stays identical across all member ranks.
        self._derive_counter = itertools.count(1)
        # Per-communicator collective sequence number for internal tags.
        self._coll_seq = itertools.count()
        self._coll_lock = threading.Lock()
        # ULFM recovery attempt counter.  shrink()/agree() are collective,
        # so the counter stays aligned across member ranks and yields
        # matching recovery tags/contexts.
        self._ulfm_seq = itertools.count(1)

    # -- identity --------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return self._group.size

    def Get_rank(self) -> int:
        """Return this process's rank within the communicator."""
        return self._rank

    def Get_size(self) -> int:
        """Return the number of processes in the communicator."""
        return self._group.size

    def Get_group(self) -> Group:
        """Return the communicator's process group."""
        return self._group

    @property
    def context(self) -> int:
        return self._context

    @property
    def endpoint(self) -> Endpoint:
        return self._endpoint

    def _check_alive(self) -> None:
        if self._freed:
            raise CommError("operation on freed communicator")
        if self._endpoint.engine.is_revoked(self._context):
            raise CommRevokedError(
                f"communicator context {self._context:#x} was revoked",
                context=self._context,
            )

    def _world_rank(self, comm_rank: int) -> int:
        return self._group.world_rank(comm_rank)

    # -- point-to-point (byte level) --------------------------------------
    def send_bytes(self, payload: bytes, dest: int, tag: int) -> None:
        """Blocking buffered send of raw bytes."""
        self.isend_bytes(payload, dest, tag).wait()

    def isend_bytes(self, payload: bytes, dest: int, tag: int) -> Request:
        """Non-blocking buffered send; returns a completed request."""
        self._check_alive()
        if dest == C.PROC_NULL:
            return SendRequest(dest, tag, 0)
        if not 0 <= dest < self.size:
            raise RankError(
                f"destination rank {dest} out of range [0, {self.size})"
            )
        if not C.is_valid_user_tag(tag) and tag < C.INTERNAL_TAG_BASE:
            raise TagError(f"invalid send tag {tag}")
        # Fail fast once a peer has been declared dead: the job cannot
        # complete, so don't queue more traffic toward it.
        self._endpoint.engine.check_failure()
        env = Envelope(self._context, self._rank, dest, tag, len(payload))
        tele = self._endpoint.telemetry
        if tele is not None:
            tele.on_send(
                self._endpoint.world_rank, self._world_rank(dest), env
            )
        self._endpoint.transport.send(self._world_rank(dest), env, payload)
        return SendRequest(dest, tag, len(payload))

    def irecv_bytes(
        self, source: int, tag: int, max_bytes: int, sink=None
    ) -> RecvRequest:
        """Post a non-blocking receive for up to ``max_bytes`` bytes."""
        self._check_alive()
        if source == C.PROC_NULL:
            # Matches MPI semantics: completes immediately with zero bytes.
            # The ticket must never be posted to the matching engine — a
            # posted-then-cancelled wildcard could swallow a real message
            # arriving in between.
            ticket = RecvTicket(self._context, C.ANY_SOURCE, tag, 0, -1)
            ticket.cancel()
            return RecvRequest(ticket, sink)
        if not C.is_valid_recv_source(source, self.size):
            raise RankError(f"receive source {source} out of range")
        if not C.is_valid_recv_tag(tag) and tag < C.INTERNAL_TAG_BASE:
            raise TagError(f"invalid receive tag {tag}")
        src_world = (
            None if source == C.ANY_SOURCE else self._world_rank(source)
        )
        if src_world is not None and src_world != self._endpoint.world_rank:
            # On lazy connection-cache fabrics the channel is how this
            # rank *observes* the sender (EOF on crash, refused dial on
            # death): hint the transport so a pure receiver is not blind
            # to a peer that dies before ever being dialed.
            self._endpoint.transport.ensure_peer(src_world)
        ticket = self._endpoint.engine.post_recv(
            self._context, source, tag, max_bytes, source_world=src_world
        )
        verifier = self._endpoint.verifier
        if verifier is not None:
            verifier.on_post(ticket, src_world, tag, self._context)
        return RecvRequest(ticket, sink)

    def recv_bytes(
        self,
        source: int,
        tag: int,
        max_bytes: int,
        timeout: float | None = None,
    ) -> tuple[bytes, Status]:
        """Blocking receive; returns (payload, status)."""
        req = self.irecv_bytes(source, tag, max_bytes)
        tele = self._endpoint.telemetry
        if tele is None:
            req._ticket.wait(timeout)
        else:
            t0 = time.time_ns()
            try:
                req._ticket.wait(timeout)
            finally:
                tele.on_recv_wait(t0, time.time_ns() - t0, source, tag)
        req._finish()
        return req.payload(), req._ticket.status

    def sendrecv_bytes(
        self,
        payload: bytes,
        dest: int,
        sendtag: int,
        source: int,
        recvtag: int,
        max_bytes: int,
    ) -> tuple[bytes, Status]:
        """Combined send+receive; deadlock-free (recv posted first)."""
        req = self.irecv_bytes(source, recvtag, max_bytes)
        self.send_bytes(payload, dest, sendtag)
        req.wait()
        return req.payload(), req._ticket.status

    # -- probing -----------------------------------------------------------
    def probe(self, source: int, tag: int, timeout: float | None = None) -> Status:
        """Blocking probe for a matching unexpected message."""
        self._check_alive()
        return self._endpoint.engine.probe(self._context, source, tag, timeout)

    def iprobe(self, source: int, tag: int) -> Status | None:
        """Non-blocking probe; None if nothing is queued."""
        self._check_alive()
        return self._endpoint.engine.iprobe(self._context, source, tag)

    # -- internal collective plumbing ---------------------------------------
    def next_collective_tag(self) -> int:
        """Reserve a fresh internal tag for one collective instance.

        All ranks call collectives in the same order (an MPI requirement),
        so the per-communicator counter yields matching tags everywhere.
        """
        with self._coll_lock:
            seq = next(self._coll_seq)
        return C.INTERNAL_TAG_BASE + (seq % (1 << 20))

    # -- collectives (delegate to the algorithms package) -------------------
    def _verify_collective(self, name: str, root: int | None = None,
                           op=None) -> None:
        """Cross-rank call-order/root/op check when a verifier is active.

        MPI requires all ranks to invoke collectives on a communicator in
        the same order with consistent roots and reduce-ops; the verifier
        ledger raises CollectiveMismatchError when they diverge.
        """
        verifier = self._endpoint.verifier
        if verifier is not None:
            verifier.on_collective(
                self._context, name, root,
                getattr(op, "name", None) if op is not None else None,
            )

    def _run_coll(self, name: str, fn, *args):
        """Dispatch one collective, under a telemetry span when active."""
        tele = self._endpoint.telemetry
        if tele is None:
            return fn(*args)
        return tele.run_collective(name, fn, *args)

    def barrier(self) -> None:
        """Block until all ranks have entered the barrier."""
        from .collectives import barrier

        self._verify_collective("barrier")
        self._run_coll("barrier", barrier.barrier, self)

    def bcast_bytes(self, payload: bytes | None, root: int) -> bytes:
        """Broadcast raw bytes from ``root``; all ranks return the data."""
        from .collectives import bcast

        self._check_root(root)
        self._verify_collective("bcast", root)
        return self._run_coll("bcast", bcast.bcast, self, payload, root)

    def reduce_array(
        self, send: np.ndarray, op, root: int
    ) -> np.ndarray | None:
        """Reduce arrays elementwise to ``root``; non-roots return None."""
        from .collectives import reduce as reduce_mod

        self._check_root(root)
        self._verify_collective("reduce", root, op)
        return self._run_coll("reduce", reduce_mod.reduce, self, send, op, root)

    def allreduce_array(self, send: np.ndarray, op) -> np.ndarray:
        """Reduce arrays elementwise; every rank returns the result."""
        from .collectives import allreduce

        self._verify_collective("allreduce", op=op)
        return self._run_coll("allreduce", allreduce.allreduce, self, send, op)

    def gather_bytes(self, payload: bytes, root: int) -> list[bytes] | None:
        """Gather equal-size byte blocks to ``root``."""
        from .collectives import gather

        self._check_root(root)
        self._verify_collective("gather", root)
        return self._run_coll("gather", gather.gather, self, payload, root)

    def scatter_bytes(
        self, blocks: Sequence[bytes] | None, root: int
    ) -> bytes:
        """Scatter one byte block per rank from ``root``."""
        from .collectives import scatter

        self._check_root(root)
        self._verify_collective("scatter", root)
        return self._run_coll("scatter", scatter.scatter, self, blocks, root)

    def allgather_bytes(self, payload: bytes) -> list[bytes]:
        """All ranks gather every rank's equal-size block."""
        from .collectives import allgather

        self._verify_collective("allgather")
        return self._run_coll("allgather", allgather.allgather, self, payload)

    def alltoall_bytes(self, blocks: Sequence[bytes]) -> list[bytes]:
        """Personalized all-to-all exchange of byte blocks."""
        from .collectives import alltoall

        self._verify_collective("alltoall")
        return self._run_coll("alltoall", alltoall.alltoall, self, blocks)

    def reduce_scatter_array(
        self, send: np.ndarray, counts: Sequence[int], op
    ) -> np.ndarray:
        """Reduce then scatter segments of ``counts`` elements per rank."""
        from .collectives import reduce_scatter

        self._verify_collective("reduce_scatter", op=op)
        return self._run_coll(
            "reduce_scatter", reduce_scatter.reduce_scatter,
            self, send, counts, op,
        )

    def scan_array(self, send: np.ndarray, op) -> np.ndarray:
        """Inclusive prefix reduction over ranks."""
        from .collectives import scan

        self._verify_collective("scan", op=op)
        return self._run_coll("scan", scan.scan, self, send, op)

    def gatherv_bytes(
        self, payload: bytes, counts: Sequence[int] | None, root: int
    ) -> list[bytes] | None:
        """Gather variable-size byte blocks to ``root``."""
        from .collectives import vector

        self._check_root(root)
        self._verify_collective("gatherv", root)
        return self._run_coll(
            "gatherv", vector.gatherv, self, payload, counts, root
        )

    def scatterv_bytes(
        self, blocks: Sequence[bytes] | None, root: int
    ) -> bytes:
        """Scatter variable-size byte blocks from ``root``."""
        from .collectives import vector

        self._check_root(root)
        self._verify_collective("scatterv", root)
        return self._run_coll("scatterv", vector.scatterv, self, blocks, root)

    def allgatherv_bytes(
        self, payload: bytes, counts: Sequence[int]
    ) -> list[bytes]:
        """All-gather of variable-size byte blocks."""
        from .collectives import vector

        self._verify_collective("allgatherv")
        return self._run_coll(
            "allgatherv", vector.allgatherv, self, payload, counts
        )

    def alltoallv_bytes(self, blocks: Sequence[bytes]) -> list[bytes]:
        """Personalized all-to-all of variable-size byte blocks."""
        from .collectives import vector

        self._verify_collective("alltoallv")
        return self._run_coll("alltoallv", vector.alltoallv, self, blocks)

    def _check_root(self, root: int) -> None:
        if not 0 <= root < self.size:
            raise RootError(f"root rank {root} out of range [0, {self.size})")

    # -- communicator management --------------------------------------------
    def _derive_context(self) -> int:
        ctr = next(self._derive_counter)
        if ctr > _CTX_MASK:
            raise CommError("derived-communicator counter overflow")
        new_ctx = (self._context << _CTX_SHIFT) | ctr
        if new_ctx >= 1 << 62:
            raise CommError("communicator derivation too deep")
        return new_ctx

    def Dup(self) -> "Comm":
        """Duplicate: same group, fresh context (collective)."""
        self._check_alive()
        ctx = self._derive_context()
        # Synchronize so no rank races ahead and sends on the new context
        # before peers have created it (harmless here — matching buffers
        # unexpected messages — but Barrier mirrors MPI's collective nature).
        self.barrier()
        return Comm(self._endpoint, self._group, ctx, self.thread_level)

    def Split(self, color: int, key: int = 0) -> "Comm | None":
        """Partition into sub-communicators by color, ordered by key.

        Returns None for ``color < 0`` (the MPI_UNDEFINED convention).
        """
        self._check_alive()
        ctx = self._derive_context()
        # Allgather (color, key, world_rank) triples over the parent comm.
        mine = np.array(
            [color, key, self._endpoint.world_rank], dtype="<i8"
        ).tobytes()
        gathered = self.allgather_bytes(mine)
        triples = [
            tuple(int(x) for x in np.frombuffer(b, dtype="<i8"))
            for b in gathered
        ]
        if color < 0:
            return None
        members = sorted(
            (
                (k, wr)
                for c, k, wr in triples
                if c == color
            ),
        )
        new_group = Group([wr for _k, wr in members])
        # Distinguish same-context color groups by folding color into ctx.
        sub_ctx = (ctx << _CTX_SHIFT) | (color & _CTX_MASK)
        return Comm(self._endpoint, new_group, sub_ctx, self.thread_level)

    def Create_from_group(self, group: Group) -> "Comm | None":
        """Create a sub-communicator from a subgroup (collective).

        Ranks outside ``group`` receive None.
        """
        self._check_alive()
        ctx = self._derive_context()
        self.barrier()
        if group.rank_of(self._endpoint.world_rank) == C.UNDEFINED:
            return None
        return Comm(self._endpoint, group, ctx, self.thread_level)

    def Free(self) -> None:
        """Mark the communicator freed; later operations raise CommError."""
        self._freed = True

    # -- fault tolerance (ULFM) ---------------------------------------------
    def revoke(self) -> None:
        """Revoke the communicator (ULFM ``MPI_Comm_revoke``).

        Non-collective: any member may call it after observing a
        failure.  Every operation on this communicator — here and, once
        the revocation notice arrives, on every other member —
        completes with :class:`~repro.mpi.exceptions.CommRevokedError`,
        flushing ranks parked in its collectives so they can join
        :meth:`shrink`.
        """
        from . import ulfm

        ulfm.revoke(self)

    def shrink(self, timeout: float | None = None) -> "Comm":
        """Build a working communicator from the survivors (collective).

        All surviving members must call this; they agree on the set of
        failed ranks and return a new, smaller communicator with a
        fresh context.  ULFM's ``MPI_Comm_shrink``.
        """
        from . import ulfm

        return ulfm.shrink(self, timeout=timeout)

    def agree(self, flag: bool = True, timeout: float | None = None) -> bool:
        """Fault-tolerant agreement (ULFM ``MPI_Comm_agree``).

        Returns the logical AND of every live member's ``flag``,
        tolerating rank failures during the agreement itself.
        """
        from . import ulfm

        return ulfm.agree(self, flag, timeout=timeout)

    def is_revoked(self) -> bool:
        """Whether this communicator has been revoked."""
        return self._endpoint.engine.is_revoked(self._context)

    def failed_ranks(self) -> set[int]:
        """Communicator-local ranks recorded dead by the failure layer."""
        dead = self._endpoint.engine.failed_ranks()
        return {
            self._group.rank_of(wr)
            for wr in dead
            if self._group.rank_of(wr) != C.UNDEFINED
        }

    def _next_ulfm_attempt(self) -> int:
        """Reserve one recovery-attempt number (aligned across ranks)."""
        with self._coll_lock:
            return next(self._ulfm_seq)

    # MPI-style capitalized aliases.
    Revoke = revoke
    Shrink = shrink
    Agree = agree
    Is_revoked = is_revoked

    def Compare(self, other: "Comm") -> int:
        """Compare with another communicator (IDENT/CONGRUENT/...)."""
        if self is other or (
            self._context == other._context and self._group == other._group
        ):
            return C.IDENT
        group_cmp = self._group.Compare(other._group)
        if group_cmp == C.IDENT:
            return C.CONGRUENT
        return group_cmp

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Comm(rank={self._rank}, size={self.size}, "
            f"context={self._context:#x})"
        )
