"""Reliable delivery over an unreliable transport: ack + retransmit.

:class:`ReliableTransport` wraps any transport (typically one already
wrapped in the fault injector) and turns a lossy, duplicating,
reordering, truncating channel back into the ordered exactly-once
stream the matching engine requires — the same job TCP does for IP, or
an MPI library's eager protocol does over an unreliable NIC:

* every data frame gets a per-(sender, receiver) **sequence number**
  and a CRC32 **checksum** over the original payload;
* the receiver delivers strictly in sequence order, buffering
  out-of-order arrivals, dropping **duplicates**, and rejecting
  **corrupt/truncated** frames (header/length/CRC mismatch) as if they
  were lost;
* each delivery is confirmed with a **cumulative ACK** frame riding the
  reserved :data:`~repro.mpi.transport.base.ACK_CONTEXT`;
* unacknowledged frames are **retransmitted** with capped exponential
  backoff plus jitter; after ``max_retries`` attempts the peer is
  escalated to the failure detector (or straight to the matching
  engine's sticky failure when no detector runs) — a peer that is
  merely lossy is absorbed, a peer that is gone becomes a prompt
  :class:`~repro.mpi.exceptions.RankFailedError`.

Retransmissions and ACKs bypass the fault injector (via
:meth:`~repro.mpi.transport.base.Transport.send_unfaulted` and the
negative-context exemption respectively): they fire at wall-clock
times, so letting them consume fault-plan RNG draws would destroy
replay determinism, and a plan that could re-drop every retry would
let chaos starve the recovery it is meant to exercise.  Primary sends
still pass through the injector unchanged, so a reliable run consumes
the exact op/decision stream of an unreliable one.

Counters (:meth:`ReliableTransport.stats`) expose what was absorbed:
``sent``, ``delivered``, ``retransmits``, ``duplicates_dropped``,
``corrupt_dropped``, ``out_of_order``, ``acks_sent``,
``acks_received``, ``escalations``.

Knobs (environment): ``OMBPY_RELIABLE=1`` arms the layer under
``ombpy-run``/``init()``; ``OMBPY_REL_RTO_MS`` sets the initial
retransmit timeout (default 50 ms, doubling to 1 s max);
``OMBPY_REL_MAX_RETRIES`` the give-up threshold (default 8).
"""

from __future__ import annotations

import os
import random
import struct
import threading
import time
import zlib

from .exceptions import RankFailedError
from .matching import Envelope
from .transport.base import ACK_CONTEXT, Transport

ENV_RELIABLE = "OMBPY_RELIABLE"
ENV_RTO_MS = "OMBPY_REL_RTO_MS"
ENV_MAX_RETRIES = "OMBPY_REL_MAX_RETRIES"

DEFAULT_RTO = 0.05
DEFAULT_RTO_MAX = 1.0
DEFAULT_MAX_RETRIES = 8
DEFAULT_CLOSE_LINGER = 0.25

# Reliability frame header, prepended to every data payload:
# kind(u8) src_world(i32) seq(i64) orig_nbytes(i64) crc32(u32).
# src_world is needed because Envelope.source is communicator-local —
# sequencing and ACK addressing work on world ranks.
_FRAME = struct.Struct("<BiqqI")
FRAME_SIZE = _FRAME.size

_KIND_DATA = 1

_STAT_KEYS = (
    "sent", "delivered", "retransmits", "duplicates_dropped",
    "corrupt_dropped", "out_of_order", "acks_sent", "acks_received",
    "escalations",
)


class _Pending:
    """One sent-but-unacknowledged frame (sender side)."""

    __slots__ = ("env", "frame", "attempts", "next_retry")

    def __init__(self, env: Envelope, frame: bytes, next_retry: float) -> None:
        self.env = env
        self.frame = frame
        self.attempts = 1
        self.next_retry = next_retry


class _TxPeer:
    """Sender-side state toward one world rank."""

    __slots__ = ("next_seq", "unacked")

    def __init__(self) -> None:
        self.next_seq = 0
        self.unacked: dict[int, _Pending] = {}  # insertion-ordered by seq


class _RxPeer:
    """Receiver-side state from one world rank."""

    __slots__ = ("next_expected", "buffered")

    def __init__(self) -> None:
        self.next_expected = 0
        self.buffered: dict[int, tuple[Envelope, bytes]] = {}


class _RxShim:
    """Stands in for the matching engine on the inner transport.

    Concrete transports deliver straight into whatever ``attach()``
    gave them; this shim intercepts that path so frames pass through
    reliability processing first.  Everything else (``set_failure``,
    introspection...) proxies to the real engine, so callers that
    reach the engine through ``transport.engine`` keep working.
    """

    def __init__(self, rel: "ReliableTransport") -> None:
        self._rel = rel

    def deliver(self, env: Envelope, payload: bytes) -> None:
        self._rel._on_frame(env, payload)

    def __getattr__(self, name: str):
        return getattr(self._rel.engine, name)


class ReliableTransport(Transport):
    """Sequenced, acknowledged, checksummed delivery over ``inner``."""

    def __init__(
        self,
        inner: Transport,
        rto_initial: float | None = None,
        rto_max: float = DEFAULT_RTO_MAX,
        max_retries: int | None = None,
        close_linger: float = DEFAULT_CLOSE_LINGER,
    ) -> None:
        super().__init__(inner.world_rank, inner.world_size)
        self.inner = inner
        if rto_initial is None:
            rto_initial = float(os.environ.get(ENV_RTO_MS, 0)) / 1000.0 \
                or DEFAULT_RTO
        if max_retries is None:
            max_retries = int(
                os.environ.get(ENV_MAX_RETRIES, DEFAULT_MAX_RETRIES)
            )
        if rto_initial <= 0:
            raise ValueError(f"rto_initial must be > 0, got {rto_initial}")
        if max_retries < 1:
            raise ValueError(f"max_retries must be >= 1, got {max_retries}")
        self.rto_initial = rto_initial
        self.rto_max = max(rto_max, rto_initial)
        self.max_retries = max_retries
        self.close_linger = close_linger
        self._tx: dict[int, _TxPeer] = {}
        self._rx: dict[int, _RxPeer] = {}
        self._tx_lock = threading.Lock()
        self._rx_lock = threading.Lock()
        self._stats = dict.fromkeys(_STAT_KEYS, 0)
        self._stats_lock = threading.Lock()
        # Telemetry mirror: when a registry is bound, every protocol
        # counter bump also lands in a "reliability.<key>" counter so
        # the job-level metrics agree with stats() exactly.
        self._tele_counters: dict | None = None
        # Jitter decorrelates retry storms; it is wall-clock-side only
        # and never touches the fault plan's decision stream.
        self._jitter = random.Random()
        self._closed = threading.Event()
        self._retransmitter: threading.Thread | None = None

    # -- plumbing ----------------------------------------------------------
    def attach(self, engine) -> None:
        self.engine = engine
        self.inner.attach(_RxShim(self))

    def report_peer_lost(self, peer_world_rank: int, reason: str) -> None:
        self.inner.report_peer_lost(peer_world_rank, reason)

    @property
    def name(self) -> str:
        return f"reliable({self.inner.name})"

    def bind_telemetry(self, tele) -> None:
        """Mirror protocol counters into a telemetry metrics registry.

        Called by :func:`repro.telemetry.runtime.install_on_endpoint`
        while walking the transport stack; pass None to unbind.  The
        plain ``stats()`` snapshot keeps working either way.
        """
        if tele is None or tele.metrics is None:
            self._tele_counters = None
            return
        self._tele_counters = {
            key: tele.metrics.counter(f"reliability.{key}")
            for key in _STAT_KEYS
        }

    def _count(self, key: str, n: int = 1) -> None:
        with self._stats_lock:
            self._stats[key] += n
        counters = self._tele_counters
        if counters is not None:
            counters[key].inc(n)

    def stats(self) -> dict[str, int]:
        """Snapshot of the protocol counters."""
        with self._stats_lock:
            return dict(self._stats)

    # -- send side ---------------------------------------------------------
    def send(self, dest_world_rank: int, env: Envelope, payload: bytes) -> None:
        if env.context < 0:
            # Control plane / ACKs: already ordered per-sender and
            # idempotent; sequencing them would deadlock ACKs on ACKs.
            self.inner.send(dest_world_rank, env, payload)
            return
        with self._tx_lock:
            peer = self._tx.setdefault(dest_world_rank, _TxPeer())
            seq = peer.next_seq
            peer.next_seq += 1
            frame = _FRAME.pack(
                _KIND_DATA, self.world_rank, seq, len(payload),
                zlib.crc32(payload),
            ) + payload
            wire_env = Envelope(
                env.context, env.source, env.dest, env.tag, len(frame)
            )
            pending = _Pending(
                wire_env, frame, time.monotonic() + self._rto(1)
            )
            peer.unacked[seq] = pending
        self._count("sent")
        self._ensure_retransmitter()
        try:
            self.inner.send(dest_world_rank, wire_env, frame)
        except Exception:
            # The peer is unreachable right now; forget the frame so the
            # retry loop doesn't re-report it, and let the caller see
            # the transport's own error (RankFailedError on TCP/UDS).
            with self._tx_lock:
                peer.unacked.pop(seq, None)
            raise

    def _rto(self, attempts: int) -> float:
        backoff = min(
            self.rto_initial * (2 ** (attempts - 1)), self.rto_max
        )
        return backoff * self._jitter.uniform(0.9, 1.2)

    def _ensure_retransmitter(self) -> None:
        if self._retransmitter is not None or self._closed.is_set():
            return
        with self._tx_lock:
            if self._retransmitter is not None:
                return
            self._retransmitter = threading.Thread(
                target=self._retransmit_loop,
                name=f"rel-retx-r{self.world_rank}", daemon=True,
            )
            self._retransmitter.start()

    def _retransmit_loop(self) -> None:
        tick = min(self.rto_initial / 2, 0.02)
        while not self._closed.wait(tick):
            now = time.monotonic()
            resend: list[tuple[int, Envelope, bytes]] = []
            escalate: list[int] = []
            failed = (
                self.engine.failed_ranks() if self.engine is not None
                else set()
            )
            with self._tx_lock:
                for rank, peer in self._tx.items():
                    if rank in failed:
                        # Declared dead elsewhere: stop retrying quietly.
                        peer.unacked.clear()
                        continue
                    for seq, pending in peer.unacked.items():
                        if pending.next_retry > now:
                            continue
                        if pending.attempts > self.max_retries:
                            escalate.append(rank)
                            break
                        pending.attempts += 1
                        pending.next_retry = now + self._rto(pending.attempts)
                        resend.append((rank, pending.env, pending.frame))
                for rank in escalate:
                    self._tx[rank].unacked.clear()
            for rank, env, frame in resend:
                self._count("retransmits")
                try:
                    self.inner.send_unfaulted(rank, env, frame)
                except Exception as exc:  # noqa: BLE001 - escalated below
                    self._escalate(rank, f"retransmit failed: {exc!r}")
            for rank in escalate:
                self._escalate(
                    rank,
                    f"no acknowledgement after {self.max_retries} "
                    f"retransmits (reliable-delivery timeout)",
                )

    def _escalate(self, peer: int, reason: str) -> None:
        self._count("escalations")
        if self.innermost().detector is not None:
            self.report_peer_lost(peer, reason)
        elif self.engine is not None:
            self.engine.set_failure(RankFailedError(
                f"rank {peer} failed: {reason} "
                f"(detected by rank {self.world_rank})",
                rank=peer,
            ))

    # -- receive side ------------------------------------------------------
    def _on_frame(self, env: Envelope, payload: bytes) -> None:
        if env.context == ACK_CONTEXT:
            self._on_ack(env.source, env.tag)
            return
        parsed = self._parse(env, payload)
        if parsed is None:
            # Truncated or corrupt: treat as lost; the sender's
            # retransmit timer recovers it.
            self._count("corrupt_dropped")
            return
        src_world, seq, data_env, data = parsed
        ack_to = -1
        deliveries: list[tuple[Envelope, bytes]] = []
        with self._rx_lock:
            peer = self._rx.setdefault(src_world, _RxPeer())
            if seq < peer.next_expected or seq in peer.buffered:
                # Duplicate (injected, or a retransmit whose ACK was
                # lost): drop, but re-ack so the sender stops resending.
                self._count("duplicates_dropped")
                ack_to = peer.next_expected - 1
            elif seq == peer.next_expected:
                deliveries.append((data_env, data))
                peer.next_expected += 1
                while peer.next_expected in peer.buffered:
                    deliveries.append(
                        peer.buffered.pop(peer.next_expected)
                    )
                    peer.next_expected += 1
                ack_to = peer.next_expected - 1
                # Deliver under the lock: per-peer arrival is already
                # serialized (one reader thread per peer), the lock
                # orders the rare cross-thread case (self-sends).
                for denv, dpayload in deliveries:
                    self.engine.deliver(denv, dpayload)
                    self._count("delivered")
            else:
                self._count("out_of_order")
                peer.buffered[seq] = (data_env, data)
                ack_to = peer.next_expected - 1
        if ack_to >= 0:
            self._send_ack(src_world, ack_to)

    def _parse(
        self, env: Envelope, payload: bytes
    ) -> tuple[int, int, Envelope, bytes] | None:
        if len(payload) < FRAME_SIZE:
            return None
        kind, src_world, seq, orig_nbytes, crc = _FRAME.unpack_from(payload)
        if kind != _KIND_DATA or seq < 0:
            return None
        data = payload[FRAME_SIZE:]
        if len(data) != orig_nbytes or zlib.crc32(data) != crc:
            return None
        restored = Envelope(
            env.context, env.source, env.dest, env.tag, orig_nbytes
        )
        return src_world, seq, restored, data

    def _send_ack(self, peer_world: int, cumulative_seq: int) -> None:
        # The ACK carries no payload: the cumulative sequence rides the
        # (64-bit) tag field and the sender's world rank rides source.
        ack = Envelope(
            ACK_CONTEXT, self.world_rank, peer_world, cumulative_seq, 0
        )
        self._count("acks_sent")
        try:
            self.inner.send(peer_world, ack, b"")
        except Exception:  # noqa: BLE001 - peer gone; retransmit escalates
            pass

    def _on_ack(self, peer_world: int, cumulative_seq: int) -> None:
        self._count("acks_received")
        with self._tx_lock:
            peer = self._tx.get(peer_world)
            if peer is None:
                return
            for seq in [
                s for s in peer.unacked if s <= cumulative_seq
            ]:
                del peer.unacked[seq]

    # -- teardown ----------------------------------------------------------
    def _has_unacked(self) -> bool:
        with self._tx_lock:
            return any(peer.unacked for peer in self._tx.values())

    def close(self) -> None:
        if self._closed.is_set():
            return
        # Linger briefly so in-flight frames (typically the final ACK
        # exchange) drain before the channel goes down.
        deadline = time.monotonic() + self.close_linger
        while self._has_unacked() and time.monotonic() < deadline:
            time.sleep(0.01)
        self._closed.set()
        if self._retransmitter is not None:
            self._retransmitter.join(timeout=1)
        self.inner.close()


def reliable_from_env(transport: Transport) -> Transport:
    """Wrap ``transport`` when ``OMBPY_RELIABLE`` is set (launcher path)."""
    if os.environ.get(ENV_RELIABLE, "") in ("", "0"):
        return transport
    return ReliableTransport(transport)
