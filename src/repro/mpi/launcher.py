"""``ombpy-run`` — the mpiexec analogue.

Spawns N copies of a Python program as OS processes, coordinates the TCP
rendezvous (each child reports its listening port; the launcher broadcasts
the full rank->port map), then waits for all children and propagates the
first non-zero exit code.

Usage::

    ombpy-run -n 4 python script.py [args...]
    ombpy-run -n 4 script.py        # 'python' is implied for .py files
"""

from __future__ import annotations

import argparse
import json
import os
import socket
import subprocess
import sys
import threading

from .world import ENV_COORD, ENV_JOB, ENV_RANK, ENV_SIZE, ENV_TRANSPORT


def _coordinate(server: socket.socket, n: int, timeout: float) -> None:
    """Accept n rendezvous connections; broadcast the port map to all."""
    server.settimeout(timeout)
    conns: list[tuple[int, socket.socket]] = []
    port_map: dict[int, int] = {}
    try:
        while len(conns) < n:
            conn, _addr = server.accept()
            conn.settimeout(timeout)
            buf = b""
            while not buf.endswith(b"\n"):
                chunk = conn.recv(4096)
                if not chunk:
                    raise ConnectionError("child closed during rendezvous")
                buf += chunk
            rank_s, port_s = buf.decode().split()
            port_map[int(rank_s)] = int(port_s)
            conns.append((int(rank_s), conn))
        payload = (json.dumps(port_map) + "\n").encode()
        for _rank, conn in conns:
            conn.sendall(payload)
    finally:
        for _rank, conn in conns:
            conn.close()


def launch(
    n: int,
    command: list[str],
    timeout: float = 300.0,
    env_extra: dict[str, str] | None = None,
    transport: str = "tcp",
) -> int:
    """Run ``command`` as ``n`` coordinated rank processes.

    ``transport`` selects the inter-process fabric: ``"tcp"`` (localhost
    mesh with a port-map rendezvous) or ``"uds"`` (Unix-domain-socket
    mesh, path-addressed by rank — no rendezvous needed).
    """
    if n < 1:
        raise ValueError(f"process count must be >= 1, got {n}")
    if not command:
        raise ValueError("no program given")
    if transport not in ("tcp", "uds", "shm"):
        raise ValueError(f"unknown transport {transport!r}")
    if command[0].endswith(".py"):
        command = [sys.executable] + command

    coordinator = None
    server = None
    shm_segments = None
    coord_env: dict[str, str] = {ENV_TRANSPORT: transport}
    if transport == "tcp":
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", 0))
        server.listen(n)
        coord_env[ENV_COORD] = f"127.0.0.1:{server.getsockname()[1]}"
        coordinator = threading.Thread(
            target=_coordinate, args=(server, n, timeout), daemon=True
        )
        coordinator.start()
    else:
        coord_env[ENV_JOB] = f"{os.getpid()}-{os.urandom(4).hex()}"
        if transport == "shm":
            from .transport.shm import create_job_segments

            capacity = int(os.environ.get("OMBPY_SHM_CAPACITY", 1 << 20))
            shm_segments = create_job_segments(
                coord_env[ENV_JOB], n, capacity
            )

    procs: list[subprocess.Popen] = []
    try:
        for rank in range(n):
            env = os.environ.copy()
            env[ENV_RANK] = str(rank)
            env[ENV_SIZE] = str(n)
            env.update(coord_env)
            if env_extra:
                env.update(env_extra)
            procs.append(subprocess.Popen(command, env=env))
        exit_code = 0
        for rank, proc in enumerate(procs):
            rc = proc.wait(timeout=timeout)
            if rc != 0 and exit_code == 0:
                exit_code = rc
        return exit_code
    except subprocess.TimeoutExpired:
        for proc in procs:
            proc.kill()
        raise
    finally:
        if coordinator is not None:
            coordinator.join(timeout=5)
        if server is not None:
            server.close()
        if transport == "uds":
            import shutil

            from .transport.uds import socket_dir

            shutil.rmtree(socket_dir(coord_env[ENV_JOB]), ignore_errors=True)
        if shm_segments is not None:
            from .transport.shm import destroy_job_segments

            destroy_job_segments(shm_segments)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ombpy-run",
        description="Launch a Python MPI program on N local processes.",
    )
    parser.add_argument(
        "-n", "--np", type=int, required=True, dest="n",
        help="number of rank processes",
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0,
        help="seconds before the whole job is killed",
    )
    parser.add_argument(
        "--transport", choices=("tcp", "uds", "shm"), default="tcp",
        help="inter-process fabric: localhost TCP mesh, Unix-domain "
        "sockets, or shared-memory rings",
    )
    parser.add_argument(
        "command", nargs=argparse.REMAINDER,
        help="program and its arguments",
    )
    args = parser.parse_args(argv)
    try:
        return launch(args.n, args.command, timeout=args.timeout,
                      transport=args.transport)
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"ombpy-run: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
