"""``ombpy-run`` — the mpiexec analogue.

Spawns N copies of a Python program as OS processes, coordinates the TCP
rendezvous (each child reports its listening port; the launcher broadcasts
the full rank->port map), then *supervises* all ranks concurrently:

* the first non-zero exit triggers fail-fast — survivors get a short
  grace period (long enough for their failure detectors to raise
  ``RankFailedError`` and exit on their own), then are terminated;
* SIGINT/SIGTERM are propagated to every child rank;
* every child is reaped, and UDS socket dirs / SHM segments are cleaned
  up even when ranks were killed;
* on failure, per-rank exit codes and the first-failing rank are
  reported on stderr.

Chaos testing: ``--faults plan.json`` or ``--fault-seed N`` arms the
deterministic fault injector (:mod:`repro.faults`) inside every rank;
``--fault-log PATH`` makes each rank write its injected-event log to
``PATH.rank<r>`` so a failure can be replayed from its seed.

Usage::

    ombpy-run -n 4 python script.py [args...]
    ombpy-run -n 4 script.py        # 'python' is implied for .py files
    ombpy-run -n 2 --fault-seed 42 ombpy osu_latency
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time

from ..telemetry import ENV_METRICS, ENV_OUT, ENV_TRACE
from .exceptions import RANK_FAILED_EXIT
from .world import (
    ENV_COORD, ENV_FAULT_LOG, ENV_FAULT_SEED, ENV_FAULTS, ENV_JOB, ENV_RANK,
    ENV_SIZE, ENV_TRANSPORT,
)

#: Seconds between fail-fast trigger and forcible survivor termination —
#: enough for survivors' failure detectors (EOF-based, sub-second) to
#: raise RankFailedError and exit with their own diagnostics.
DEFAULT_FAILFAST_GRACE = 8.0

_POLL_INTERVAL = 0.05


def _coordinate(server: socket.socket, n: int, timeout: float) -> None:
    """Accept n rendezvous connections; broadcast the port map to all."""
    server.settimeout(timeout)
    conns: list[tuple[int, socket.socket]] = []
    port_map: dict[int, int] = {}
    try:
        while len(conns) < n:
            conn, _addr = server.accept()
            conn.settimeout(timeout)
            buf = b""
            while not buf.endswith(b"\n"):
                chunk = conn.recv(4096)
                if not chunk:
                    raise ConnectionError("child closed during rendezvous")
                buf += chunk
            rank_s, port_s = buf.decode().split()
            port_map[int(rank_s)] = int(port_s)
            conns.append((int(rank_s), conn))
        payload = (json.dumps(port_map) + "\n").encode()
        for _rank, conn in conns:
            conn.sendall(payload)
    except OSError:
        # A dead child aborts the rendezvous; the supervisor notices the
        # child's exit and fail-fasts — don't let this thread die loudly.
        pass
    finally:
        for _rank, conn in conns:
            conn.close()


def _normalize_exit(rc: int) -> int:
    """Map a Popen returncode to a shell-style exit code (signals -> 128+N)."""
    return rc if rc >= 0 else 128 - rc


def _kill_all(procs: list[subprocess.Popen]) -> None:
    """Terminate, then kill, then reap every still-running child."""
    for proc in procs:
        if proc.poll() is None:
            try:
                proc.terminate()
            except OSError:
                pass
    deadline = time.monotonic() + 2.0
    for proc in procs:
        if proc.poll() is None:
            try:
                proc.wait(timeout=max(0.1, deadline - time.monotonic()))
            except subprocess.TimeoutExpired:
                try:
                    proc.kill()
                except OSError:
                    pass
    for proc in procs:  # reap: no zombies left behind
        if proc.poll() is None:
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                pass


def _supervise(
    procs: list[subprocess.Popen],
    timeout: float,
    grace: float,
    interrupted: threading.Event,
    failfast: bool = True,
) -> tuple[list[int | None], tuple[int, int] | None]:
    """Poll all ranks concurrently; fail-fast on the first non-zero exit.

    With ``failfast=False`` (the ``--recover`` mode) a rank failure does
    not doom its survivors: they are expected to shrink their
    communicator and finish, so supervision just keeps waiting (the
    global ``timeout`` still applies).

    Returns (per-rank exit codes, first failure as ``(rank, code)`` or
    None).  Raises ``subprocess.TimeoutExpired`` if the whole job exceeds
    ``timeout`` (children are killed first).
    """
    n = len(procs)
    start = time.monotonic()
    exit_codes: list[int | None] = [None] * n
    failures: list[tuple[int, int]] = []  # observed order, pre-termination
    late: list[tuple[int, int]] = []  # observed after we killed survivors
    kill_at: float | None = None
    forced = False

    while any(code is None for code in exit_codes):
        now = time.monotonic()
        for rank, proc in enumerate(procs):
            if exit_codes[rank] is None:
                rc = proc.poll()
                if rc is not None:
                    exit_codes[rank] = rc
                    if rc != 0:
                        failures.append((rank, rc))
                        if failfast and kill_at is None:
                            kill_at = now + grace
        if interrupted.is_set():
            _kill_all(procs)
            forced = True
            break
        if kill_at is not None and now >= kill_at:
            _kill_all(procs)
            forced = True
            break
        if now - start >= timeout:
            _kill_all(procs)
            raise subprocess.TimeoutExpired(
                cmd=procs[0].args, timeout=timeout
            )
        time.sleep(_POLL_INTERVAL)

    for rank, proc in enumerate(procs):
        if exit_codes[rank] is None:
            exit_codes[rank] = proc.poll()
            if exit_codes[rank] is None:
                exit_codes[rank] = proc.wait()
        rc = exit_codes[rank]
        if rc not in (0, None) and (rank, rc) not in failures:
            (late if forced else failures).append((rank, rc))
    return exit_codes, _attribute_failure(failures) or _attribute_failure(late)


def _attribute_failure(
    failures: list[tuple[int, int]],
) -> tuple[int, int] | None:
    """Pick the root-cause failure from exit codes in observed order.

    When one rank crashes, its survivors die moments later of
    ``RankFailedError`` (exit code :data:`RANK_FAILED_EXIT`) — often
    inside the same poll interval, where observation order is just rank
    order.  Those cascade casualties never outrank a failure with any
    other code, so the job is attributed to the rank that actually
    crashed.
    """
    for rank, rc in failures:
        if rc != RANK_FAILED_EXIT:
            return (rank, rc)
    return failures[0] if failures else None


def cleanup_job_resources(
    transport: str,
    job_id: str | None,
    shm_segments: list | None = None,
) -> None:
    """Remove a job's shared on-disk artifacts (UDS dirs, SHM segments).

    Idempotent and safe to call at any point after spawn — from the
    launcher's own teardown, from a daemon draining and restarting its
    rank pool (:mod:`repro.service`), or from both: a second call finds
    nothing left and does nothing.  This must not live only in an
    ``atexit``/``finally`` path, because a long-lived service drains and
    relaunches pools many times inside one process lifetime.
    """
    # A grouped shm launch is a hybrid: inter-group traffic rides UDS
    # streams, so its socket dir needs removing too (no-op when absent).
    if transport in ("uds", "shm") and job_id:
        import shutil

        from .transport.uds import socket_dir

        shutil.rmtree(socket_dir(job_id), ignore_errors=True)
    if shm_segments:
        from .transport.shm import destroy_job_segments

        destroy_job_segments(shm_segments)


class SpawnedRanks:
    """A live set of spawned rank processes plus their shared resources.

    Returned by :func:`spawn_ranks`.  The caller owns supervision (poll
    ``procs``, decide when the job is over) and must call
    :meth:`cleanup` when done; ``cleanup`` is idempotent, so calling it
    from both a drain path and a ``finally`` block is safe.
    """

    def __init__(
        self,
        procs: list[subprocess.Popen],
        transport: str,
        job_id: str | None,
        shm_segments: list | None,
        server: socket.socket | None,
        coordinator: threading.Thread | None,
    ) -> None:
        self.procs = procs
        self.transport = transport
        self.job_id = job_id
        self._shm_segments = shm_segments
        self._server = server
        self._coordinator = coordinator
        self._cleaned = False

    def poll_exits(self) -> list[int | None]:
        """Per-rank exit codes so far (None = still running)."""
        return [proc.poll() for proc in self.procs]

    def terminate(self) -> None:
        """Terminate, then kill, then reap every still-running rank."""
        _kill_all(self.procs)

    def cleanup(self) -> None:
        """Kill stragglers and remove every shared artifact (idempotent)."""
        _kill_all(self.procs)
        if self._coordinator is not None:
            self._coordinator.join(timeout=5)
            self._coordinator = None
        if self._server is not None:
            try:
                self._server.close()
            except OSError:
                pass
            self._server = None
        if self._cleaned:
            return
        self._cleaned = True
        cleanup_job_resources(self.transport, self.job_id, self._shm_segments)
        self._shm_segments = None


def spawn_ranks(
    n: int,
    command: list[str],
    transport: str = "tcp",
    env_extra: dict[str, str] | None = None,
    rendezvous_timeout: float = 300.0,
    groups: str | None = None,
) -> SpawnedRanks:
    """Spawn ``command`` as ``n`` coordinated rank processes (no supervision).

    Sets up the transport rendezvous (TCP port-map coordinator, UDS job
    id, or pre-created SHM segments), exports the ``OMBPY_RANK``/
    ``OMBPY_SIZE`` environment per child, and returns a
    :class:`SpawnedRanks` handle.  This is the spawn half of
    :func:`launch`, shared with the persistent benchmark service
    (:mod:`repro.service`), which supervises the pool itself and keeps
    it warm across jobs.

    ``groups`` declares the node-group topology (``"GxS"``, ``"a,b,c"``,
    a group size, or ``"auto"`` — see :mod:`repro.mpi.topology`); the
    normalized spec is exported to every rank via ``OMBPY_GROUPS`` so
    the collectives go hierarchical, and on ``shm`` only intra-group
    ring segments are created (inter-group traffic rides the stream
    fabric).  Before anything is spawned the planned topology is checked
    against ``RLIMIT_NOFILE`` so an over-wide launch fails fast with a
    remedy instead of dying mid-rendezvous with ``EMFILE``.
    """
    if n < 1:
        raise ValueError(f"process count must be >= 1, got {n}")
    if not command:
        raise ValueError("no program given")
    if transport not in ("tcp", "uds", "shm"):
        raise ValueError(f"unknown transport {transport!r}")
    if command[0].endswith(".py"):
        command = [sys.executable] + command

    from .topology import ENV_GROUPS, parse_groups

    group_map = None
    groups_spec = groups or os.environ.get(ENV_GROUPS)
    if groups_spec:
        group_map = parse_groups(groups_spec, n)

    # Fail fast on fd exhaustion: check the planned topology against the
    # soft RLIMIT_NOFILE before creating a single socket or segment.
    from .fabric import check_fd_budget

    check_fd_budget(n, transport, group_map)

    coordinator = None
    server = None
    shm_segments = None
    job_id = None
    coord_env: dict[str, str] = {ENV_TRANSPORT: transport}
    if group_map is not None:
        coord_env[ENV_GROUPS] = group_map.spec()
    if transport == "tcp":
        server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        server.bind(("127.0.0.1", 0))
        server.listen(n)
        coord_env[ENV_COORD] = f"127.0.0.1:{server.getsockname()[1]}"
        coordinator = threading.Thread(
            target=_coordinate, args=(server, n, rendezvous_timeout),
            daemon=True,
        )
        coordinator.start()
    else:
        job_id = f"{os.getpid()}-{os.urandom(4).hex()}"
        coord_env[ENV_JOB] = job_id
        if transport == "shm":
            from .transport.shm import create_job_segments, intra_group_pairs

            capacity = int(os.environ.get("OMBPY_SHM_CAPACITY", 1 << 20))
            pairs = None
            if group_map is not None and group_map.n_groups > 1:
                pairs = intra_group_pairs(group_map)
            shm_segments = create_job_segments(job_id, n, capacity, pairs)

    procs: list[subprocess.Popen] = []
    try:
        for rank in range(n):
            env = os.environ.copy()
            env[ENV_RANK] = str(rank)
            env[ENV_SIZE] = str(n)
            env.update(coord_env)
            if env_extra:
                env.update(env_extra)
            procs.append(subprocess.Popen(command, env=env))
    except Exception:
        handle = SpawnedRanks(
            procs, transport, job_id, shm_segments, server, coordinator
        )
        handle.cleanup()
        raise
    return SpawnedRanks(
        procs, transport, job_id, shm_segments, server, coordinator
    )


def launch(
    n: int,
    command: list[str],
    timeout: float = 300.0,
    env_extra: dict[str, str] | None = None,
    transport: str = "tcp",
    groups: str | None = None,
    faults: str | None = None,
    fault_seed: int | None = None,
    fault_log: str | None = None,
    failfast_grace: float = DEFAULT_FAILFAST_GRACE,
    reliable: bool = False,
    recover: bool = False,
    metrics: bool = False,
    metrics_out: str = "metrics.json",
    trace_out: str | None = None,
    exit_report: str | None = None,
) -> int:
    """Run ``command`` as ``n`` coordinated rank processes.

    ``transport`` selects the inter-process fabric: ``"tcp"`` (localhost
    mesh with a port-map rendezvous), ``"uds"`` (Unix-domain-socket
    mesh), or ``"shm"`` (shared-memory rings).

    ``groups`` declares the node-group topology (see
    :func:`spawn_ranks`): ranks in a group share the fast intra-group
    path, one leader per group carries inter-group traffic, and the
    collectives switch to their two-level hierarchical algorithms.

    ``faults``/``fault_seed``/``fault_log`` arm the deterministic fault
    injector in every rank (see :mod:`repro.faults`).  On any rank's
    non-zero exit the launcher fail-fasts: survivors get
    ``failfast_grace`` seconds to raise ``RankFailedError`` and exit
    with their own diagnostics, then are terminated; the returned exit
    code is the *first* failing rank's.

    ``reliable`` arms the ack/retransmit delivery layer
    (:mod:`repro.mpi.reliability`) in every rank.  ``recover`` switches
    supervision from fail-fast to fault-tolerant: a rank failure no
    longer dooms its survivors, and the job succeeds (exit 0) if *any*
    rank finishes cleanly — the contract for ULFM-style
    shrink-and-continue programs.

    ``metrics``/``trace_out`` arm per-rank telemetry
    (:mod:`repro.telemetry`) in every rank: each rank dumps its metrics
    (and, with ``trace_out``, its trace events) to a scratch file at
    finalize; after the job the launcher merges them into
    ``metrics_out`` (and ``trace_out`` — Chrome trace JSON, or JSONL
    when the path ends in ``.jsonl``) and prints the per-rank summary
    table on stderr.

    ``exit_report`` names a JSON file the launcher writes on *every*
    exit path (success, rank failure, timeout, interrupt) describing
    what happened — ``{schema, n, transport, exit_codes,
    first_failure, interrupted, timeout, elapsed_s, exit_code}`` — so
    a supervising driver (the campaign cold backend) can classify the
    failure mode without parsing stderr.
    """
    if failfast_grace < 0:
        raise ValueError(
            f"grace period must be >= 0 seconds, got {failfast_grace}"
        )

    feature_env: dict[str, str] = dict(env_extra or {})
    if faults is not None:
        feature_env[ENV_FAULTS] = os.path.abspath(faults)
    elif fault_seed is not None:
        feature_env[ENV_FAULT_SEED] = str(fault_seed)
    if fault_log is not None:
        feature_env[ENV_FAULT_LOG] = os.path.abspath(fault_log)
    if reliable:
        from .reliability import ENV_RELIABLE

        feature_env[ENV_RELIABLE] = "1"
    telemetry_base = None
    if metrics or trace_out is not None:
        import tempfile

        telemetry_base = os.path.join(
            tempfile.mkdtemp(prefix="ombpy-telemetry-"), "job"
        )
        feature_env[ENV_METRICS] = "1"
        feature_env[ENV_OUT] = telemetry_base
        if trace_out is not None:
            feature_env[ENV_TRACE] = "1"

    interrupted = threading.Event()
    old_handlers: dict[int, object] = {}
    procs: list[subprocess.Popen] = []
    start = time.monotonic()
    report: dict = {
        "schema": "ombpy-run-report/1",
        "n": n,
        "transport": transport,
        "exit_codes": None,
        "first_failure": None,
        "interrupted": False,
        "timeout": False,
        "elapsed_s": None,
        "exit_code": None,
    }

    def _forward_signal(signum, _frame):
        interrupted.set()
        for proc in procs:
            if proc.poll() is None:
                try:
                    proc.send_signal(signum)
                except OSError:
                    pass

    # Propagate SIGINT/SIGTERM to child ranks; only possible from the
    # main thread (tests may call launch() from workers — skip there).
    try:
        for signum in (signal.SIGINT, signal.SIGTERM):
            old_handlers[signum] = signal.signal(signum, _forward_signal)
    except ValueError:
        old_handlers = {}

    handle = None
    try:
        handle = spawn_ranks(
            n, command, transport=transport, env_extra=feature_env,
            rendezvous_timeout=timeout, groups=groups,
        )
        procs.extend(handle.procs)

        exit_codes, first_failure = _supervise(
            procs, timeout, failfast_grace, interrupted,
            failfast=not recover,
        )
        report["exit_codes"] = [
            None if code is None else _normalize_exit(code)
            for code in exit_codes
        ]
        if first_failure is not None:
            report["first_failure"] = {
                "rank": first_failure[0],
                "exit_code": _normalize_exit(first_failure[1]),
            }
        if interrupted.is_set():
            report["exit_code"] = 130
            return 130
        if first_failure is None:
            report["exit_code"] = 0
            return 0
        if recover and any(code == 0 for code in exit_codes):
            survivors = sum(1 for code in exit_codes if code == 0)
            print(
                f"ombpy-run: recovered — rank {first_failure[0]} failed "
                f"but {survivors}/{n} rank(s) finished cleanly (--recover)",
                file=sys.stderr,
            )
            report["exit_code"] = 0
            return 0
        rank, rc = first_failure
        codes = [
            "?" if c is None else str(c) for c in exit_codes
        ]
        print(
            f"ombpy-run: rank {rank} failed first with code "
            f"{_normalize_exit(rc)}; per-rank exit codes: "
            f"[{', '.join(codes)}] (negative = killed by signal, "
            f"{RANK_FAILED_EXIT} = peer-failure cascade)",
            file=sys.stderr,
        )
        report["exit_code"] = _normalize_exit(rc)
        return report["exit_code"]
    except subprocess.TimeoutExpired:
        report["timeout"] = True
        report["exit_code"] = 124
        raise
    finally:
        # Whatever happened above (timeout, interrupt, exception), leave
        # no child process, socket dir, or SHM segment behind.
        if handle is not None:
            handle.cleanup()
        for signum, handler in old_handlers.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):
                pass
        if telemetry_base is not None:
            _merge_telemetry(telemetry_base, n, metrics_out, trace_out)
        if exit_report is not None:
            report["interrupted"] = interrupted.is_set()
            report["elapsed_s"] = round(time.monotonic() - start, 3)
            _write_exit_report(exit_report, report)


def _write_exit_report(path: str, report: dict) -> None:
    """Atomically publish the supervision report (best-effort: a report
    that cannot be written must not turn a finished job into a crash)."""
    tmp = path + ".tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
    except OSError as exc:
        print(f"ombpy-run: could not write exit report {path}: {exc}",
              file=sys.stderr)


def _merge_telemetry(
    base: str, n: int, metrics_out: str, trace_out: str | None
) -> None:
    """Merge per-rank dump files into the job artifacts (launcher side)."""
    import shutil

    from ..telemetry.export import (
        read_rank_dumps, render_summary, write_job_files,
    )

    dumps = read_rank_dumps(base, n)
    if dumps:
        write_job_files(dumps, metrics_out, trace_out)
        print(render_summary(dumps), end="", file=sys.stderr)
    else:
        print(
            "ombpy-run: no telemetry dumps found (did the ranks exit "
            "before World.finalize?)", file=sys.stderr,
        )
    shutil.rmtree(os.path.dirname(base), ignore_errors=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ombpy-run",
        description="Launch a Python MPI program on N local processes.",
    )
    parser.add_argument(
        "-n", "--np", type=int, required=True, dest="n",
        help="number of rank processes",
    )
    parser.add_argument(
        "--timeout", type=float, default=300.0,
        help="seconds before the whole job is killed",
    )
    parser.add_argument(
        "--transport", choices=("tcp", "uds", "shm"), default="tcp",
        help="inter-process fabric: localhost TCP mesh, Unix-domain "
        "sockets, or shared-memory rings",
    )
    parser.add_argument(
        "--groups", default=None, metavar="SPEC",
        help="node-group topology: 'GxS' (G groups of S ranks), "
        "'a,b,c' (explicit sizes), a plain group size, or 'auto' "
        "(~sqrt(n) per group); enables hierarchical two-level "
        "collectives and, on shm, intra-group-only ring segments",
    )
    parser.add_argument(
        "--faults", default=None, metavar="PLAN.json",
        help="run every rank under the deterministic fault injector "
        "with this FaultPlan (see docs/resilience.md)",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None, metavar="SEED",
        help="shorthand: inject the default survivable chaos mix "
        "(message delays + slow-rank stalls) derived from SEED",
    )
    parser.add_argument(
        "--fault-log", default=None, metavar="PATH",
        help="each rank writes its injected-event log to PATH.rank<r> "
        "(identical across same-seed replays)",
    )
    parser.add_argument(
        "--grace", "--failfast-grace", type=float,
        default=DEFAULT_FAILFAST_GRACE, dest="failfast_grace",
        metavar="SECONDS",
        help="seconds survivors get to exit on their own after the "
        "first rank failure, before being terminated "
        "(--failfast-grace is accepted as an alias)",
    )
    parser.add_argument(
        "--reliable", action="store_true",
        help="run every rank with the ack/retransmit reliable-delivery "
        "layer (absorbs injected drops/duplicates/truncations)",
    )
    parser.add_argument(
        "--recover", action="store_true",
        help="fault-tolerant supervision: a rank failure does not kill "
        "the survivors, and the job succeeds if any rank finishes "
        "cleanly (for ULFM shrink-and-continue programs)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="collect per-rank metrics in every rank and merge them "
        "into a job-level metrics file after the run (plus a per-rank "
        "summary table on stderr)",
    )
    parser.add_argument(
        "--metrics-out", default="metrics.json", metavar="FILE",
        help="where to write the merged job metrics (default: "
        "metrics.json)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="record per-rank MPI spans and message events and merge "
        "them into FILE: Chrome trace JSON (load in chrome://tracing "
        "or Perfetto; one pid per rank), or compact JSONL when FILE "
        "ends in .jsonl (implies --metrics)",
    )
    parser.add_argument(
        "--exit-report", default=None, metavar="FILE",
        help="write a JSON supervision report (per-rank exit codes, "
        "first failing rank, timeout/interrupt flags) to FILE on every "
        "exit path, for supervising drivers",
    )
    parser.add_argument(
        "command", nargs=argparse.REMAINDER,
        help="program and its arguments",
    )
    args = parser.parse_args(argv)
    try:
        return launch(
            args.n, args.command, timeout=args.timeout,
            transport=args.transport, groups=args.groups,
            faults=args.faults,
            fault_seed=args.fault_seed, fault_log=args.fault_log,
            failfast_grace=args.failfast_grace, reliable=args.reliable,
            recover=args.recover, metrics=args.metrics,
            metrics_out=args.metrics_out, trace_out=args.trace_out,
            exit_report=args.exit_report,
        )
    except subprocess.TimeoutExpired:
        print(
            f"ombpy-run: job exceeded the {args.timeout}s timeout; "
            "all ranks killed", file=sys.stderr,
        )
        return 124
    except Exception as exc:  # noqa: BLE001 - CLI boundary
        print(f"ombpy-run: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
