"""Derived datatypes with non-trivial layout: vector (strided) types.

``MPI_Type_vector`` describes ``count`` blocks of ``blocklength`` elements
separated by ``stride`` elements; OSU's non-contiguous variants (and many
real applications: matrix columns, halo faces) communicate such layouts.
The runtime moves contiguous bytes, so a :class:`VectorDatatype` packs the
strided elements into a contiguous wire buffer on send and scatters them
back on receive — exactly what an MPI implementation's pack/unpack engine
does for non-contiguous derived types.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .datatypes import Datatype
from .exceptions import CountError, DatatypeError


@dataclass(frozen=True)
class VectorDatatype:
    """A strided layout over a base datatype.

    Attributes
    ----------
    base:
        Element datatype of each block entry.
    count:
        Number of blocks.
    blocklength:
        Elements per block.
    stride:
        Distance in elements between block starts (must be >=
        blocklength so blocks do not overlap).
    """

    base: Datatype
    count: int
    blocklength: int
    stride: int

    def __post_init__(self) -> None:
        if self.count < 0 or self.blocklength < 0:
            raise DatatypeError("negative count/blocklength in vector type")
        if self.stride < self.blocklength:
            raise DatatypeError(
                f"stride {self.stride} < blocklength {self.blocklength}: "
                "blocks would overlap"
            )

    @property
    def packed_elements(self) -> int:
        """Elements actually communicated."""
        return self.count * self.blocklength

    @property
    def packed_bytes(self) -> int:
        return self.packed_elements * self.base.size

    @property
    def extent_elements(self) -> int:
        """Span of the layout in the source buffer, in elements."""
        if self.count == 0:
            return 0
        return (self.count - 1) * self.stride + self.blocklength

    def Get_name(self) -> str:
        return (
            f"{self.base.Get_name()}_vector"
            f"({self.count},{self.blocklength},{self.stride})"
        )

    # -- pack/unpack engine --------------------------------------------------
    def _typed(self, buf) -> np.ndarray:
        view = memoryview(buf).cast("B")
        arr = np.frombuffer(view, dtype=self.base.to_numpy())
        if arr.shape[0] < self.extent_elements:
            raise CountError(
                f"buffer holds {arr.shape[0]} elements; vector layout "
                f"spans {self.extent_elements}"
            )
        return arr

    def _block_index(self) -> np.ndarray:
        starts = np.arange(self.count) * self.stride
        offsets = np.arange(self.blocklength)
        return (starts[:, None] + offsets[None, :]).ravel()

    def pack(self, buf) -> bytes:
        """Gather the strided elements into contiguous wire bytes."""
        if self.count == 0 or self.blocklength == 0:
            return b""
        arr = self._typed(buf)
        return np.ascontiguousarray(arr[self._block_index()]).tobytes()

    def unpack(self, payload: bytes, buf) -> None:
        """Scatter wire bytes back into the strided layout of ``buf``."""
        view = memoryview(buf).cast("B")
        if view.readonly:
            raise DatatypeError("unpack target must be writable")
        arr = np.frombuffer(view, dtype=self.base.to_numpy()).copy()
        incoming = np.frombuffer(payload, dtype=self.base.to_numpy())
        if incoming.shape[0] != self.packed_elements:
            raise CountError(
                f"payload has {incoming.shape[0]} elements; vector type "
                f"packs {self.packed_elements}"
            )
        if self.count and self.blocklength:
            arr[self._block_index()] = incoming
        view[:] = arr.tobytes()


def type_vector(
    count: int, blocklength: int, stride: int, base: Datatype
) -> VectorDatatype:
    """The MPI_Type_vector constructor."""
    return VectorDatatype(base, count, blocklength, stride)


def send_vector(comm, buf, vtype: VectorDatatype, dest: int, tag: int) -> None:
    """Send the strided elements of ``buf`` described by ``vtype``."""
    comm.send_bytes(vtype.pack(buf), dest, tag)


def recv_vector(comm, buf, vtype: VectorDatatype, source: int, tag: int):
    """Receive into the strided layout of ``buf``; returns the Status."""
    payload, status = comm.recv_bytes(source, tag, vtype.packed_bytes)
    vtype.unpack(payload, buf)
    return status
