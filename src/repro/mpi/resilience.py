"""Failure detection and fail-fast propagation for process transports.

A :class:`FailureDetector` watches every peer of one rank through two
complementary signals:

* **passive** — transport data-path threads report EOF / ``ECONNRESET`` /
  broken-pipe observations via :meth:`on_peer_lost`.  On localhost
  TCP/UDS meshes the kernel closes a dead process's sockets immediately,
  so a crashed rank is detected within milliseconds;
* **active** — a heartbeat thread sends tiny control frames
  (:data:`~repro.mpi.transport.base.CTRL_HEARTBEAT`) to every *connected*
  peer (``transport.connected_peers()`` — all of them on eager fabrics,
  only established channels on the lazy stream fabric) over
  the existing channels and declares a peer dead after
  ``heartbeat_timeout`` seconds of silence.  This catches ranks that are
  alive at the socket level but wedged (``SIGSTOP``, runaway GC, a stuck
  native call) — and it is the only signal on the shared-memory
  transport, where there is no EOF.

A transport that closes cleanly first sends a
:data:`~repro.mpi.transport.base.CTRL_GOODBYE` frame to each peer, so the
EOF that follows a *clean* departure is not misread as a crash.

On detection the peer's death is converted into a
:class:`~repro.mpi.exceptions.RankFailedError` (naming the dead rank and
carrying this rank's matching-engine wait-state) which is installed as
the endpoint's sticky failure: every blocked receive, collective, and
probe wakes and raises promptly instead of hanging until the launcher's
global timeout.  An active runtime verifier (``repro.analysis``) is
notified so its cross-rank diagnostics name the dead peer too.

Tuning knobs (environment):

* ``OMBPY_HB_INTERVAL`` — seconds between heartbeats (default 0.5);
* ``OMBPY_HB_TIMEOUT`` — heartbeat silence before a peer is declared
  dead (default 10.0; EOF detection is independent of this and
  near-instant);
* ``OMBPY_HB_DISABLE=1`` — disable the detector entirely.
"""

from __future__ import annotations

import os
import threading
import time

from .exceptions import RankFailedError
from .matching import Envelope, MatchingEngine
from .transport.base import CTRL_GOODBYE, CTRL_HEARTBEAT, Transport

DEFAULT_INTERVAL = 0.5
DEFAULT_TIMEOUT = 10.0

ENV_INTERVAL = "OMBPY_HB_INTERVAL"
ENV_TIMEOUT = "OMBPY_HB_TIMEOUT"
ENV_DISABLE = "OMBPY_HB_DISABLE"


class FailureDetector:
    """Per-rank peer-liveness monitor over one transport."""

    def __init__(
        self,
        transport: Transport,
        engine: MatchingEngine,
        interval: float = DEFAULT_INTERVAL,
        heartbeat_timeout: float = DEFAULT_TIMEOUT,
        endpoint=None,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be > 0, got {interval}")
        self.transport = transport
        self.engine = engine
        self.interval = interval
        self.heartbeat_timeout = heartbeat_timeout
        self.endpoint = endpoint
        self.rank = transport.world_rank
        # Peers currently under active heartbeat watch.  On eager fabrics
        # this converges to every peer immediately; on lazy fabrics
        # (repro.mpi.fabric) it tracks transport.connected_peers(), so
        # the detector never dials the very O(N) mesh the fabric avoids.
        self._watched: set[int] = set()
        self._lock = threading.Lock()
        self._last_seen: dict[int, float] = {}
        self._departed: set[int] = set()
        self._failed: dict[int, str] = {}
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        """Install on the transport and start the heartbeat thread."""
        self.transport.detector = self
        now = time.monotonic()
        with self._lock:
            for peer in self.transport.connected_peers():
                if peer != self.rank:
                    self._watched.add(peer)
                    self._last_seen.setdefault(peer, now)
        self._thread = threading.Thread(
            target=self._loop, name=f"hb-r{self.rank}", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop monitoring (clean shutdown path). Idempotent."""
        self._stop.set()
        if self.transport.detector is self:
            self.transport.detector = None
        if self._thread is not None:
            self._thread.join(timeout=2 * self.interval)

    # -- signal intake ----------------------------------------------------
    def on_control(self, env: Envelope) -> None:
        """A control frame arrived from ``env.source`` (reader threads)."""
        if env.tag == CTRL_HEARTBEAT:
            with self._lock:
                self._last_seen[env.source] = time.monotonic()
        elif env.tag == CTRL_GOODBYE:
            with self._lock:
                self._departed.add(env.source)

    def on_peer_lost(self, peer: int, reason: str) -> None:
        """A data-path thread observed a dead peer connection."""
        self._declare(peer, reason)

    # -- state ------------------------------------------------------------
    def failed_ranks(self) -> dict[int, str]:
        """Ranks declared dead so far (rank -> reason)."""
        with self._lock:
            return dict(self._failed)

    def departed_ranks(self) -> set[int]:
        """Ranks that announced a clean departure."""
        with self._lock:
            return set(self._departed)

    # -- internals --------------------------------------------------------
    def _declare(self, peer: int, reason: str) -> None:
        if self._stop.is_set():
            return
        with self._lock:
            if peer in self._departed or peer in self._failed:
                return
            self._failed[peer] = reason
        error = RankFailedError(
            f"rank {peer} failed: {reason} (detected by rank {self.rank})",
            rank=peer,
            wait_state=self.engine.describe_pending(),
        )
        # Tell an active runtime verifier first, so its cross-rank
        # diagnostics (PeerFailedError, deadlock snapshots) name the dead
        # rank rather than reporting a bare timeout.
        verifier = getattr(self.endpoint, "verifier", None)
        if verifier is not None and hasattr(verifier, "on_rank_failed"):
            verifier.on_rank_failed(peer, reason)
        self.engine.set_failure(error)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            # Heartbeat only peers we actually hold a channel to: on a
            # lazy fabric, probing everyone would eagerly dial the whole
            # mesh.  An unestablished peer is still observable — the
            # first send or ensure_peer() dial fails fast if it is dead.
            active = {
                p for p in self.transport.connected_peers()
                if p != self.rank
            }
            now = time.monotonic()
            with self._lock:
                departed = set(self._departed)
                failed = set(self._failed)
                # A peer (re-)entering the watch set gets a fresh clock:
                # silence accumulated while unconnected (e.g. across an
                # LRU eviction) is absence of traffic, not of life.
                for peer in active - self._watched:
                    self._last_seen[peer] = now
                self._watched = active
                last_seen = dict(self._last_seen)
            gone = departed | failed
            for peer in active - gone:
                self.transport.send_control(peer, CTRL_HEARTBEAT)
            if self.heartbeat_timeout <= 0:
                continue
            now = time.monotonic()
            for peer in active - gone:
                silence = now - last_seen.get(peer, now)
                if silence > self.heartbeat_timeout:
                    self._declare(
                        peer,
                        f"no heartbeat for {silence:.1f}s "
                        f"(timeout {self.heartbeat_timeout}s)",
                    )


def detector_from_env(
    transport: Transport, engine: MatchingEngine, endpoint=None
) -> FailureDetector | None:
    """Build (but do not start) a detector per the ``OMBPY_HB_*`` env."""
    if os.environ.get(ENV_DISABLE, "") not in ("", "0"):
        return None
    interval = float(os.environ.get(ENV_INTERVAL, DEFAULT_INTERVAL))
    hb_timeout = float(os.environ.get(ENV_TIMEOUT, DEFAULT_TIMEOUT))
    return FailureDetector(
        transport, engine, interval=interval, heartbeat_timeout=hb_timeout,
        endpoint=endpoint,
    )
