"""MPI datatypes and their mapping to NumPy dtypes.

The runtime moves raw bytes; datatypes exist so that (a) reductions know how
to reinterpret wire bytes as typed arrays, and (b) counts can be expressed in
elements rather than bytes, exactly as in MPI.  Only the basic C types the
paper's benchmarks use are predefined; :class:`Datatype` also supports simple
contiguous derived types via :meth:`Datatype.Create_contiguous`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .exceptions import DatatypeError


@dataclass(frozen=True)
class Datatype:
    """A fixed-size element type.

    Attributes
    ----------
    name:
        MPI-style name, e.g. ``"MPI_DOUBLE"``.
    np_dtype:
        The NumPy dtype used to view buffers of this type, or ``None`` for
        ``BYTE``-like raw types.
    size:
        Extent in bytes of one element.
    """

    name: str
    np_dtype: str | None
    size: int
    # Number of base elements a derived contiguous type packs together.
    count: int = field(default=1)

    def Get_size(self) -> int:
        """Return the size in bytes of one element of this type."""
        return self.size

    def Get_name(self) -> str:
        """Return the MPI-style name of this type."""
        return self.name

    def Create_contiguous(self, count: int) -> "Datatype":
        """Return a derived type equivalent to ``count`` contiguous elements."""
        if count < 0:
            raise DatatypeError(f"negative count {count} for contiguous type")
        return Datatype(
            name=f"{self.name}x{count}",
            np_dtype=self.np_dtype,
            size=self.size * count,
            count=self.count * count,
        )

    def to_numpy(self) -> np.dtype:
        """Return the NumPy dtype for this type (BYTE maps to uint8)."""
        return np.dtype(self.np_dtype if self.np_dtype is not None else "u1")


BYTE = Datatype("MPI_BYTE", None, 1)
CHAR = Datatype("MPI_CHAR", "i1", 1)
SIGNED_CHAR = Datatype("MPI_SIGNED_CHAR", "i1", 1)
UNSIGNED_CHAR = Datatype("MPI_UNSIGNED_CHAR", "u1", 1)
SHORT = Datatype("MPI_SHORT", "i2", 2)
UNSIGNED_SHORT = Datatype("MPI_UNSIGNED_SHORT", "u2", 2)
INT = Datatype("MPI_INT", "i4", 4)
UNSIGNED = Datatype("MPI_UNSIGNED", "u4", 4)
LONG = Datatype("MPI_LONG", "i8", 8)
UNSIGNED_LONG = Datatype("MPI_UNSIGNED_LONG", "u8", 8)
LONG_LONG = Datatype("MPI_LONG_LONG", "i8", 8)
FLOAT = Datatype("MPI_FLOAT", "f4", 4)
DOUBLE = Datatype("MPI_DOUBLE", "f8", 8)
C_BOOL = Datatype("MPI_C_BOOL", "?", 1)
COMPLEX = Datatype("MPI_C_FLOAT_COMPLEX", "c8", 8)
DOUBLE_COMPLEX = Datatype("MPI_C_DOUBLE_COMPLEX", "c16", 16)

# Pair types for MAXLOC/MINLOC; stored as structured dtypes.
FLOAT_INT = Datatype("MPI_FLOAT_INT", "f4,i4", 8)
DOUBLE_INT = Datatype("MPI_DOUBLE_INT", "f8,i4", 12)
LONG_INT = Datatype("MPI_LONG_INT", "i8,i4", 12)
TWO_INT = Datatype("MPI_2INT", "i4,i4", 8)

_PREDEFINED: dict[str, Datatype] = {
    t.name: t
    for t in (
        BYTE, CHAR, SIGNED_CHAR, UNSIGNED_CHAR, SHORT, UNSIGNED_SHORT,
        INT, UNSIGNED, LONG, UNSIGNED_LONG, LONG_LONG, FLOAT, DOUBLE,
        C_BOOL, COMPLEX, DOUBLE_COMPLEX, FLOAT_INT, DOUBLE_INT, LONG_INT,
        TWO_INT,
    )
}

_NUMPY_TO_MPI: dict[str, Datatype] = {
    "int8": SIGNED_CHAR,
    "uint8": UNSIGNED_CHAR,
    "int16": SHORT,
    "uint16": UNSIGNED_SHORT,
    "int32": INT,
    "uint32": UNSIGNED,
    "int64": LONG,
    "uint64": UNSIGNED_LONG,
    "float32": FLOAT,
    "float64": DOUBLE,
    "bool": C_BOOL,
    "complex64": COMPLEX,
    "complex128": DOUBLE_COMPLEX,
}


def lookup(name: str) -> Datatype:
    """Return a predefined datatype by its MPI name.

    Raises :class:`DatatypeError` for unknown names.
    """
    try:
        return _PREDEFINED[name]
    except KeyError:
        raise DatatypeError(f"unknown datatype {name!r}") from None


def from_numpy_dtype(dtype: np.dtype | str) -> Datatype:
    """Map a NumPy dtype to the matching MPI datatype.

    This is the "automatic MPI datatype discovery" step mpi4py performs when
    a bare NumPy array is passed to an upper-case communication method.
    """
    dt = np.dtype(dtype)
    try:
        return _NUMPY_TO_MPI[dt.name]
    except KeyError:
        raise DatatypeError(
            f"no MPI datatype matches numpy dtype {dt.name!r}"
        ) from None


def predefined_names() -> list[str]:
    """Return the names of all predefined datatypes (stable order)."""
    return sorted(_PREDEFINED)
