"""Message-matching engine.

Implements MPI receive-matching semantics for one rank:

* an incoming message matches the *earliest* posted receive whose
  ``(context, source, tag)`` pattern it satisfies;
* a newly posted receive matches the *earliest* unexpected message it
  satisfies;
* messages between the same (sender, receiver, context) pair are
  non-overtaking — transports must deliver in per-sender order, and both
  queues here are FIFO-scanned, which together preserve MPI ordering.

The engine is thread-safe: transports deliver from their reader threads
while application threads post receives and block in :meth:`RecvTicket.wait`.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from .constants import ANY_SOURCE, ANY_TAG
from .exceptions import CommRevokedError, TruncationError
from .status import Status


@dataclass(frozen=True)
class Envelope:
    """Wire-level message envelope."""

    context: int  # communicator context id
    source: int   # sender's rank within the communicator
    dest: int     # receiver's rank within the communicator
    tag: int
    nbytes: int


@dataclass
class _Unexpected:
    envelope: Envelope
    payload: bytes
    order: int


class RecvTicket:
    """Handle for one posted receive; completed by the matching engine."""

    __slots__ = (
        "context", "source", "tag", "max_bytes", "order",
        "_event", "payload", "status", "error", "cancelled", "verifier",
    )

    def __init__(
        self, context: int, source: int, tag: int, max_bytes: int, order: int
    ) -> None:
        self.context = context
        self.source = source
        self.tag = tag
        self.max_bytes = max_bytes
        self.order = order
        self._event = threading.Event()
        self.payload: bytes | None = None
        self.status = Status()
        self.error: Exception | None = None
        self.cancelled = False
        # Optional runtime-verifier handle (repro.analysis), stamped by
        # Comm.irecv_bytes while a `verify` region is active.
        self.verifier = None

    def matches(self, env: Envelope) -> bool:
        """Return True if ``env`` satisfies this receive's pattern."""
        if env.context != self.context:
            return False
        if self.source != ANY_SOURCE and env.source != self.source:
            return False
        if self.tag != ANY_TAG and env.tag != self.tag:
            return False
        return True

    def complete(self, env: Envelope, payload: bytes) -> None:
        """Deliver a matched message into this ticket and wake the waiter."""
        if env.nbytes > self.max_bytes:
            self.error = TruncationError(
                f"message of {env.nbytes} bytes truncates receive buffer "
                f"of {self.max_bytes} bytes (source={env.source}, "
                f"tag={env.tag})"
            )
        self.payload = payload
        self.status._fill(env.source, env.tag, env.nbytes)
        self._event.set()

    def cancel(self) -> None:
        """Mark cancelled and wake the waiter (engine removes the ticket)."""
        self.cancelled = True
        self.status.cancelled = True
        self._event.set()

    def fail(self, error: Exception) -> None:
        """Complete the ticket with an error and wake the waiter."""
        self.error = error
        self._event.set()

    def describe(self) -> str:
        """One-line wait-state description (for failure diagnostics)."""
        src = "ANY_SOURCE" if self.source == ANY_SOURCE else self.source
        tag = "ANY_TAG" if self.tag == ANY_TAG else self.tag
        return f"recv(source={src}, tag={tag}, context={self.context:#x})"

    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: float | None = None) -> bytes:
        """Block until matched; return the payload.

        Raises the recorded error (e.g. truncation) if one occurred.
        """
        if self.verifier is not None:
            # Surveillance wait: deadlock/timeout detection while blocked.
            self.verifier.wait_ticket(self, timeout)
        elif not self._event.wait(timeout):
            raise TimeoutError(
                f"receive (source={self.source}, tag={self.tag}) timed out "
                f"after {timeout}s"
            )
        if self.error is not None:
            raise self.error
        if self.cancelled:
            return b""
        assert self.payload is not None
        return self.payload


class MatchingEngine:
    """Per-rank matching state: posted receives + unexpected messages."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._posted: list[RecvTicket] = []
        self._unexpected: list[_Unexpected] = []
        self._order = itertools.count()
        # Probe waiters: condition signalled on every delivery.
        self._delivered = threading.Condition(self._lock)
        # Sticky endpoint failure (e.g. a peer rank died).  Once set, every
        # pending and future receive completes with this error: with a rank
        # gone the job cannot make progress, so fail fast everywhere rather
        # than hang survivors until the global timeout.  ULFM recovery
        # clears it via acknowledge_failure(); the per-rank record in
        # _failed_ranks is permanent.
        self._failure: Exception | None = None
        self._failed_ranks: dict[int, Exception] = {}
        # Revoked communicator contexts: permanently dead — posted
        # receives fail, queued and future messages are discarded.
        self._revoked: set[int] = set()
        # Optional telemetry hooks (repro.telemetry); duck-typed so the
        # engine never imports the telemetry package.
        self.telemetry = None

    # -- receiver side ---------------------------------------------------
    def post_recv(
        self, context: int, source: int, tag: int, max_bytes: int,
        source_world: int | None = None,
    ) -> RecvTicket:
        """Post a receive; match immediately against unexpected messages.

        ``source_world`` (the sender's world rank, when the caller knows
        it) lets a receive targeting an already-dead peer fail promptly
        even after the sticky failure has been acknowledged.
        """
        with self._lock:
            ticket = RecvTicket(
                context, source, tag, max_bytes, next(self._order)
            )
            if context in self._revoked:
                ticket.fail(CommRevokedError(
                    f"communicator context {context:#x} was revoked",
                    context=context,
                ))
                return ticket
            for i, um in enumerate(self._unexpected):
                if ticket.matches(um.envelope):
                    del self._unexpected[i]
                    ticket.complete(um.envelope, um.payload)
                    if self.telemetry is not None:
                        self.telemetry.on_matched_from_queue(um.envelope)
                    return ticket
            if self._failure is not None:
                ticket.fail(self._failure)
                return ticket
            if source_world is not None and source_world in self._failed_ranks:
                ticket.fail(self._failed_ranks[source_world])
                return ticket
            self._posted.append(ticket)
            return ticket

    def cancel_recv(self, ticket: RecvTicket) -> bool:
        """Cancel a posted receive if it has not already matched."""
        with self._lock:
            try:
                self._posted.remove(ticket)
            except ValueError:
                return False
            ticket.cancel()
            if ticket.verifier is not None:
                ticket.verifier.on_consume(ticket)
            return True

    # -- transport side --------------------------------------------------
    def deliver(self, env: Envelope, payload: bytes) -> None:
        """Deliver an incoming message (called from transport threads)."""
        with self._lock:
            if env.context in self._revoked:
                # Straggler on a revoked communicator (e.g. a frame a
                # dead rank sent before dying): discard, don't queue.
                return
            for i, ticket in enumerate(self._posted):
                if ticket.matches(env):
                    del self._posted[i]
                    ticket.complete(env, payload)
                    if self.telemetry is not None:
                        self.telemetry.on_delivered(
                            env, matched=True,
                            queue_depth=len(self._unexpected),
                        )
                    self._delivered.notify_all()
                    return
            self._unexpected.append(
                _Unexpected(env, payload, next(self._order))
            )
            if self.telemetry is not None:
                self.telemetry.on_delivered(
                    env, matched=False, queue_depth=len(self._unexpected)
                )
            self._delivered.notify_all()

    # -- failure propagation ----------------------------------------------
    def set_failure(self, error: Exception) -> None:
        """Fail every pending and future receive with ``error``.

        Called by the failure detector (or a transport read loop) when a
        peer rank is declared dead.  Blocked waiters — point-to-point
        receives, collective-internal receives, probes — wake immediately
        and raise instead of waiting out their timeouts.
        """
        with self._lock:
            rank = getattr(error, "rank", -1)
            if isinstance(rank, int) and rank >= 0:
                self._failed_ranks.setdefault(rank, error)
            if self._failure is not None:
                return
            self._failure = error
            posted, self._posted = self._posted, []
            for ticket in posted:
                ticket.fail(error)
                if ticket.verifier is not None:
                    # The error is delivered into the ticket; without
                    # this the verifier would flag every failed receive
                    # as a leaked request at finalize.
                    ticket.verifier.on_consume(ticket)
            self._delivered.notify_all()

    def acknowledge_failure(self) -> Exception | None:
        """Clear the sticky failure so survivors can keep communicating.

        ULFM's ``MPI_Comm_failure_ack`` analogue: the recorded failure
        (returned, or None) stops poisoning new operations, while the
        per-rank death record stays — receives addressed at a dead peer
        still fail promptly, and :meth:`failed_ranks` still reports it
        for ``shrink()`` to exclude.
        """
        with self._lock:
            failure, self._failure = self._failure, None
            return failure

    def failed_ranks(self) -> set[int]:
        """World ranks recorded dead (survives acknowledge_failure)."""
        with self._lock:
            return set(self._failed_ranks)

    def failure(self) -> Exception | None:
        """The sticky endpoint failure, if one was recorded."""
        with self._lock:
            return self._failure

    def check_failure(self) -> None:
        """Raise the recorded endpoint failure, if any."""
        failure = self.failure()
        if failure is not None:
            raise failure

    # -- revocation (ULFM) -------------------------------------------------
    def revoke_context(self, context: int) -> bool:
        """Kill one communicator context: fail posted, purge queued.

        Every posted receive on ``context`` completes with
        :class:`~repro.mpi.exceptions.CommRevokedError` (waking ranks
        parked inside the revoked communicator's collectives), queued
        unexpected messages on it are discarded, and any message that
        arrives later is dropped on delivery.  Returns False when the
        context was already revoked.
        """
        with self._lock:
            if context in self._revoked:
                return False
            self._revoked.add(context)
            error = CommRevokedError(
                f"communicator context {context:#x} was revoked",
                context=context,
            )
            keep: list[RecvTicket] = []
            for ticket in self._posted:
                if ticket.context != context:
                    keep.append(ticket)
                    continue
                ticket.fail(error)
                if ticket.verifier is not None:
                    ticket.verifier.on_consume(ticket)
            self._posted = keep
            self._unexpected = [
                um for um in self._unexpected
                if um.envelope.context != context
            ]
            self._delivered.notify_all()
            return True

    def is_revoked(self, context: int) -> bool:
        """Whether ``context`` has been revoked."""
        with self._lock:
            return context in self._revoked

    def purge_unexpected(self, context: int) -> int:
        """Drop queued unexpected messages on ``context`` (non-sticky).

        Unlike :meth:`revoke_context` this does not condemn the context:
        the ULFM consensus uses it to clear protocol stragglers from a
        context it will use again.
        """
        with self._lock:
            before = len(self._unexpected)
            self._unexpected = [
                um for um in self._unexpected
                if um.envelope.context != context
            ]
            return before - len(self._unexpected)

    def describe_pending(self) -> str:
        """Snapshot of the wait-state for failure diagnostics."""
        with self._lock:
            posted = [t.describe() for t in self._posted]
            unexpected = len(self._unexpected)
        if not posted and not unexpected:
            return "no pending operations"
        parts = []
        if posted:
            parts.append(f"{len(posted)} posted: " + "; ".join(posted))
        if unexpected:
            parts.append(f"{unexpected} unexpected message(s) queued")
        return ", ".join(parts)

    # -- probing ---------------------------------------------------------
    def iprobe(
        self, context: int, source: int, tag: int
    ) -> Status | None:
        """Non-blocking probe of the unexpected queue."""
        probe = RecvTicket(context, source, tag, 0, -1)
        with self._lock:
            for um in self._unexpected:
                if probe.matches(um.envelope):
                    st = Status()
                    st._fill(
                        um.envelope.source, um.envelope.tag,
                        um.envelope.nbytes,
                    )
                    return st
        return None

    def probe(
        self, context: int, source: int, tag: int,
        timeout: float | None = None,
    ) -> Status:
        """Blocking probe: wait until a matching message is unexpected."""
        probe = RecvTicket(context, source, tag, 0, -1)
        with self._delivered:
            while True:
                for um in self._unexpected:
                    if probe.matches(um.envelope):
                        st = Status()
                        st._fill(
                            um.envelope.source, um.envelope.tag,
                            um.envelope.nbytes,
                        )
                        return st
                if self._failure is not None:
                    raise self._failure
                if not self._delivered.wait(timeout):
                    raise TimeoutError(
                        f"probe (source={source}, tag={tag}) timed out"
                    )

    # -- introspection (tests / debugging) --------------------------------
    def pending_unexpected(self) -> int:
        """Number of queued unexpected messages."""
        with self._lock:
            return len(self._unexpected)

    def pending_posted(self) -> int:
        """Number of posted-but-unmatched receives."""
        with self._lock:
            return len(self._posted)
