"""Spawn-time file-descriptor budgeting against ``RLIMIT_NOFILE``.

Stream fabrics cost roughly one socket per active peer and the SHM
transport one fd per ring segment, so a wide flat topology can blow
through the soft fd limit — and it does so as an opaque ``EMFILE``
deep inside a dial loop or a ``SharedMemory`` constructor, long after
the launcher printed a healthy banner.  The guard here prices the
*planned* topology before the first fork and fails fast with the two
actionable remedies: raise ``ulimit -n``, or pass ``--groups`` so the
fabric only keeps O(group_size + n_groups) descriptors per rank.

The numbers are deliberately worst-case (every peer pair active at
once): a benchmark that exercises the full mesh is exactly the run
that must not die halfway through.
"""

from __future__ import annotations

from dataclasses import dataclass

try:  # gate: some minimal platforms ship Python without `resource`
    import resource
except ImportError:  # pragma: no cover - POSIX always has it
    resource = None  # type: ignore[assignment]

#: Descriptors reserved for everything that is not ours: stdio, the
#: interpreter's own files, logging, telemetry sinks, pipes to children.
FD_MARGIN = 64


def soft_nofile_limit() -> int | None:
    """The ``RLIMIT_NOFILE`` soft limit, or ``None`` if unknowable."""
    if resource is None:
        return None
    soft, _hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    if soft == resource.RLIM_INFINITY:
        return None
    return int(soft)


@dataclass(frozen=True)
class FdBudget:
    """Worst-case descriptor demand of one planned launch."""

    transport: str
    world_size: int
    #: fds the launcher process itself must hold (SHM segment creation
    #: keeps every ring's fd open for the job's lifetime).
    launcher_fds: int
    #: worst-case fds any single rank process holds at once.
    per_rank_fds: int
    #: ``None`` when no grouping was planned.
    n_groups: int | None = None
    max_group_size: int | None = None

    @property
    def peak_fds(self) -> int:
        """The single largest per-process demand in the job."""
        return max(self.launcher_fds, self.per_rank_fds)

    def describe(self) -> str:
        shape = (
            f"{self.world_size} ranks, flat"
            if self.n_groups is None
            else f"{self.world_size} ranks in {self.n_groups} group(s) "
                 f"of <= {self.max_group_size}"
        )
        return (
            f"transport={self.transport} ({shape}): worst case "
            f"{self.per_rank_fds} fds per rank, {self.launcher_fds} in "
            f"the launcher"
        )


def plan_fd_budget(
    world_size: int,
    transport: str,
    group_map=None,
    margin: int = FD_MARGIN,
) -> FdBudget:
    """Price the descriptor demand of a planned topology.

    ``group_map`` is duck-typed (anything with ``n_groups`` /
    ``max_group_size``, i.e. :class:`repro.mpi.topology.GroupMap`) to
    keep this module import-light for the launcher's hot path.
    """
    n = world_size
    n_groups = getattr(group_map, "n_groups", None)
    gmax = getattr(group_map, "max_group_size", None)
    grouped = n_groups is not None and gmax is not None and n_groups > 1

    if transport in ("tcp", "uds"):
        # Lazy fabric: 1 listener + 1 socket per concurrently active
        # peer.  Under a group map the two-level collectives touch only
        # intra-group peers plus one peer per other group.
        active = (gmax - 1) + (n_groups - 1) if grouped else n - 1
        per_rank = 1 + active + margin
        launcher = margin  # only pipes/stdio; sockets live in the ranks
    elif transport == "shm":
        # One fd per directed ring segment.  The launcher pre-creates
        # (and keeps) every segment; each rank maps its 2·(peers) rings.
        if grouped:
            # Hybrid path: SHM inside the group, lazy UDS across groups.
            launcher = gmax * (gmax - 1) * n_groups + margin
            per_rank = 2 * (gmax - 1) + 1 + (n_groups - 1) + margin
        else:
            launcher = n * (n - 1) + margin
            per_rank = 2 * (n - 1) + margin
    else:  # threads / singleton: everything shares one process's stdio
        launcher = margin
        per_rank = margin

    return FdBudget(
        transport=transport,
        world_size=n,
        launcher_fds=launcher,
        per_rank_fds=per_rank,
        n_groups=n_groups if grouped else None,
        max_group_size=gmax if grouped else None,
    )


def check_fd_budget(
    world_size: int,
    transport: str,
    group_map=None,
    *,
    soft_limit: int | None = None,
    margin: int = FD_MARGIN,
) -> FdBudget:
    """Fail fast if the planned topology cannot fit ``RLIMIT_NOFILE``.

    Returns the computed :class:`FdBudget` when it fits (or when the
    limit is unknowable).  Raises :class:`RuntimeError` with the limit,
    the demand, and both remedies otherwise.  ``soft_limit`` overrides
    the probed rlimit for tests.
    """
    budget = plan_fd_budget(world_size, transport, group_map, margin=margin)
    limit = soft_nofile_limit() if soft_limit is None else soft_limit
    if limit is None or budget.peak_fds <= limit:
        return budget
    raise RuntimeError(
        f"planned topology needs up to {budget.peak_fds} file "
        f"descriptors in one process ({budget.describe()}) but the "
        f"RLIMIT_NOFILE soft limit is {limit}.  Raise it "
        f"(`ulimit -n {budget.peak_fds}`) or shrink the per-process "
        f"footprint by grouping ranks (`--groups`/`OMBPY_GROUPS`, e.g. "
        f"`--groups auto`), which caps each rank at "
        f"O(group_size + n_groups) descriptors."
    )
