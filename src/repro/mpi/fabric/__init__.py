"""`repro.mpi.fabric` — the hierarchical scale-out fabric.

Laptop-scale MPI runtimes dial a full O(N²) eager mesh and treat the
communicator as flat; neither survives contact with hundreds of ranks.
This package replaces both assumptions:

* :mod:`~repro.mpi.fabric.stream` — a lazy, multiplexed connection
  cache for stream transports (TCP, UDS): one acceptor per rank, peers
  dialed on first send, an LRU-capped open-socket budget with a
  connection-level BYE handshake so eviction and transparent re-dial
  never reorder or lose frames.  ``establish_mesh`` becomes O(1); the
  steady state is O(active peers).
* :mod:`~repro.mpi.fabric.hybrid` — the node-group data path: ranks in
  the same group (``--groups``/``OMBPY_GROUPS``) talk over shared-memory
  rings, cross-group traffic rides the lazy UDS stream cache.  SHM
  segment count drops from N·(N-1) to Σ gᵢ·(gᵢ-1).
* :mod:`~repro.mpi.fabric.budget` — spawn-time fd budgeting against
  ``RLIMIT_NOFILE``, so an over-wide topology fails fast with the
  ``--groups`` remedy instead of an opaque ``EMFILE`` mid-dial.

The group *map* itself lives in :mod:`repro.mpi.topology`
(:class:`~repro.mpi.topology.GroupMap`); the two-level collectives that
exploit it live in :mod:`repro.mpi.collectives.hierarchy`.  See
``docs/scaling.md`` for the architecture tour.
"""

from .budget import FdBudget, check_fd_budget, plan_fd_budget
from .stream import LazyStreamFabric, dial_with_retry

__all__ = [
    "FdBudget",
    "LazyStreamFabric",
    "check_fd_budget",
    "dial_with_retry",
    "plan_fd_budget",
]
