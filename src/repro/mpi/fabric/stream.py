"""Lazy, multiplexed connection cache for stream transports.

The eager mesh (every rank dials every lower rank at startup) costs
O(N²) connections and O(N) establishment time per rank — our own scale
lint prices it at ~61 ms of serialized dial latency at 128 ranks
(OMB510).  :class:`LazyStreamFabric` replaces it:

* **one acceptor per rank** — ``establish_mesh`` starts a listener
  thread and returns; nothing is dialed up front;
* **dial on first send** — the first message to a peer establishes the
  channel (with backed-off retries for the startup race); subsequent
  sends are a dict lookup.  A connection is full-duplex and shared: the
  accepting side registers it as *its* send channel too, so one socket
  serves an active pair in both directions;
* **LRU-capped socket budget** — with ``max_open`` set (or
  ``OMBPY_FABRIC_MAX_CONNS``), establishing a channel beyond the budget
  evicts the least-recently-used one.  Eviction is a cooperative
  half-close: the evictor sends a :data:`~..transport.base.CTRL_BYE`
  frame, shuts down its write side, and **keeps reading until EOF**, so
  frames already in flight from the peer are all delivered; the peer's
  reader consumes the BYE, retires the channel, and the peer's next
  send transparently re-dials;
* **ordering across re-dials** — readers for the same peer are chained:
  a new connection's reader first joins the previous reader, so frames
  a peer sent on the old channel are delivered before anything from the
  new one.  Per-sender FIFO survives eviction.

Failure semantics are unchanged from the eager mesh: an unexpected EOF
or send error on an established channel reports the peer to the failure
detector, and a dial that stays refused past a short patience window
(the listener is provably up before any peer learns our address) is a
dead peer, not a startup race.
"""

from __future__ import annotations

import errno
import logging
import os
import random
import socket
import struct
import threading
import time
from typing import Callable

from ..exceptions import InternalError, RankFailedError
from ..matching import Envelope
from ..transport.base import (
    CONTROL_CONTEXT, CTRL_BYE, HEADER_SIZE, control_envelope, pack_header,
    recv_exact_into, send_frame, unpack_header,
)

logger = logging.getLogger(__name__)

#: Connection preamble: the dialing side announces its world rank.
HELLO = struct.Struct("<i")

#: Open-socket budget (0 = unlimited) unless the transport overrides it.
ENV_MAX_CONNS = "OMBPY_FABRIC_MAX_CONNS"
#: Overall dial deadline (covers the slowest startup race: a peer whose
#: process has not been spawned yet).
ENV_DIAL_TIMEOUT = "OMBPY_DIAL_TIMEOUT"

_DIAL_INITIAL_BACKOFF = 0.005
_DIAL_MAX_BACKOFF = 0.25

#: How long a *refused* dial keeps retrying.  Refused means the peer's
#: listener is gone: both stream transports publish their address only
#: after ``listen()`` (TCP via the rendezvous port map, UDS via the
#: bound socket file), so persistent refusal is a dead peer and waiting
#: the full dial timeout would wedge survivors for a minute.
_REFUSED_PATIENCE = 2.0

#: Transient connect errnos worth retrying while the refused-patience
#: window is open.
_RETRYABLE_ERRNOS = frozenset({
    errno.ECONNREFUSED, errno.ETIMEDOUT, errno.ECONNRESET,
    errno.ECONNABORTED, errno.EAGAIN,
})

#: Upper bound on waiting for a replaced reader to drain (see
#: ``_read_loop``); generous because it only triggers on eviction races.
_READER_CHAIN_TIMEOUT = 30.0


def dial_with_retry(
    connect, timeout: float, describe: str,
    initial_backoff: float = 0.02,
    max_backoff: float = 1.0,
):
    """Call ``connect()`` until it succeeds or ``timeout`` elapses.

    Retries transient connect failures (refused, timed out, reset) with
    capped exponential backoff plus jitter.  Kept for callers that need
    plain patience (service warm-up probes); the fabric's own dial path
    uses the two-tier policy in :meth:`LazyStreamFabric._dial`.
    """
    deadline = time.monotonic() + timeout
    backoff = initial_backoff
    attempt = 0
    while True:
        attempt += 1
        try:
            return connect()
        except (ConnectionError, TimeoutError, OSError) as exc:
            err = getattr(exc, "errno", None)
            transient = (
                isinstance(exc, (ConnectionError, TimeoutError))
                or err in _RETRYABLE_ERRNOS
            )
            if not transient or time.monotonic() >= deadline:
                raise InternalError(
                    f"{describe}: connect failed after {attempt} "
                    f"attempt(s): {exc!r}"
                ) from exc
            # Full jitter keeps simultaneous dialers from re-colliding.
            time.sleep(max(0.0, min(backoff, deadline - time.monotonic()))
                       * random.uniform(0.5, 1.0))
            backoff = min(backoff * 2, max_backoff)


class _Channel:
    """One live stream socket to a peer."""

    __slots__ = ("closing", "last_used", "lock", "peer", "reader", "sock")

    def __init__(self, peer: int, sock: socket.socket) -> None:
        self.peer = peer
        self.sock = sock
        self.lock = threading.Lock()
        self.closing = False
        self.last_used = time.monotonic()
        self.reader: threading.Thread | None = None


class LazyStreamFabric:
    """Connection cache + acceptor + readers for one rank's stream sockets.

    Embedded by :class:`~repro.mpi.transport.tcp.TcpTransport` and
    :class:`~repro.mpi.transport.uds.UdsTransport` (and the hybrid
    transport's inter-group path): the owner supplies the listener
    socket and a ``dialer(peer) -> socket`` closure; the fabric owns
    every thread and socket after that.
    """

    def __init__(
        self,
        owner,
        listen_sock: socket.socket,
        dialer: Callable[[int], socket.socket],
        *,
        label: str,
        configure: Callable[[socket.socket], None] | None = None,
        max_open: int | None = None,
        dial_timeout: float | None = None,
        startup_errnos: frozenset[int] = frozenset(),
    ) -> None:
        self.owner = owner
        self.listen_sock = listen_sock
        self.dialer = dialer
        self.label = label
        self.configure = configure
        if max_open is None:
            max_open = int(os.environ.get(ENV_MAX_CONNS, "0"))
        self.max_open = max_open
        if dial_timeout is None:
            dial_timeout = float(os.environ.get(ENV_DIAL_TIMEOUT, "60"))
        self.dial_timeout = dial_timeout
        self.startup_errnos = startup_errnos

        self._lock = threading.Lock()
        self._channels: dict[int, _Channel] = {}   # peer -> send channel
        self._dial_locks: dict[int, threading.Lock] = {}
        # Reader of a channel that entered cooperative close (BYE sent or
        # received) and is draining toward EOF; the next channel to the
        # same peer chains its reader behind this one for ordering.
        self._draining: dict[int, threading.Thread] = {}
        self._live: dict[int, int] = {}            # peer -> open stream count
        self._ensuring: set[int] = set()
        self._closed = threading.Event()
        self._accept_thread: threading.Thread | None = None
        self._counts = {
            "dials": 0, "accepts": 0, "evictions": 0, "byes": 0,
            "redials": 0, "peak_peers": 0, "peak_streams": 0,
        }

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> None:
        """Start the acceptor; O(1) — nothing is dialed here."""
        if self._accept_thread is not None:
            return
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"{self.label}-accept-r{self.owner.world_rank}", daemon=True,
        )
        self._accept_thread.start()

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        try:
            self.listen_sock.close()
        except OSError:
            pass
        with self._lock:
            channels = list(self._channels.values())
            self._channels.clear()
        for ch in channels:
            with ch.lock:
                ch.closing = True
                _quiet_close(ch.sock)

    # -- queries -----------------------------------------------------------
    def connected(self) -> list[int]:
        """Peers with an established send channel right now."""
        with self._lock:
            return list(self._channels)

    def stats(self) -> dict[str, int]:
        """Connection-cache counters (for benchmarks and tests)."""
        with self._lock:
            out = dict(self._counts)
            out["open_peers"] = len(self._live)
            out["open_channels"] = len(self._channels)
            out["open_streams"] = sum(self._live.values())
        return out

    # -- data path ---------------------------------------------------------
    def send(self, dest: int, env: Envelope, payload: bytes) -> None:
        """Framed send; dials and (re-)establishes the channel as needed."""
        header = pack_header(env)
        while True:
            ch = self._channel_for(dest)
            with ch.lock:
                if ch.closing:
                    continue  # raced an eviction; fetch a fresh channel
                ch.last_used = time.monotonic()
                try:
                    send_frame(ch.sock, header, payload)
                    return
                except (ConnectionError, OSError) as exc:
                    if self._closed.is_set():
                        raise
                    if ch.closing:
                        continue  # evicted mid-wait; transparent re-dial
                    self._drop(dest, ch)
                    self.owner.report_peer_lost(
                        dest, f"send failed: {exc!r}"
                    )
                    raise RankFailedError(
                        f"send to rank {dest} failed: peer is dead "
                        f"({exc!r})", rank=dest,
                    ) from exc

    def ensure(self, peer: int) -> None:
        """Background-establish the channel to ``peer`` if absent.

        Called when a receive from ``peer`` is posted: the connection is
        how this rank *observes* the peer (EOF on crash, refused dial on
        death before first contact), so a recv-side rank must not stay
        blind just because it never sent.  Non-blocking: the dial runs
        on a short-lived daemon thread; failures surface through the
        failure detector, not the caller.
        """
        if peer == self.owner.world_rank or self._closed.is_set():
            return
        with self._lock:
            if peer in self._channels or peer in self._ensuring:
                return
            self._ensuring.add(peer)

        def _bg() -> None:
            try:
                self._channel_for(peer)
            except Exception:  # noqa: BLE001 - reported via the detector
                pass
            finally:
                with self._lock:
                    self._ensuring.discard(peer)

        threading.Thread(
            target=_bg, daemon=True,
            name=f"{self.label}-ensure-r{self.owner.world_rank}-to{peer}",
        ).start()

    # -- channel establishment --------------------------------------------
    def _channel_for(self, peer: int) -> _Channel:
        ch = self._channels.get(peer)
        if ch is not None and not ch.closing:
            return ch
        if self._closed.is_set():
            raise InternalError(
                f"{self.label}: send on closed transport"
            )
        with self._lock:
            dial_lock = self._dial_locks.setdefault(peer, threading.Lock())
        with dial_lock:
            ch = self._channels.get(peer)
            if ch is not None and not ch.closing:
                return ch
            if ch is not None:
                self._counts["redials"] += 1
            detector = self.owner.detector
            if detector is not None and peer in detector.failed_ranks():
                raise RankFailedError(
                    f"rank {peer} already declared dead; not dialing",
                    rank=peer,
                )
            try:
                sock = self._dial(peer)
            except (ConnectionError, TimeoutError, OSError) as exc:
                self.owner.report_peer_lost(
                    peer, f"dial failed: {exc!r}"
                )
                raise RankFailedError(
                    f"could not establish {self.label} connection to rank "
                    f"{peer}: {exc!r}", rank=peer,
                ) from exc
            try:
                if self.configure is not None:
                    self.configure(sock)
                sock.sendall(HELLO.pack(self.owner.world_rank))
            except (ConnectionError, OSError) as exc:
                _quiet_close(sock)
                self.owner.report_peer_lost(
                    peer, f"handshake failed: {exc!r}"
                )
                raise RankFailedError(
                    f"{self.label} handshake with rank {peer} failed "
                    f"({exc!r})", rank=peer,
                ) from exc
            return self._adopt(peer, sock, inbound=False)

    def _dial(self, peer: int) -> socket.socket:
        """Two-tier dial retry.

        Startup races (the peer's listener file/process does not exist
        yet — ``startup_errnos``) are retried until ``dial_timeout``;
        refused/reset dials only for :data:`_REFUSED_PATIENCE`, because
        a vanished listener means a dead peer (see module docstring).
        Anything else raises immediately.
        """
        start = time.monotonic()
        deadline = start + self.dial_timeout
        refused_deadline = start + min(_REFUSED_PATIENCE, self.dial_timeout)
        backoff = _DIAL_INITIAL_BACKOFF
        while True:
            try:
                return self.dialer(peer)
            except (ConnectionError, TimeoutError, OSError) as exc:
                err = getattr(exc, "errno", None)
                if err in self.startup_errnos:
                    limit = deadline
                elif (isinstance(exc, (ConnectionError, TimeoutError))
                        or err in _RETRYABLE_ERRNOS):
                    limit = refused_deadline
                else:
                    raise
                if time.monotonic() >= limit:
                    raise
                time.sleep(
                    max(0.0, min(backoff, limit - time.monotonic()))
                    * random.uniform(0.5, 1.0)
                )
                backoff = min(backoff * 2, _DIAL_MAX_BACKOFF)

    def _adopt(
        self, peer: int, sock: socket.socket, *, inbound: bool
    ) -> _Channel:
        """Register a freshly established stream and start its reader."""
        ch = _Channel(peer, sock)
        with self._lock:
            if self._closed.is_set():
                _quiet_close(sock)
                raise InternalError(
                    f"{self.label}: transport closed during establishment"
                )
            current = self._channels.get(peer)
            if current is None or current.closing:
                self._channels[peer] = ch
                winner = ch
            else:
                # Simultaneous cross-dial: the established channel keeps
                # carrying our sends; the extra stream stays read-only
                # until the peer retires it.
                winner = current
            self._counts["accepts" if inbound else "dials"] += 1
            self._live[peer] = self._live.get(peer, 0) + 1
            self._counts["peak_peers"] = max(
                self._counts["peak_peers"], len(self._live)
            )
            self._counts["peak_streams"] = max(
                self._counts["peak_streams"], sum(self._live.values())
            )
            prev = self._draining.pop(peer, None)
            reader = threading.Thread(
                target=self._read_loop, args=(peer, ch, prev),
                name=f"{self.label}-read-r{self.owner.world_rank}"
                     f"-from{peer}", daemon=True,
            )
            ch.reader = reader
        reader.start()
        if winner is ch:
            self._maybe_evict(keep=peer)
        return winner

    # -- acceptor ----------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._closed.is_set():
            try:
                sock, _addr = self.listen_sock.accept()
            except OSError:
                return
            # A peer can die between connect() and its HELLO; a half-open
            # socket must not kill the acceptor (which would wedge every
            # later-arriving peer).
            try:
                if self.configure is not None:
                    self.configure(sock)
                (peer,) = HELLO.unpack(
                    recv_exact_into(sock, HELLO.size)
                )
            except (ConnectionError, OSError, struct.error) as exc:
                logger.warning(
                    "rank %d: dropping half-open inbound %s connection "
                    "(peer died mid-handshake: %r)",
                    self.owner.world_rank, self.label, exc,
                )
                _quiet_close(sock)
                continue
            try:
                self._adopt(peer, sock, inbound=True)
            except InternalError:
                return  # closed concurrently

    # -- readers -----------------------------------------------------------
    def _read_loop(
        self, peer: int, ch: _Channel, prev: threading.Thread | None
    ) -> None:
        # Ordering across re-dials: frames the peer pushed on a replaced
        # channel must be delivered before anything from this one.
        # ``prev`` is only ever the reader of a *draining* channel (BYE
        # already exchanged, EOF-bound), never of a live parallel stream
        # from a simultaneous cross-dial — so this join is short; the
        # timeout is a wedge guard, not a fast path.
        if prev is not None and prev.is_alive():
            prev.join(_READER_CHAIN_TIMEOUT)
        try:
            while not self._closed.is_set():
                env = unpack_header(recv_exact_into(ch.sock, HEADER_SIZE))
                if env.context == CONTROL_CONTEXT and env.tag == CTRL_BYE:
                    self._on_bye(peer, ch)
                    return
                payload = (
                    recv_exact_into(ch.sock, env.nbytes)
                    if env.nbytes else b""
                )
                self.owner._deliver_local(env, payload)
        except (ConnectionError, OSError) as exc:
            if self._closed.is_set() or ch.closing:
                # Our own teardown, or the drain-until-EOF tail of an
                # eviction we initiated: a clean connection end.
                _quiet_close(ch.sock)
                return
            self._drop(peer, ch)
            _quiet_close(ch.sock)
            self.owner.report_peer_lost(
                peer, f"connection lost mid-run: {exc!r}"
            )
        finally:
            with self._lock:
                left = self._live.get(peer, 1) - 1
                if left > 0:
                    self._live[peer] = left
                else:
                    self._live.pop(peer, None)

    def _on_bye(self, peer: int, ch: _Channel) -> None:
        """The peer is evicting this connection (not dying)."""
        with ch.lock:
            ch.closing = True
            self._drop(peer, ch)
            # Closing our end delivers the EOF the evictor's drain loop
            # is waiting on; anything we sent before this point was
            # already on the wire and will be read first.
            _quiet_close(ch.sock)
        with self._lock:
            self._counts["byes"] += 1
            if ch.reader is not None:
                self._draining[peer] = ch.reader

    # -- eviction ----------------------------------------------------------
    def _maybe_evict(self, keep: int) -> None:
        if not self.max_open:
            return
        while True:
            with self._lock:
                if len(self._channels) <= self.max_open:
                    return
                victims = [
                    c for p, c in self._channels.items()
                    if p != keep and not c.closing
                ]
                if not victims:
                    return
                victim = min(victims, key=lambda c: c.last_used)
            self._evict(victim)

    def _evict(self, ch: _Channel) -> None:
        """Cooperative half-close of the LRU channel.

        BYE, then ``SHUT_WR``, then *keep reading*: the peer drains our
        last frames, sees the BYE, closes its end — and only that EOF
        releases our reader (and the fd).  No frame in either direction
        is lost, which is what lets re-dial be transparent.
        """
        with ch.lock:
            if ch.closing:
                return
            ch.closing = True
            try:
                env = control_envelope(
                    CTRL_BYE, self.owner.world_rank, ch.peer
                )
                send_frame(ch.sock, pack_header(env), b"")
                ch.sock.shutdown(socket.SHUT_WR)
            except (ConnectionError, OSError):
                _quiet_close(ch.sock)  # peer is gone anyway
        self._drop(ch.peer, ch)
        with self._lock:
            self._counts["evictions"] += 1
            if ch.reader is not None:
                self._draining[ch.peer] = ch.reader

    # -- bookkeeping -------------------------------------------------------
    def _drop(self, peer: int, ch: _Channel) -> None:
        with self._lock:
            if self._channels.get(peer) is ch:
                del self._channels[peer]


def _quiet_close(sock: socket.socket) -> None:
    try:
        sock.close()
    except OSError:
        pass
