"""Hybrid shm + stream transport for grouped (multi-node-style) launches.

The scale-out analogue of an MPI library's intra-node/inter-node split:
ranks inside a node group talk over shared-memory rings (the fast path),
while traffic that crosses a group boundary rides the lazy UDS stream
fabric.  A grouped ``shm`` launch therefore opens

* ``2 * (group_size - 1)`` ring mappings per rank (intra-group mesh),
* one UDS listener, and
* at most ``n_groups - 1`` streams (the leader's worst case — the
  hierarchical collectives route inter-group traffic through leaders,
  so non-leaders usually open none),

instead of the ``O(N)`` per-rank mesh a flat launch would need — the fd
and segment budget the launcher's :func:`~repro.mpi.fabric.budget.
check_fd_budget` guard plans for.

Selected automatically by :func:`repro.mpi.world.init` when the
launcher exported both ``OMBPY_TRANSPORT=shm`` and ``OMBPY_GROUPS``.
"""

from __future__ import annotations

import errno
import os
import socket

from ..matching import Envelope
from ..transport.base import CTRL_GOODBYE
from ..transport.shm import ShmTransport
from ..transport.uds import socket_dir, socket_path
from .stream import LazyStreamFabric


class HybridTransport(ShmTransport):
    """Intra-group shm rings + lazy inter-group UDS streams."""

    def __init__(
        self, world_rank: int, world_size: int, job_id: str, group_map
    ) -> None:
        my_group = group_map.group_of(world_rank)
        super().__init__(
            world_rank, world_size, job_id,
            peers=list(group_map.members(my_group)),
        )
        self.group_map = group_map
        self._job_id = job_id
        os.makedirs(socket_dir(job_id), exist_ok=True)
        self._path = socket_path(job_id, world_rank)
        try:
            os.unlink(self._path)
        except FileNotFoundError:
            pass
        listen = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listen.bind(self._path)
        listen.listen(max(group_map.n_groups, 8))
        self._fabric = LazyStreamFabric(
            self, listen, self._dial_peer, label="hybrid",
            startup_errnos=frozenset({errno.ENOENT}),
        )

    def establish_mesh(self, timeout: float = 60.0) -> None:
        """Start the stream acceptor; rings attach eagerly in __init__."""
        self._fabric.start()

    def _dial_peer(self, peer: int) -> socket.socket:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(socket_path(self._job_id, peer))
        except BaseException:
            sock.close()
            raise
        return sock

    # -- data path -------------------------------------------------------
    def send(self, dest_world_rank: int, env: Envelope, payload: bytes) -> None:
        if dest_world_rank in self._out:
            super().send(dest_world_rank, env, payload)
            return
        if dest_world_rank == self.world_rank:
            self._deliver_local(env, payload)
            return
        self._fabric.send(dest_world_rank, env, payload)

    def send_control(
        self, dest_world_rank: int, kind: int, payload: bytes = b""
    ) -> None:
        if dest_world_rank in self._out:
            super().send_control(dest_world_rank, kind, payload)
            return
        # Inter-group control frames ride the stream like data; the base
        # implementation routes through self.send and never raises.
        from ..transport.base import Transport

        Transport.send_control(self, dest_world_rank, kind, payload)

    # -- fabric surface ---------------------------------------------------
    def ensure_peer(self, peer_world_rank: int) -> None:
        if (
            peer_world_rank != self.world_rank
            and peer_world_rank not in self._out
        ):
            self._fabric.ensure(peer_world_rank)

    def connected_peers(self) -> list[int]:
        return sorted(set(self._out) | set(self._fabric.connected()))

    def connection_stats(self) -> dict[str, int]:
        """Stream-fabric counters plus the eager shm ring count."""
        stats = self._fabric.stats()
        stats["shm_peers"] = len(self._out)
        return stats

    def close(self) -> None:
        if not self._closed.is_set():
            for peer in self._fabric.connected():
                self.send_control(peer, CTRL_GOODBYE)
            self._fabric.close()
            try:
                os.unlink(self._path)
            except OSError:
                pass
        super().close()
