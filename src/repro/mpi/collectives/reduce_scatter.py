"""Reduce-scatter: elementwise reduce, then scatter result segments.

Algorithms:

* ``recursive_halving`` — log2(p) rounds exchanging halves of the remaining
  range (power-of-two sizes, commutative ops);
* ``pairwise`` — p-1 rounds; every rank sends each peer its contribution to
  that peer's segment and folds incoming contributions in rank order, which
  also makes it safe for non-commutative operations.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..comm import Comm
from ..exceptions import CountError
from ..ops import Op
from . import selector
from .base import csendrecv, ctag, is_power_of_two, to_bytes


def _segment_bounds(counts: Sequence[int]) -> list[tuple[int, int]]:
    bounds = []
    off = 0
    for c in counts:
        bounds.append((off, off + c))
        off += c
    return bounds


def _pairwise_segments(
    comm: Comm,
    send: np.ndarray,
    counts: Sequence[int],
    op: Op,
    tag: int,
) -> np.ndarray:
    """Pairwise-exchange reduce-scatter; returns my reduced segment."""
    rank, size = comm.rank, comm.size
    bounds = _segment_bounds(counts)
    itemsize = send.dtype.itemsize
    my_lo, my_hi = bounds[rank]

    # contributions[src] = src's slice of my segment; fold in rank order so
    # non-commutative ops see x0 op x1 op ... op x(p-1).
    contributions: list[np.ndarray | None] = [None] * size
    contributions[rank] = send[my_lo:my_hi]
    for step in range(1, size):
        dest = (rank + step) % size
        source = (rank - step) % size
        d_lo, d_hi = bounds[dest]
        got = csendrecv(
            comm, to_bytes(send[d_lo:d_hi]), dest, source, tag,
            (my_hi - my_lo) * itemsize,
        )
        contributions[source] = np.frombuffer(got, dtype=send.dtype)

    acc = contributions[0]
    assert acc is not None
    acc = acc.copy()
    for part in contributions[1:]:
        assert part is not None
        acc = op(acc, part)
    return acc


def _recursive_halving(
    comm: Comm,
    send: np.ndarray,
    counts: Sequence[int],
    op: Op,
    tag: int,
) -> np.ndarray:
    """Recursive halving (requires power-of-two communicator size)."""
    rank, size = comm.rank, comm.size
    bounds = _segment_bounds(counts)
    itemsize = send.dtype.itemsize
    work = send.copy()

    # Active range of *ranks* whose segments I still accumulate.
    lo_rank, hi_rank = 0, size  # [lo, hi)
    mask = size // 2
    while mask >= 1:
        mid_rank = lo_rank + (hi_rank - lo_rank) // 2
        partner = rank ^ mask
        if rank < mid_rank:
            keep_lo, keep_hi = lo_rank, mid_rank
            send_lo, send_hi = mid_rank, hi_rank
        else:
            keep_lo, keep_hi = mid_rank, hi_rank
            send_lo, send_hi = lo_rank, mid_rank
        s_lo, s_hi = bounds[send_lo][0], bounds[send_hi - 1][1]
        k_lo, k_hi = bounds[keep_lo][0], bounds[keep_hi - 1][1]
        got = csendrecv(
            comm, to_bytes(work[s_lo:s_hi]), partner, partner, tag,
            (k_hi - k_lo) * itemsize,
        )
        part = np.frombuffer(got, dtype=send.dtype)
        work[k_lo:k_hi] = op(work[k_lo:k_hi], part)
        lo_rank, hi_rank = keep_lo, keep_hi
        mask //= 2

    my_lo, my_hi = bounds[rank]
    return work[my_lo:my_hi].copy()


def reduce_scatter(
    comm: Comm,
    send: np.ndarray,
    counts: Sequence[int],
    op: Op,
) -> np.ndarray:
    """Reduce elementwise, then return this rank's ``counts[rank]`` slice."""
    send = np.ascontiguousarray(send)
    size = comm.size
    if len(counts) != size:
        raise CountError(
            f"reduce_scatter needs {size} counts, got {len(counts)}"
        )
    if any(c < 0 for c in counts):
        raise CountError("negative count in reduce_scatter")
    total = sum(counts)
    if send.shape[0] != total:
        raise CountError(
            f"send array has {send.shape[0]} elements, counts sum to {total}"
        )
    if size == 1:
        return send.copy()

    alg = selector.pick("reduce_scatter", send.nbytes, size)
    if alg == "recursive_halving" and (
        not is_power_of_two(size) or not op.Is_commutative()
    ):
        alg = "pairwise"
    tag = ctag(comm)
    if alg == "recursive_halving":
        return _recursive_halving(comm, send, counts, op, tag)
    return _pairwise_segments(comm, send, counts, op, tag)
