"""Blocking collective algorithms.

Each module implements the textbook algorithms the MVAPICH2 family uses for
that operation (binomial trees, recursive doubling/halving, ring, Bruck,
pairwise exchange) plus a dispatch function that picks one via
:mod:`repro.mpi.collectives.selector`.  All algorithms are written against
the byte-level point-to-point API of :class:`repro.mpi.comm.Comm`, so they
run unchanged on every transport.
"""

from . import (  # noqa: F401
    allgather,
    allreduce,
    alltoall,
    barrier,
    base,
    bcast,
    gather,
    reduce,
    reduce_scatter,
    scan,
    scatter,
    selector,
    vector,
)
