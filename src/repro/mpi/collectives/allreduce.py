"""Allreduce.

Algorithms:

* ``recursive_doubling`` — latency-optimal: log2(p) exchange rounds after
  folding non-power-of-two remainders (Rabenseifner's standard trick);
* ``ring`` — bandwidth-optimal: ring reduce-scatter of p segments followed
  by a ring allgather (this is the algorithm behind large-message allreduce
  in MVAPICH2 and in ML collective libraries);
* ``reduce_bcast`` — reduce to rank 0 then broadcast; also the fallback for
  non-commutative operations because reduce preserves rank order there.
"""

from __future__ import annotations

import numpy as np

from ..comm import Comm
from ..ops import Op
from . import selector
from .base import (
    crecv,
    csend,
    csendrecv,
    ctag,
    floor_pow2,
    to_bytes,
)
from .hierarchy import hier_allreduce, partition


def _recursive_doubling(
    comm: Comm, send: np.ndarray, op: Op, tag: int
) -> np.ndarray:
    rank, size = comm.rank, comm.size
    acc = send.copy()
    nbytes = acc.nbytes
    dtype = acc.dtype

    pof2 = floor_pow2(size)
    rem = size - pof2

    # Fold the remainder: the first 2*rem ranks pair up; evens hand their
    # contribution to odds and go idle for the doubling rounds.
    if rank < 2 * rem:
        if rank % 2 == 0:
            csend(comm, rank + 1, tag, to_bytes(acc))
            newrank = -1
        else:
            part = np.frombuffer(
                crecv(comm, rank - 1, tag, nbytes), dtype=dtype
            )
            acc = op(part, acc)  # lower rank first (order-safe)
            newrank = rank // 2
    else:
        newrank = rank - rem

    if newrank != -1:
        def real_rank(nr: int) -> int:
            return nr * 2 + 1 if nr < rem else nr + rem

        mask = 1
        while mask < pof2:
            partner = real_rank(newrank ^ mask)
            got = csendrecv(
                comm, to_bytes(acc), partner, partner, tag, nbytes
            )
            part = np.frombuffer(got, dtype=dtype)
            if partner < rank:
                acc = op(part, acc)
            else:
                acc = op(acc, part)
            mask <<= 1

    # Hand results back to the idle evens.
    if rank < 2 * rem:
        if rank % 2 == 0:
            acc = np.frombuffer(
                crecv(comm, rank + 1, tag, nbytes), dtype=dtype
            ).copy()
        else:
            csend(comm, rank - 1, tag, to_bytes(acc))
    return acc


def _ring(comm: Comm, send: np.ndarray, op: Op, tag: int) -> np.ndarray:
    """Ring reduce-scatter + ring allgather over p equal segments."""
    rank, size = comm.rank, comm.size
    n = send.shape[0]
    seg = -(-n // size)
    work = np.zeros(seg * size, dtype=send.dtype)
    work[:n] = send
    itemsize = send.dtype.itemsize
    right = (rank + 1) % size
    left = (rank - 1) % size

    def seg_view(idx: int) -> np.ndarray:
        return work[idx * seg:(idx + 1) * seg]

    # Reduce-scatter: after p-1 steps, segment (rank+1)%p is fully reduced
    # at this rank.
    for step in range(size - 1):
        send_idx = (rank - step) % size
        recv_idx = (rank - step - 1) % size
        got = csendrecv(
            comm, to_bytes(seg_view(send_idx)), right, left, tag,
            seg * itemsize,
        )
        part = np.frombuffer(got, dtype=send.dtype)
        seg_view(recv_idx)[:] = op(part, seg_view(recv_idx))

    # Allgather: circulate fully-reduced segments.
    for step in range(size - 1):
        send_idx = (rank + 1 - step) % size
        recv_idx = (rank - step) % size
        got = csendrecv(
            comm, to_bytes(seg_view(send_idx)), right, left, tag,
            seg * itemsize,
        )
        seg_view(recv_idx)[:] = np.frombuffer(got, dtype=send.dtype)

    return work[:n]


def _reduce_bcast(
    comm: Comm, send: np.ndarray, op: Op, tag: int
) -> np.ndarray:
    from .bcast import bcast
    from .reduce import reduce as reduce_to_root

    result = reduce_to_root(comm, send, op, root=0)
    payload = bcast(comm, to_bytes(result) if result is not None else None, 0)
    return np.frombuffer(payload, dtype=send.dtype).copy()


_ALGORITHMS = {
    "recursive_doubling": _recursive_doubling,
    "ring": _ring,
    "reduce_bcast": _reduce_bcast,
    "hierarchical": hier_allreduce,
}


def allreduce(comm: Comm, send: np.ndarray, op: Op) -> np.ndarray:
    """Elementwise reduce; every rank returns the full result."""
    send = np.ascontiguousarray(send)
    if comm.size == 1:
        return send.copy()
    if not op.Is_commutative():
        # Order-preserving path; the two-level tree reorders, so it is
        # never eligible here.
        alg = "reduce_bcast"
    else:
        alg = selector.pick(
            "allreduce", send.nbytes, comm.size, groups=partition(comm)
        )
        if alg == "ring" and send.shape[0] < comm.size:
            alg = "recursive_doubling"
    tag = ctag(comm)
    return _ALGORITHMS[alg](comm, send, op, tag)
