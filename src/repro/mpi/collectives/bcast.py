"""Broadcast.

Algorithms:

* ``binomial`` — classic binomial tree, optimal for short messages;
* ``scatter_allgather`` — van de Geijn: binomial scatter of chunks followed
  by a ring allgather; bandwidth-optimal for long messages;
* ``linear`` — root sends to each rank in turn (baseline/ablation only).

The byte-level API does not assume non-roots know the payload size, so every
variant first runs a tiny binomial broadcast of an 8-byte length header —
mirroring how real implementations piggyback size in the rendezvous
protocol.
"""

from __future__ import annotations

import struct

from ..comm import Comm
from ..exceptions import RootError
from . import selector
from .base import ceil_pow2, crecv, csend, ctag, rank_of, vrank_of
from .hierarchy import hier_bcast, partition

_LEN = struct.Struct("<q")


def _binomial(
    comm: Comm,
    payload: bytes | None,
    root: int,
    tag: int,
    nbytes: int,
) -> bytes:
    """Binomial-tree broadcast of a known-size payload."""
    rank, size = comm.rank, comm.size
    vrank = vrank_of(rank, root, size)

    data = payload
    # Receive phase: find the bit position of my parent.
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = rank_of(vrank - mask, root, size)
            data = crecv(comm, parent, tag, nbytes)
            break
        mask <<= 1
    # Send phase: fan out to children at decreasing bit positions.
    mask >>= 1
    assert data is not None
    while mask > 0:
        child_v = vrank + mask
        if child_v < size:
            csend(comm, rank_of(child_v, root, size), tag, data)
        mask >>= 1
    return data


def _chunk_bounds(nbytes: int, size: int) -> list[tuple[int, int]]:
    """Byte ranges of the per-rank chunks used by scatter_allgather."""
    chunk = -(-nbytes // size)  # ceil division
    return [
        (min(i * chunk, nbytes), min((i + 1) * chunk, nbytes))
        for i in range(size)
    ]


def _scatter_allgather(
    comm: Comm,
    payload: bytes | None,
    root: int,
    tag: int,
    nbytes: int,
) -> bytes:
    """Van de Geijn broadcast: binomial scatter + ring allgather."""
    rank, size = comm.rank, comm.size
    vrank = vrank_of(rank, root, size)
    bounds = _chunk_bounds(nbytes, size)

    def subtree_bytes(first_v: int, span: int) -> tuple[int, int]:
        """Byte range covering chunks of vranks [first_v, first_v + span)."""
        last_v = min(first_v + span, size) - 1
        return bounds[first_v][0], bounds[last_v][1]

    # --- scatter phase (binomial, in vrank space) ---
    held: bytes
    held_lo: int
    if vrank == 0:
        assert payload is not None
        held = payload
        held_lo = 0
        recv_mask = ceil_pow2(size)  # root fans out from the top bit
    else:
        mask = 1
        while mask < size:
            if vrank & mask:
                parent = rank_of(vrank - mask, root, size)
                lo, hi = subtree_bytes(vrank, mask)
                held = crecv(comm, parent, tag, hi - lo)
                held_lo = lo
                recv_mask = mask
                break
            mask <<= 1
        else:  # pragma: no cover - unreachable for vrank > 0
            raise RootError("binomial scatter bit scan failed")
    mask = recv_mask >> 1
    while mask > 0:
        child_v = vrank + mask
        if child_v < size:
            lo, hi = subtree_bytes(child_v, mask)
            csend(
                comm, rank_of(child_v, root, size), tag,
                held[lo - held_lo:hi - held_lo],
            )
        mask >>= 1

    # Keep only my own chunk.
    chunks: list[bytes | None] = [None] * size
    my_lo, my_hi = bounds[vrank]
    chunks[vrank] = held[my_lo - held_lo:my_hi - held_lo]

    # --- ring allgather phase (in vrank space) ---
    right = rank_of((vrank + 1) % size, root, size)
    left = rank_of((vrank - 1) % size, root, size)
    for step in range(size - 1):
        send_idx = (vrank - step) % size
        recv_idx = (vrank - step - 1) % size
        block = chunks[send_idx]
        assert block is not None
        got, _ = comm.sendrecv_bytes(
            block, right, tag, left, tag,
            bounds[recv_idx][1] - bounds[recv_idx][0],
        )
        chunks[recv_idx] = got

    return b"".join(chunks)  # type: ignore[arg-type]


def _linear(
    comm: Comm,
    payload: bytes | None,
    root: int,
    tag: int,
    nbytes: int,
) -> bytes:
    """Root sends the payload to every other rank directly."""
    rank, size = comm.rank, comm.size
    if rank == root:
        assert payload is not None
        for dest in range(size):
            if dest != root:
                csend(comm, dest, tag, payload)
        return payload
    return crecv(comm, root, tag, nbytes)


_ALGORITHMS = {
    "binomial": _binomial,
    "scatter_allgather": _scatter_allgather,
    "linear": _linear,
    "hierarchical": hier_bcast,
}


def bcast(comm: Comm, payload: bytes | None, root: int) -> bytes:
    """Broadcast ``payload`` from ``root``; every rank returns the bytes."""
    rank, size = comm.rank, comm.size
    if rank == root and payload is None:
        raise RootError("root must supply the broadcast payload")
    if size == 1:
        assert payload is not None
        return payload
    tag = ctag(comm)
    # Length header so non-roots can size buffers and pick the same
    # algorithm as the root.  On a grouped communicator the header rides
    # the hierarchy as well — a flat binomial here would open the very
    # cross-group connections the two-level algorithms avoid.
    part = partition(comm)
    if rank == root:
        assert payload is not None
        hdr = _LEN.pack(len(payload))
    else:
        hdr = None
    if part is not None:
        hdr = hier_bcast(comm, hdr, root, tag, _LEN.size)
    else:
        hdr = _binomial(comm, hdr, root, tag, _LEN.size)
    (nbytes,) = _LEN.unpack(hdr)

    alg = selector.pick("bcast", nbytes, size, groups=part)
    return _ALGORITHMS[alg](comm, payload, root, tag, nbytes)
