"""Scatter of equal-size blocks from a root.

Algorithms:

* ``binomial`` — the mirror image of binomial gather: the root pushes
  contiguous subtree ranges down the tree;
* ``linear`` — root sends each rank its block directly.

As with broadcast, a small length header tells non-roots the block size.
"""

from __future__ import annotations

import struct
from typing import Sequence

from ..comm import Comm
from ..exceptions import CountError, RootError
from . import selector
from .base import ceil_pow2, check_equal_blocks, crecv, csend, rank_of, vrank_of
from .bcast import _binomial as _bcast_binomial

_LEN = struct.Struct("<q")


def _binomial(
    comm: Comm,
    blocks: Sequence[bytes] | None,
    root: int,
    tag: int,
    block: int,
) -> bytes:
    rank, size = comm.rank, comm.size
    vrank = vrank_of(rank, root, size)

    # Each rank ends up holding the contiguous vrank range [vrank, hi).
    if vrank == 0:
        assert blocks is not None
        # Reorder root's blocks into vrank order.
        held = b"".join(
            blocks[rank_of(v, root, size)] for v in range(size)
        )
        held_lo = 0
        recv_mask = ceil_pow2(size)
    else:
        mask = 1
        while mask < size:
            if vrank & mask:
                parent = rank_of(vrank - mask, root, size)
                span = min(mask, size - vrank)
                held = crecv(comm, parent, tag, span * block)
                held_lo = vrank
                recv_mask = mask
                break
            mask <<= 1
        else:  # pragma: no cover - unreachable for vrank > 0
            raise RootError("binomial scatter bit scan failed")

    mask = recv_mask >> 1
    while mask > 0:
        child_v = vrank + mask
        if child_v < size:
            span = min(mask, size - child_v)
            lo = (child_v - held_lo) * block
            csend(
                comm, rank_of(child_v, root, size), tag,
                held[lo:lo + span * block],
            )
        mask >>= 1
    return held[:block]


def _linear(
    comm: Comm,
    blocks: Sequence[bytes] | None,
    root: int,
    tag: int,
    block: int,
) -> bytes:
    rank, size = comm.rank, comm.size
    if rank == root:
        assert blocks is not None
        for dest in range(size):
            if dest != root:
                csend(comm, dest, tag, blocks[dest])
        return blocks[root]
    return crecv(comm, root, tag, block)


_ALGORITHMS = {"binomial": _binomial, "linear": _linear}


def scatter(
    comm: Comm, blocks: Sequence[bytes] | None, root: int
) -> bytes:
    """Scatter one equal-size block to each rank; returns the local block."""
    rank, size = comm.rank, comm.size
    if rank == root:
        if blocks is None:
            raise RootError("root must supply the scatter blocks")
        block = check_equal_blocks(blocks, size)
        if size == 1:
            return blocks[0]
        hdr = _LEN.pack(block)
    else:
        if size == 1:
            raise CountError("non-root rank in a size-1 scatter")
        hdr = b""
    tag = comm.next_collective_tag()
    hdr = _bcast_binomial(
        comm, hdr if rank == root else None, root, tag, _LEN.size
    )
    (block,) = _LEN.unpack(hdr)
    alg = selector.pick("scatter", block, size)
    return _ALGORITHMS[alg](comm, blocks, root, tag, block)
