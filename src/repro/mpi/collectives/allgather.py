"""Allgather of equal-size blocks.

Algorithms:

* ``recursive_doubling`` — log2(p) rounds exchanging doubling block ranges
  (power-of-two communicator sizes; others fall back to ring);
* ``ring`` — p-1 neighbour steps circulating one block at a time,
  bandwidth-optimal for long messages;
* ``linear`` — gather to rank 0 then broadcast (baseline/ablation only).
"""

from __future__ import annotations

from ..comm import Comm
from . import selector
from .base import check_equal_blocks  # noqa: F401 (re-exported for tests)
from .base import csendrecv, ctag, is_power_of_two
from .hierarchy import hier_allgather, partition


def _recursive_doubling(
    comm: Comm, payload: bytes, tag: int
) -> list[bytes]:
    rank, size = comm.rank, comm.size
    block = len(payload)
    blocks: list[bytes | None] = [None] * size
    blocks[rank] = payload

    mask = 1
    while mask < size:
        partner = rank ^ mask
        # I currently hold the aligned group of `mask` blocks containing me.
        my_lo = (rank // mask) * mask
        their_lo = (partner // mask) * mask
        chunk = b"".join(blocks[my_lo + i] for i in range(mask))  # type: ignore[misc]
        got = csendrecv(comm, chunk, partner, partner, tag, mask * block)
        for i in range(mask):
            blocks[their_lo + i] = got[i * block:(i + 1) * block]
        mask <<= 1
    return blocks  # type: ignore[return-value]


def _ring(comm: Comm, payload: bytes, tag: int) -> list[bytes]:
    rank, size = comm.rank, comm.size
    block = len(payload)
    blocks: list[bytes | None] = [None] * size
    blocks[rank] = payload
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        send_idx = (rank - step) % size
        recv_idx = (rank - step - 1) % size
        out = blocks[send_idx]
        assert out is not None
        blocks[recv_idx] = csendrecv(comm, out, right, left, tag, block)
    return blocks  # type: ignore[return-value]


def _linear(comm: Comm, payload: bytes, tag: int) -> list[bytes]:
    from .bcast import bcast
    from .gather import gather

    gathered = gather(comm, payload, root=0)
    flat = bcast(
        comm, b"".join(gathered) if gathered is not None else None, 0
    )
    block = len(payload)
    return [
        flat[i * block:(i + 1) * block] for i in range(comm.size)
    ]


_ALGORITHMS = {
    "recursive_doubling": _recursive_doubling,
    "ring": _ring,
    "linear": _linear,
    "hierarchical": hier_allgather,
}


def allgather(comm: Comm, payload: bytes) -> list[bytes]:
    """Every rank returns the ordered list of all ranks' blocks."""
    if comm.size == 1:
        return [payload]
    alg = selector.pick(
        "allgather", len(payload), comm.size, groups=partition(comm)
    )
    if alg == "recursive_doubling" and not is_power_of_two(comm.size):
        alg = "ring"
    tag = ctag(comm)
    return _ALGORITHMS[alg](comm, payload, tag)
