"""Topology-aware two-level ("hierarchical") collectives.

When the launch declares node groups (``--groups``/``OMBPY_GROUPS``,
exposed as :class:`repro.mpi.topology.GroupMap` on the endpoint), a flat
collective wastes the topology: a 32-rank dissemination barrier crosses
group boundaries ``O(p log p)`` times even though intra-group hops are
cheap (SHM rings, or at least warm lazy-fabric channels) and inter-group
hops are the expensive ones.  The two-level decomposition here is the
MVAPICH2 SMP-aware design the source paper benchmarks against:

* **allreduce** — intra-group reduce to the leader, leader-level
  allreduce, intra-group bcast of the result;
* **bcast** — group representatives (the root for its own group, the
  leader elsewhere) relay across groups, then fan out inside;
* **barrier** — intra-group fan-in, leader-level barrier, intra-group
  release;
* **gather** — intra-group gather to the representative, one message
  per group to the root;
* **allgather** — intra-group gather, leader ring over concatenated
  group blocks, intra-group bcast of the assembled result.

Inter-group traffic therefore flows only between leaders: on the lazy
stream fabric a non-leader rank establishes connections only inside its
group, and a leader adds one per peer group — the O(group_size +
n_groups) connection bound the scaling tests assert.

Every algorithm is *value-identical* to its flat counterpart for exact
(integer/bitwise) commutative operations and associativity-equivalent
for floats (reduction order differs, as it already does between the
flat algorithms themselves).  Non-commutative operations never route
here — the entry points fall back to their order-preserving flat paths
first.

All phases of one collective share the instance's single ``ctag``: the
phases are strictly ordered per rank pair and the transports guarantee
per-sender FIFO, so frames cannot cross-match.
"""

from __future__ import annotations

import numpy as np

from ..comm import Comm
from ..ops import Op
from .base import crecv, csend, ctag, rank_of, to_bytes, vrank_of

_UNSET = object()


# ---------------------------------------------------------------------------
# Partition discovery
# ---------------------------------------------------------------------------

def partition(comm: Comm) -> list[list[int]] | None:
    """The communicator's group partition, or ``None`` when flat.

    Returns the comm ranks bucketed by node group (each bucket sorted,
    buckets in group order), identical on every member rank.  ``None``
    when no group map is attached, the map does not cover every member,
    or the partition is degenerate (a single group, or all singletons) —
    cases where two-level algorithms reduce to the flat ones with extra
    hops.  Cached per communicator: the group map is fixed at launch.
    """
    cached = getattr(comm, "_hier_partition", _UNSET)
    if cached is not _UNSET:
        return cached
    part = _compute_partition(comm)
    comm._hier_partition = part
    return part


def _compute_partition(comm: Comm) -> list[list[int]] | None:
    gmap = comm.endpoint.group_map
    if gmap is None:
        return None
    from ..topology import TopologyError

    buckets: dict[int, list[int]] = {}
    try:
        for r in range(comm.size):
            gid = gmap.group_of(comm._world_rank(r))
            buckets.setdefault(gid, []).append(r)
    except TopologyError:
        # A member outside the map (sub-communicator of a larger world
        # than the map covers, or a stale map): play it flat.
        return None
    if len(buckets) <= 1:
        return None
    part = [buckets[g] for g in sorted(buckets)]
    if all(len(g) == 1 for g in part):
        return None
    return part


def _my_group(part: list[list[int]], rank: int) -> list[int]:
    for members in part:
        if rank in members:
            return members
    raise AssertionError(f"rank {rank} missing from its own partition")


# ---------------------------------------------------------------------------
# Subset primitives (binomial trees over an explicit member list)
# ---------------------------------------------------------------------------
#
# Each operates on ``members`` — a small sorted list of comm ranks that
# includes the caller — entirely in index ("vrank") space, so the same
# code serves intra-group trees, leader-level trees, and representative
# relays.

def _sub_bcast(
    comm: Comm,
    members: list[int],
    root_rank: int,
    data: bytes | None,
    tag: int,
    nbytes: int,
) -> bytes:
    """Binomial broadcast from ``root_rank`` across ``members`` only."""
    m = len(members)
    if m == 1:
        assert data is not None
        return data
    root_idx = members.index(root_rank)
    my_v = vrank_of(members.index(comm.rank), root_idx, m)

    def member(v: int) -> int:
        return members[rank_of(v, root_idx, m)]

    mask = 1
    while mask < m:
        if my_v & mask:
            data = crecv(comm, member(my_v - mask), tag, nbytes)
            break
        mask <<= 1
    mask >>= 1
    assert data is not None
    while mask > 0:
        child_v = my_v + mask
        if child_v < m:
            csend(comm, member(child_v), tag, data)
        mask >>= 1
    return data


def _sub_reduce(
    comm: Comm,
    members: list[int],
    root_rank: int,
    acc: np.ndarray,
    op: Op,
    tag: int,
) -> np.ndarray | None:
    """Binomial reduction to ``root_rank``; ``None`` on non-roots."""
    m = len(members)
    if m == 1:
        return acc
    root_idx = members.index(root_rank)
    my_v = vrank_of(members.index(comm.rank), root_idx, m)

    def member(v: int) -> int:
        return members[rank_of(v, root_idx, m)]

    nbytes = acc.nbytes
    dtype = acc.dtype
    mask = 1
    while mask < m:
        if my_v & mask:
            csend(comm, member(my_v - mask), tag, to_bytes(acc))
            return None
        child_v = my_v | mask
        if child_v < m:
            peer = member(child_v)
            part = np.frombuffer(crecv(comm, peer, tag, nbytes), dtype=dtype)
            # Lower comm rank on the left: order-stable for the exact
            # ops, and matching the flat trees' convention elsewhere.
            if peer < comm.rank:
                acc = op(part, acc)
            else:
                acc = op(acc, part)
        mask <<= 1
    return acc


def _sub_gather(
    comm: Comm,
    members: list[int],
    root_rank: int,
    payload: bytes,
    tag: int,
) -> list[bytes] | None:
    """Binomial gather to ``root_rank``; blocks in member order there."""
    m = len(members)
    if m == 1:
        return [payload]
    root_idx = members.index(root_rank)
    my_v = vrank_of(members.index(comm.rank), root_idx, m)

    def member(v: int) -> int:
        return members[rank_of(v, root_idx, m)]

    block = len(payload)
    held: list[bytes] = [payload]
    mask = 1
    while mask < m:
        if my_v & mask:
            csend(comm, member(my_v - mask), tag, b"".join(held))
            return None
        child_v = my_v | mask
        if child_v < m:
            span = min(mask, m - child_v)
            data = crecv(comm, member(child_v), tag, span * block)
            held.extend(
                data[i * block:(i + 1) * block] for i in range(span)
            )
        mask <<= 1
    # held is in vrank order; restore member-index order.
    out: list[bytes] = [b""] * m
    for v, blk in enumerate(held):
        out[rank_of(v, root_idx, m)] = blk
    return out


# ---------------------------------------------------------------------------
# Two-level collectives
# ---------------------------------------------------------------------------

def hier_allreduce(
    comm: Comm, send: np.ndarray, op: Op, tag: int
) -> np.ndarray:
    """Intra-group reduce -> leader allreduce -> intra-group bcast."""
    part = partition(comm)
    assert part is not None, "hierarchical allreduce without a partition"
    members = _my_group(part, comm.rank)
    leaders = [g[0] for g in part]
    leader = members[0]

    acc = _sub_reduce(comm, members, leader, send.copy(), op, tag)
    if comm.rank == leader:
        assert acc is not None
        # Leader-level allreduce as reduce+bcast over the leader set:
        # 2·log2(G) rounds, every hop inter-group (unavoidable) and
        # leader-to-leader only (what keeps connection counts bounded).
        acc = _sub_reduce(comm, leaders, leaders[0], acc, op, tag)
        flat = _sub_bcast(
            comm, leaders, leaders[0],
            to_bytes(acc) if acc is not None else None, tag, send.nbytes,
        )
        result = flat
    else:
        result = None
    out = _sub_bcast(comm, members, leader, result, tag, send.nbytes)
    return np.frombuffer(out, dtype=send.dtype).copy()


def hier_bcast(
    comm: Comm,
    payload: bytes | None,
    root: int,
    tag: int,
    nbytes: int,
) -> bytes:
    """Representative relay across groups, then intra-group fan-out."""
    part = partition(comm)
    assert part is not None, "hierarchical bcast without a partition"
    members = _my_group(part, comm.rank)
    # One representative per group: the root speaks for its own group so
    # the payload never takes an extra intra-group hop there.
    reps = [root if root in g else g[0] for g in part]
    rep = root if root in members else members[0]

    data = payload
    if comm.rank == rep:
        data = _sub_bcast(comm, reps, root, data, tag, nbytes)
    return _sub_bcast(comm, members, rep, data, tag, nbytes)


def hier_barrier(comm: Comm, tag: int) -> None:
    """Intra-group fan-in -> leader barrier -> intra-group release."""
    part = partition(comm)
    assert part is not None, "hierarchical barrier without a partition"
    members = _my_group(part, comm.rank)
    leaders = [g[0] for g in part]
    leader = members[0]

    arrived = _sub_gather(comm, members, leader, b"", tag)
    if comm.rank == leader:
        assert arrived is not None
        _sub_gather(comm, leaders, leaders[0], b"", tag)
        _sub_bcast(comm, leaders, leaders[0], b"", tag, 0)
    _sub_bcast(comm, members, leader, b"", tag, 0)


def hier_gather(
    comm: Comm, payload: bytes, root: int, tag: int
) -> list[bytes] | None:
    """Intra-group gather to a representative, one message per group up."""
    part = partition(comm)
    assert part is not None, "hierarchical gather without a partition"
    members = _my_group(part, comm.rank)
    rep = root if root in members else members[0]
    block = len(payload)

    mine = _sub_gather(comm, members, rep, payload, tag)
    if comm.rank == rep and comm.rank != root:
        assert mine is not None
        csend(comm, root, tag, b"".join(mine))
        return None
    if comm.rank != root:
        return None

    out: list[bytes] = [b""] * comm.size
    for grp in part:
        grp_rep = root if root in grp else grp[0]
        if grp_rep == root:
            assert mine is not None
            blocks = mine
        else:
            data = crecv(comm, grp_rep, tag, len(grp) * block)
            blocks = [
                data[i * block:(i + 1) * block] for i in range(len(grp))
            ]
        for member_rank, blk in zip(grp, blocks):
            out[member_rank] = blk
    return out


def hier_allgather(
    comm: Comm, payload: bytes, tag: int
) -> list[bytes]:
    """Intra-group gather -> leader ring of group blocks -> fan-out."""
    part = partition(comm)
    assert part is not None, "hierarchical allgather without a partition"
    members = _my_group(part, comm.rank)
    leaders = [g[0] for g in part]
    leader = members[0]
    block = len(payload)
    size = comm.size

    mine = _sub_gather(comm, members, leader, payload, tag)
    if comm.rank == leader:
        assert mine is not None
        gid = leaders.index(leader)
        n_groups = len(part)
        # Ring over leaders with ragged per-group chunks; n_groups - 1
        # inter-group steps moving each group's block exactly G-1 times
        # (vs the flat ring's p-1 inter-group crossings per block).
        chunks: list[bytes | None] = [None] * n_groups
        chunks[gid] = b"".join(mine)
        right = leaders[(gid + 1) % n_groups]
        left = leaders[(gid - 1) % n_groups]
        for step in range(n_groups - 1):
            send_idx = (gid - step) % n_groups
            recv_idx = (gid - step - 1) % n_groups
            out_chunk = chunks[send_idx]
            assert out_chunk is not None
            # Post the receive before the send (deadlock-free around the
            # ring) and let the wire transfer overlap the local post.
            req = comm.irecv_bytes(left, tag, len(part[recv_idx]) * block)
            comm.isend_bytes(out_chunk, right, tag)
            req.wait()
            chunks[recv_idx] = req.payload()
        # Assemble the flat result in comm-rank order.
        flat_parts = [b""] * size
        for grp, chunk in zip(part, chunks):
            assert chunk is not None
            for i, member_rank in enumerate(grp):
                flat_parts[member_rank] = chunk[i * block:(i + 1) * block]
        flat = b"".join(flat_parts)
    else:
        flat = None
    flat = _sub_bcast(comm, members, leader, flat, tag, size * block)
    return [flat[i * block:(i + 1) * block] for i in range(size)]
