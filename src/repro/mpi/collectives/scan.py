"""Inclusive prefix reduction (MPI_Scan).

Algorithms:

* ``recursive_doubling`` — log2(p) rounds; each rank forwards its running
  window reduction and folds windows arriving from lower ranks.  Preserves
  rank order, so it is safe for non-commutative operations too;
* ``linear`` — a chain through the ranks (baseline/ablation only).
"""

from __future__ import annotations

import numpy as np

from ..comm import Comm
from ..ops import Op
from . import selector
from .base import crecv, ctag, to_bytes


def _recursive_doubling(
    comm: Comm, send: np.ndarray, op: Op, tag: int
) -> np.ndarray:
    rank, size = comm.rank, comm.size
    nbytes = send.nbytes
    dtype = send.dtype
    result = send.copy()   # reduction over ranks [?..rank] -> goal [0..rank]
    window = send.copy()   # reduction over a contiguous trailing window

    dist = 1
    while dist < size:
        # Ship my window up; fold the window arriving from below.  Sends are
        # buffered (eager), so same-round send+recv cannot deadlock.
        if rank + dist < size:
            comm.isend_bytes(to_bytes(window), rank + dist, tag)
        if rank - dist >= 0:
            part = np.frombuffer(
                crecv(comm, rank - dist, tag, nbytes), dtype=dtype
            )
            # part covers ranks [rank - dist - (dist-1) .. rank - dist];
            # prepending keeps contributions in ascending rank order.
            window = op(part, window)
            result = op(part, result)
        dist <<= 1
    return result


def _linear(comm: Comm, send: np.ndarray, op: Op, tag: int) -> np.ndarray:
    rank, size = comm.rank, comm.size
    if rank == 0:
        acc = send.copy()
    else:
        part = np.frombuffer(
            crecv(comm, rank - 1, tag, send.nbytes), dtype=send.dtype
        )
        acc = op(part, send)
    if rank + 1 < size:
        comm.send_bytes(to_bytes(acc), rank + 1, tag)
    return acc


_ALGORITHMS = {
    "recursive_doubling": _recursive_doubling,
    "linear": _linear,
}


def scan(comm: Comm, send: np.ndarray, op: Op) -> np.ndarray:
    """Return the inclusive prefix reduction over ranks 0..rank."""
    send = np.ascontiguousarray(send)
    if comm.size == 1:
        return send.copy()
    alg = selector.pick("scan", send.nbytes, comm.size)
    tag = ctag(comm)
    return _ALGORITHMS[alg](comm, send, op, tag)
