"""Algorithm selection for collectives.

Real MPI libraries (the paper uses MVAPICH2) switch collective algorithms
on message size and communicator size via tuning tables.  This module is a
small, inspectable version of such a table, with a global override hook the
ablation benchmarks use to force a particular algorithm across a sweep.
"""

from __future__ import annotations

import os
import threading

# Switch points (bytes), modelled on common MVAPICH2/MPICH defaults.
BCAST_SHORT_MSG = 16384          # binomial below, scatter+allgather above
ALLREDUCE_SHORT_MSG = 8192       # recursive doubling below, ring above
ALLGATHER_SHORT_MSG = 32768      # recursive doubling below, ring above
ALLTOALL_SHORT_MSG = 256         # Bruck below, pairwise above
REDUCE_SHORT_MSG = 16384         # binomial below, reduce-scatter+gather above
REDUCE_SCATTER_SHORT_MSG = 8192  # recursive halving below, pairwise above

_forced: dict[str, str] = {}
_lock = threading.Lock()


def force(op: str, algorithm: str | None) -> None:
    """Force (or clear, with None) the algorithm used for ``op``.

    Used by ablation benchmarks; also settable via the environment as
    ``OMBPY_COLL_<OP>=<algorithm>`` at import time.
    """
    with _lock:
        if algorithm is None:
            _forced.pop(op, None)
        else:
            _forced[op] = algorithm


def forced(op: str) -> str | None:
    """Return the forced algorithm for ``op`` if any."""
    with _lock:
        if op in _forced:
            return _forced[op]
    env = os.environ.get(f"OMBPY_COLL_{op.upper()}")
    return env or None


#: Collectives with a topology-aware two-level implementation
#: (:mod:`repro.mpi.collectives.hierarchy`).
HIERARCHICAL_OPS = frozenset(
    {"allreduce", "bcast", "barrier", "gather", "allgather"}
)


def pick(op: str, nbytes: int, size: int, groups=None) -> str:
    """Select the algorithm name for one collective invocation.

    ``groups`` is the communicator's effective group partition (from
    :func:`repro.mpi.collectives.hierarchy.partition`); when present and
    the op has a two-level implementation, the hierarchical algorithm
    wins over the size-based table — matching MVAPICH2, where SMP-aware
    collectives take precedence whenever the topology is known.  An
    explicit override (:func:`force` / ``OMBPY_COLL_<OP>``) still beats
    everything, so flat-vs-hierarchical ablations stay possible.
    """
    override = forced(op)
    if override is not None:
        if override == "hierarchical" and groups is None:
            # Forcing hierarchy without a usable group partition would
            # just crash in dispatch; fall through to the flat table.
            pass
        else:
            return override
    if groups is not None and op in HIERARCHICAL_OPS:
        return "hierarchical"
    if op == "bcast":
        if size <= 2 or nbytes <= BCAST_SHORT_MSG:
            return "binomial"
        return "scatter_allgather"
    if op == "allreduce":
        if nbytes <= ALLREDUCE_SHORT_MSG or size <= 2:
            return "recursive_doubling"
        return "ring"
    if op == "allgather":
        if nbytes * size <= ALLGATHER_SHORT_MSG:
            return "recursive_doubling"
        return "ring"
    if op == "alltoall":
        if nbytes <= ALLTOALL_SHORT_MSG and size > 2:
            return "bruck"
        return "pairwise"
    if op == "reduce":
        if nbytes <= REDUCE_SHORT_MSG or size <= 2:
            return "binomial"
        return "rabenseifner"
    if op == "reduce_scatter":
        if nbytes <= REDUCE_SCATTER_SHORT_MSG:
            return "recursive_halving"
        return "pairwise"
    if op == "gather":
        return "binomial"
    if op == "scatter":
        return "binomial"
    if op == "barrier":
        return "dissemination"
    if op == "scan":
        return "recursive_doubling"
    raise ValueError(f"unknown collective op {op!r}")


def available(op: str) -> tuple[str, ...]:
    """List the algorithms implemented for ``op`` (for ablations/tests)."""
    table = {
        "bcast": ("binomial", "scatter_allgather", "linear", "hierarchical"),
        "allreduce": (
            "recursive_doubling", "ring", "reduce_bcast", "hierarchical",
        ),
        "allgather": ("recursive_doubling", "ring", "linear", "hierarchical"),
        "alltoall": ("bruck", "pairwise"),
        "reduce": ("binomial", "rabenseifner", "linear"),
        "reduce_scatter": ("recursive_halving", "pairwise"),
        "gather": ("binomial", "linear", "hierarchical"),
        "scatter": ("binomial", "linear"),
        "barrier": ("dissemination", "hierarchical"),
        "scan": ("recursive_doubling", "linear"),
    }
    return table[op]
