"""Reduce to a root.

Algorithms:

* ``binomial`` — partial results flow up a binomial tree (commutative ops);
* ``rabenseifner`` — pairwise reduce-scatter followed by a binomial
  gather of result segments to the root; bandwidth-optimal for long
  messages;
* ``linear`` — every rank sends to the root, which folds contributions in
  rank order.  Used automatically for non-commutative operations, where
  combining order must match ``x0 op x1 op ... op x(p-1)``.
"""

from __future__ import annotations

import numpy as np

from ..comm import Comm
from ..ops import Op
from . import selector
from .base import crecv, csend, ctag, rank_of, to_bytes, vrank_of


def _binomial(
    comm: Comm, send: np.ndarray, op: Op, root: int, tag: int
) -> np.ndarray | None:
    rank, size = comm.rank, comm.size
    vrank = vrank_of(rank, root, size)
    acc = send.copy()
    nbytes = acc.nbytes

    mask = 1
    while mask < size:
        if vrank & mask:
            parent = rank_of(vrank - mask, root, size)
            csend(comm, parent, tag, to_bytes(acc))
            return None
        child_v = vrank | mask
        if child_v < size:
            child = rank_of(child_v, root, size)
            part = np.frombuffer(
                crecv(comm, child, tag, nbytes), dtype=send.dtype
            )
            acc = op(acc, part)
        mask <<= 1
    return acc


def _linear(
    comm: Comm, send: np.ndarray, op: Op, root: int, tag: int
) -> np.ndarray | None:
    """Rank-ordered fold at the root — valid for non-commutative ops."""
    rank, size = comm.rank, comm.size
    if rank != root:
        csend(comm, root, tag, to_bytes(send))
        return None
    parts: list[np.ndarray] = []
    for src in range(size):
        if src == root:
            parts.append(send)
        else:
            parts.append(
                np.frombuffer(
                    crecv(comm, src, tag, send.nbytes), dtype=send.dtype
                )
            )
    acc = parts[0].copy()
    for part in parts[1:]:
        acc = op(acc, part)
    return acc


def _rabenseifner(
    comm: Comm, send: np.ndarray, op: Op, root: int, tag: int
) -> np.ndarray | None:
    """Pairwise reduce-scatter of equal segments, then gather to root."""
    from .reduce_scatter import _pairwise_segments

    rank, size = comm.rank, comm.size
    n = send.shape[0]
    # Pad so every rank owns an equal segment.
    seg = -(-n // size)
    padded = np.zeros(seg * size, dtype=send.dtype)
    padded[:n] = send
    counts = [seg] * size
    my_seg = _pairwise_segments(comm, padded, counts, op, tag)

    # Binomial gather of the reduced segments (in vrank space, so any
    # root works): log2(p) rounds at the root instead of p-1 serialized
    # receives, and pure data movement — bit-identical to the old
    # linear phase.  Internal nodes forward their whole subtree range
    # as one message, so segments stay single-copy on the way up.
    seg_bytes = seg * send.dtype.itemsize
    vrank = vrank_of(rank, root, size)
    held: list[bytes] = [to_bytes(my_seg)]
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = rank_of(vrank - mask, root, size)
            csend(comm, parent, tag, b"".join(held))
            return None
        child_v = vrank | mask
        if child_v < size:
            span = min(mask, size - child_v)
            child = rank_of(child_v, root, size)
            data = crecv(comm, child, tag, span * seg_bytes)
            held.extend(
                data[i * seg_bytes:(i + 1) * seg_bytes]
                for i in range(span)
            )
        mask <<= 1
    # Root: held is ordered by vrank; place each segment at its owner's
    # comm-rank offset.
    out = np.empty(seg * size, dtype=send.dtype)
    for v, blk in enumerate(held):
        owner = rank_of(v, root, size)
        out[owner * seg:(owner + 1) * seg] = np.frombuffer(
            blk, dtype=send.dtype
        )
    return out[:n]


_ALGORITHMS = {
    "binomial": _binomial,
    "rabenseifner": _rabenseifner,
    "linear": _linear,
}


def reduce(
    comm: Comm, send: np.ndarray, op: Op, root: int
) -> np.ndarray | None:
    """Elementwise reduce to ``root``; non-roots return None."""
    send = np.ascontiguousarray(send)
    if comm.size == 1:
        return send.copy()
    tag = ctag(comm)
    if not op.Is_commutative():
        alg = "linear"
    else:
        alg = selector.pick("reduce", send.nbytes, comm.size)
        if alg == "rabenseifner" and send.shape[0] < comm.size:
            alg = "binomial"  # too few elements to segment
    return _ALGORITHMS[alg](comm, send, op, root, tag)
