"""Gather of equal-size blocks to a root.

Algorithms:

* ``binomial`` — subtree blocks flow up a binomial tree; each internal node
  forwards a contiguous range of blocks, so messages stay single-copy;
* ``linear`` — every rank sends straight to the root.
"""

from __future__ import annotations

from ..comm import Comm
from . import selector
from .base import crecv, csend, ctag, rank_of, vrank_of
from .hierarchy import hier_gather, partition


def _binomial(
    comm: Comm, payload: bytes, root: int, tag: int
) -> list[bytes] | None:
    rank, size = comm.rank, comm.size
    vrank = vrank_of(rank, root, size)
    block = len(payload)

    # held[i] is the block of vrank (my_vrank + i); grows as children report.
    held: list[bytes] = [payload]
    mask = 1
    while mask < size:
        if vrank & mask:
            # Send my whole subtree range [vrank, vrank + mask) to parent.
            parent = rank_of(vrank - mask, root, size)
            csend(comm, parent, tag, b"".join(held))
            held = []
            break
        child_v = vrank | mask
        if child_v < size:
            span = min(mask, size - child_v)
            child = rank_of(child_v, root, size)
            data = crecv(comm, child, tag, span * block)
            held.extend(
                data[i * block:(i + 1) * block] for i in range(span)
            )
        mask <<= 1

    if vrank != 0:
        return None
    # Root: held is ordered by vrank; restore comm-rank order.
    out: list[bytes] = [b""] * size
    for v, blk in enumerate(held):
        out[rank_of(v, root, size)] = blk
    return out


def _linear(
    comm: Comm, payload: bytes, root: int, tag: int
) -> list[bytes] | None:
    rank, size = comm.rank, comm.size
    if rank != root:
        csend(comm, root, tag, payload)
        return None
    out: list[bytes] = [b""] * size
    out[root] = payload
    block = len(payload)
    for src in range(size):
        if src != root:
            out[src] = crecv(comm, src, tag, block)
    return out


_ALGORITHMS = {
    "binomial": _binomial,
    "linear": _linear,
    "hierarchical": hier_gather,
}


def gather(comm: Comm, payload: bytes, root: int) -> list[bytes] | None:
    """Gather every rank's equal-size block to ``root`` (None elsewhere)."""
    if comm.size == 1:
        return [payload]
    tag = ctag(comm)
    alg = selector.pick(
        "gather", len(payload), comm.size, groups=partition(comm)
    )
    return _ALGORITHMS[alg](comm, payload, root, tag)
