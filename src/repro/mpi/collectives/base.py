"""Shared plumbing for collective algorithms.

Every collective instance reserves one internal tag via
``comm.next_collective_tag()`` and routes all of its traffic under it;
consecutive collectives therefore cannot cross-match even when user code
overlaps them across sub-communicators.
"""

from __future__ import annotations

import numpy as np

from ..comm import Comm
from ..exceptions import CountError


def ctag(comm: Comm) -> int:
    """Reserve the internal tag for one collective instance."""
    tag = comm.next_collective_tag()
    verifier = comm.endpoint.verifier
    if verifier is not None:
        # Lets verifier diagnostics name the collective a blocked internal
        # receive belongs to ("pending in collective 'bcast'").
        verifier.on_collective_tag(tag)
    sanitizer = comm.endpoint.sanitizer
    if sanitizer is not None:
        # Collective entry is a vector-clock synchronization point.
        sanitizer.on_collective(tag)
    return tag


def csend(comm: Comm, dest: int, tag: int, payload: bytes) -> None:
    """Internal blocking send under a collective tag."""
    tele = comm.endpoint.telemetry
    if tele is not None:
        tele.on_coll_message(len(payload))
    comm.send_bytes(payload, dest, tag)


def crecv(comm: Comm, source: int, tag: int, max_bytes: int) -> bytes:
    """Internal blocking receive under a collective tag."""
    payload, _status = comm.recv_bytes(source, tag, max_bytes)
    return payload


def csendrecv(
    comm: Comm,
    payload: bytes,
    dest: int,
    source: int,
    tag: int,
    max_bytes: int,
) -> bytes:
    """Internal combined send/receive (deadlock-free pairwise exchange)."""
    tele = comm.endpoint.telemetry
    if tele is not None:
        tele.on_coll_message(len(payload))
    got, _status = comm.sendrecv_bytes(
        payload, dest, tag, source, tag, max_bytes
    )
    return got


def as_array(payload: bytes, like: np.ndarray) -> np.ndarray:
    """View wire bytes as an array with ``like``'s dtype (writable copy)."""
    arr = np.frombuffer(payload, dtype=like.dtype)
    return arr.copy()


def to_bytes(arr: np.ndarray) -> bytes:
    """Serialize an array to contiguous wire bytes."""
    return np.ascontiguousarray(arr).tobytes()


def check_equal_blocks(blocks, size: int) -> int:
    """Validate an alltoall/scatter block list; return the block size."""
    if len(blocks) != size:
        raise CountError(
            f"expected {size} blocks, got {len(blocks)}"
        )
    n = len(blocks[0])
    for i, b in enumerate(blocks):
        if len(b) != n:
            raise CountError(
                f"block {i} has {len(b)} bytes, expected {n} (equal-size "
                "collective; use the v-variant for ragged blocks)"
            )
    return n


def vrank_of(rank: int, root: int, size: int) -> int:
    """Rank relative to ``root`` (root becomes 0)."""
    return (rank - root) % size


def rank_of(vrank: int, root: int, size: int) -> int:
    """Inverse of :func:`vrank_of`."""
    return (vrank + root) % size


def is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


def floor_pow2(n: int) -> int:
    """Largest power of two <= n (n >= 1)."""
    p = 1
    while p * 2 <= n:
        p *= 2
    return p


def ceil_pow2(n: int) -> int:
    """Smallest power of two >= n (n >= 1).

    This is the mask a binomial-tree *root* starts its fan-out from: after
    ``mask >>= 1`` the first child is the highest power of two below n.
    """
    p = 1
    while p < n:
        p *= 2
    return p
