"""Vector (variable-block-size) collectives: Gatherv/Scatterv/Allgatherv/
Alltoallv.

Real MPI libraries mostly use linear/root-centric algorithms for the
v-variants because block-size irregularity defeats the packing tricks of
the equal-size algorithms; these implementations follow suit, except for
allgatherv which uses the ring (counts are global knowledge there).
"""

from __future__ import annotations

import struct
from typing import Sequence

import numpy as np

from ..comm import Comm
from ..exceptions import CountError
from .base import crecv, csend, csendrecv, ctag

_LEN = struct.Struct("<q")


def gatherv(
    comm: Comm,
    payload: bytes,
    counts: Sequence[int] | None,
    root: int,
) -> list[bytes] | None:
    """Gather variable-size blocks to ``root``.

    ``counts`` (expected byte counts per rank) is only significant at the
    root; None lets the root size receives from the incoming envelopes.
    """
    rank, size = comm.rank, comm.size
    tag = ctag(comm)
    if size == 1:
        return [payload]
    if rank != root:
        csend(comm, root, tag, payload)
        return None
    if counts is not None and len(counts) != size:
        raise CountError(f"gatherv needs {size} counts, got {len(counts)}")
    out: list[bytes] = [b""] * size
    out[root] = payload
    for src in range(size):
        if src == root:
            continue
        limit = counts[src] if counts is not None else 1 << 62
        out[src] = crecv(comm, src, tag, limit)
    return out


def scatterv(
    comm: Comm,
    blocks: Sequence[bytes] | None,
    root: int,
) -> bytes:
    """Scatter variable-size blocks from ``root``; returns the local block."""
    rank, size = comm.rank, comm.size
    tag = ctag(comm)
    if size == 1:
        assert blocks is not None
        return blocks[0]
    if rank == root:
        assert blocks is not None
        if len(blocks) != size:
            raise CountError(
                f"scatterv needs {size} blocks, got {len(blocks)}"
            )
        for dest in range(size):
            if dest != root:
                csend(comm, dest, tag, blocks[dest])
        return blocks[root]
    return crecv(comm, root, tag, 1 << 62)


def allgatherv(
    comm: Comm, payload: bytes, counts: Sequence[int]
) -> list[bytes]:
    """Ring allgather of variable-size blocks; ``counts`` known everywhere."""
    rank, size = comm.rank, comm.size
    if len(counts) != size:
        raise CountError(f"allgatherv needs {size} counts, got {len(counts)}")
    if len(payload) != counts[rank]:
        raise CountError(
            f"rank {rank} block is {len(payload)} bytes, counts says "
            f"{counts[rank]}"
        )
    if size == 1:
        return [payload]
    tag = ctag(comm)
    blocks: list[bytes | None] = [None] * size
    blocks[rank] = payload
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        send_idx = (rank - step) % size
        recv_idx = (rank - step - 1) % size
        out = blocks[send_idx]
        assert out is not None
        blocks[recv_idx] = csendrecv(
            comm, out, right, left, tag, counts[recv_idx]
        )
    return blocks  # type: ignore[return-value]


def alltoallv(comm: Comm, blocks: Sequence[bytes]) -> list[bytes]:
    """Pairwise personalized exchange of variable-size blocks.

    Peer block sizes need not be known in advance; a length header travels
    with each block (mirroring how MPI_Alltoallv callers exchange counts).
    """
    rank, size = comm.rank, comm.size
    if len(blocks) != size:
        raise CountError(f"alltoallv needs {size} blocks, got {len(blocks)}")
    if size == 1:
        return [bytes(blocks[0])]
    tag = ctag(comm)
    out: list[bytes] = [b""] * size
    out[rank] = bytes(blocks[rank])
    for step in range(1, size):
        dest = (rank + step) % size
        source = (rank - step) % size
        framed = _LEN.pack(len(blocks[dest])) + bytes(blocks[dest])
        got = csendrecv(comm, framed, dest, source, tag, 1 << 62)
        (n,) = _LEN.unpack(got[:_LEN.size])
        body = got[_LEN.size:]
        if len(body) != n:
            raise CountError(
                f"alltoallv frame from rank {source} declares {n} bytes "
                f"but carries {len(body)}"
            )
        out[source] = body
    return out


def gatherv_array(
    comm: Comm,
    send: np.ndarray,
    counts: Sequence[int] | None,
    root: int,
) -> np.ndarray | None:
    """Convenience: gatherv of 1-D arrays, concatenated at the root."""
    got = gatherv(
        comm,
        np.ascontiguousarray(send).tobytes(),
        [c * send.dtype.itemsize for c in counts] if counts else None,
        root,
    )
    if got is None:
        return None
    return np.frombuffer(b"".join(got), dtype=send.dtype).copy()
