"""Barrier.

Algorithms:

* ``dissemination`` — ``ceil(log2 p)`` rounds; in round ``k`` each rank
  sends a zero-byte token to ``(rank + 2^k) mod p`` and waits for one
  from ``(rank - 2^k) mod p``.  After the last round every rank
  transitively depends on every other, which is the barrier property.
* ``hierarchical`` — intra-group fan-in, leader-level barrier,
  intra-group release (:mod:`.hierarchy`); selected automatically when
  the launch declared node groups.
"""

from __future__ import annotations

from ..comm import Comm
from . import selector
from .base import csendrecv, ctag
from .hierarchy import hier_barrier, partition


def _dissemination(comm: Comm, tag: int) -> None:
    rank, size = comm.rank, comm.size
    dist = 1
    while dist < size:
        dest = (rank + dist) % size
        source = (rank - dist) % size
        csendrecv(comm, b"", dest, source, tag, 0)
        dist <<= 1


def barrier(comm: Comm) -> None:
    """Block until all ranks of ``comm`` have entered."""
    if comm.size == 1:
        return
    alg = selector.pick("barrier", 0, comm.size, groups=partition(comm))
    tag = ctag(comm)
    if alg == "hierarchical":
        hier_barrier(comm, tag)
        return
    _dissemination(comm, tag)
