"""Dissemination barrier.

``ceil(log2 p)`` rounds; in round ``k`` each rank sends a zero-byte token to
``(rank + 2^k) mod p`` and waits for one from ``(rank - 2^k) mod p``.  After
the last round every rank transitively depends on every other, which is the
barrier property.
"""

from __future__ import annotations

from ..comm import Comm
from .base import csendrecv, ctag


def barrier(comm: Comm) -> None:
    """Block until all ranks of ``comm`` have entered."""
    size = comm.size
    if size == 1:
        return
    tag = ctag(comm)
    rank = comm.rank
    dist = 1
    while dist < size:
        dest = (rank + dist) % size
        source = (rank - dist) % size
        csendrecv(comm, b"", dest, source, tag, 0)
        dist <<= 1
