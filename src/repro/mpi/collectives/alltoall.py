"""Personalized all-to-all exchange of equal-size blocks.

Algorithms:

* ``bruck`` — log2(p) rounds; each round ships every block whose remaining
  forward distance has the round's bit set.  Latency-optimal for small
  blocks (O(log p) messages of up to n*p/2 bytes each);
* ``pairwise`` — p-1 rounds of direct sendrecv with rotating partners;
  bandwidth-optimal for large blocks.
"""

from __future__ import annotations

from typing import Sequence

from ..comm import Comm
from . import selector
from .base import check_equal_blocks, csendrecv, ctag


def _pairwise(
    comm: Comm, blocks: Sequence[bytes], tag: int, block: int
) -> list[bytes]:
    rank, size = comm.rank, comm.size
    out: list[bytes] = [b""] * size
    out[rank] = blocks[rank]
    for step in range(1, size):
        dest = (rank + step) % size
        source = (rank - step) % size
        out[source] = csendrecv(
            comm, blocks[dest], dest, source, tag, block
        )
    return out


def _bruck(
    comm: Comm, blocks: Sequence[bytes], tag: int, block: int
) -> list[bytes]:
    rank, size = comm.rank, comm.size
    # Phase 1: index blocks by remaining forward distance to destination.
    # tmp[i] holds the block whose destination is (rank + i) % size.
    tmp: list[bytes] = [blocks[(rank + i) % size] for i in range(size)]

    # Phase 2: route by distance bits.  In round k every rank ships its
    # blocks with bit k of the distance set forward by 2^k; by symmetry
    # each rank receives exactly the replacement blocks for those slots.
    pof2 = 1
    while pof2 < size:
        dest = (rank + pof2) % size
        source = (rank - pof2) % size
        idxs = [i for i in range(size) if i & pof2]
        packed = b"".join(tmp[i] for i in idxs)
        got = csendrecv(comm, packed, dest, source, tag, len(packed))
        for j, i in enumerate(idxs):
            tmp[i] = got[j * block:(j + 1) * block]
        pof2 <<= 1

    # Phase 3: tmp[i] is now the block destined to me whose source is
    # (rank - i) % size — undo the rotation.
    out: list[bytes] = [b""] * size
    for i in range(size):
        out[(rank - i) % size] = tmp[i]
    return out


_ALGORITHMS = {"bruck": _bruck, "pairwise": _pairwise}


def alltoall(comm: Comm, blocks: Sequence[bytes]) -> list[bytes]:
    """Exchange block ``i`` with rank ``i``; returns blocks received."""
    block = check_equal_blocks(blocks, comm.size)
    if comm.size == 1:
        return [blocks[0]]
    alg = selector.pick("alltoall", block, comm.size)
    tag = ctag(comm)
    return _ALGORITHMS[alg](comm, blocks, tag, block)
