"""Non-blocking collectives (MPI-3 I-collectives).

The paper's first OMB-Py release covers blocking collectives and names
non-blocking support as planned work; this module provides it.  Each
``i<collective>`` returns a :class:`CollectiveRequest` immediately and
progresses the operation on a background progress thread — the same
execution model single-threaded MPI implementations approximate with
progress engines, and the model that makes communication/computation
*overlap* measurable (see ``osu_iallreduce``-style benchmarks).

Correct usage mirrors MPI: all ranks must start the same non-blocking
collectives in the same order, and each rank must eventually complete
every request.  Operations run on an internally duplicated communicator
clone (fresh context), so in-flight i-collectives can never cross-match
blocking traffic issued while they progress.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

import numpy as np

from ..comm import Comm
from ..exceptions import MPIError
from ..ops import Op


class CollectiveRequest:
    """Handle for an in-flight non-blocking collective."""

    __slots__ = ("_thread", "_result", "_error", "_done")

    def __init__(self, fn: Callable[[], Any]) -> None:
        self._result: Any = None
        self._error: BaseException | None = None
        self._done = threading.Event()

        def runner() -> None:
            try:
                self._result = fn()
            except BaseException as exc:  # noqa: BLE001 - re-raised in wait
                self._error = exc
            finally:
                self._done.set()

        self._thread = threading.Thread(target=runner, daemon=True)
        self._thread.start()

    def done(self) -> bool:
        """Non-blocking completion check."""
        return self._done.is_set()

    def test(self) -> tuple[bool, Any]:
        """(done, result-or-None) without blocking."""
        if not self._done.is_set():
            return False, None
        return True, self.wait()

    def wait(self, timeout: float | None = None) -> Any:
        """Block until the collective completes; return its result."""
        if not self._done.wait(timeout):
            raise TimeoutError("non-blocking collective timed out")
        if self._error is not None:
            raise self._error
        return self._result


class NonBlockingCollectives:
    """Factory bound to one communicator.

    Lazily duplicates the communicator once; all i-collectives issued
    through this object run on the duplicate, in issue order (serialized
    by a per-factory lock so overlapping requests cannot interleave
    *between* ranks differently).
    """

    def __init__(self, comm: Comm) -> None:
        self._parent = comm
        self._clone: Comm | None = None
        # Issue-order tickets: MPI requires all ranks to *start* the same
        # i-collectives in the same order, so executing strictly in ticket
        # order keeps the progress threads globally aligned even when the
        # OS schedules them differently on each rank.
        self._next_ticket = 0
        self._served = 0
        self._order_cv = threading.Condition()

    def _comm(self) -> Comm:
        # Dup is collective: every rank's factory performs it as part of
        # its first i-collective, which all ranks must start in the same
        # order anyway.
        if self._clone is None:
            self._clone = self._parent.Dup()
        return self._clone

    def _launch(self, fn: Callable[[Comm], Any]) -> CollectiveRequest:
        with self._order_cv:
            ticket = self._next_ticket
            self._next_ticket += 1
            if ticket == 0:
                # First i-collective performs the collective Dup before
                # any progress thread runs.
                self._comm()
        comm = self._clone
        assert comm is not None

        def in_issue_order() -> Any:
            with self._order_cv:
                while self._served != ticket:
                    self._order_cv.wait()
            try:
                return fn(comm)
            finally:
                with self._order_cv:
                    self._served += 1
                    self._order_cv.notify_all()

        return CollectiveRequest(in_issue_order)

    # -- the i-collectives -------------------------------------------------
    def ibarrier(self) -> CollectiveRequest:
        """Non-blocking barrier; completion implies all ranks entered."""
        return self._launch(lambda c: c.barrier())

    def ibcast(
        self, payload: bytes | None, root: int
    ) -> CollectiveRequest:
        """Non-blocking broadcast; result is the payload bytes."""
        return self._launch(lambda c: c.bcast_bytes(payload, root))

    def ireduce(
        self, send: np.ndarray, op: Op, root: int
    ) -> CollectiveRequest:
        """Non-blocking reduce; result is the array at root, None else."""
        send = np.ascontiguousarray(send).copy()
        return self._launch(lambda c: c.reduce_array(send, op, root))

    def iallreduce(self, send: np.ndarray, op: Op) -> CollectiveRequest:
        """Non-blocking allreduce; result is the reduced array."""
        send = np.ascontiguousarray(send).copy()
        return self._launch(lambda c: c.allreduce_array(send, op))

    def igather(self, payload: bytes, root: int) -> CollectiveRequest:
        """Non-blocking gather; result is the block list at root."""
        return self._launch(lambda c: c.gather_bytes(payload, root))

    def iscatter(
        self, blocks: Sequence[bytes] | None, root: int
    ) -> CollectiveRequest:
        """Non-blocking scatter; result is this rank's block."""
        return self._launch(lambda c: c.scatter_bytes(blocks, root))

    def iallgather(self, payload: bytes) -> CollectiveRequest:
        """Non-blocking allgather; result is the ordered block list."""
        return self._launch(lambda c: c.allgather_bytes(payload))

    def ialltoall(self, blocks: Sequence[bytes]) -> CollectiveRequest:
        """Non-blocking alltoall; result is the received block list."""
        blocks = [bytes(b) for b in blocks]
        return self._launch(lambda c: c.alltoall_bytes(blocks))

    def ireduce_scatter(
        self, send: np.ndarray, counts: Sequence[int], op: Op
    ) -> CollectiveRequest:
        """Non-blocking reduce_scatter; result is this rank's segment."""
        send = np.ascontiguousarray(send).copy()
        counts = list(counts)
        return self._launch(
            lambda c: c.reduce_scatter_array(send, counts, op)
        )


def waitall_collectives(
    requests: Sequence[CollectiveRequest], timeout: float | None = None
) -> list[Any]:
    """Wait for several i-collectives; results in order."""
    if not requests:
        raise MPIError("waitall on empty collective request list")
    return [r.wait(timeout) for r in requests]
