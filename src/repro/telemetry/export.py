"""Job-level telemetry assembly: gather, merge, and write.

A *dump* is one rank's JSON-ready payload (``Telemetry.dump()``:
metrics snapshot + trace events).  This module moves dumps from the
ranks to wherever the whole-job view is built and renders the three
job-level artifacts:

* ``metrics.json`` — per-rank registries plus a merged ``job`` section;
* ``trace.json`` — Chrome trace (one pid per rank) or compact JSONL
  when the output path ends in ``.jsonl``;
* the end-of-job per-rank summary table printed to stderr.

Two transport paths exist for the gather:

* **in-job** (:func:`collect_job`): every rank serializes its dump and
  rank 0 collects them with ``gatherv_bytes`` over COMM_WORLD — the
  same byte-level plane all application traffic uses, so it works
  unchanged on the threads, TCP, UDS, and SHM fabrics;
* **launcher-side** (:func:`write_rank_dump` / :func:`read_rank_dumps`):
  each rank writes ``<base>.rank<r>.json`` at finalize and ``ombpy-run``
  merges after the job exits — this covers arbitrary programs that never
  call the CLI's gather.
"""

from __future__ import annotations

import io
import json

from .metrics import merge_snapshots
from .runtime import SCHEMA, Telemetry

METRICS_SCHEMA = "ombpy-metrics/1"


# -- dump (de)serialization ----------------------------------------------
def dump_to_bytes(dump: dict) -> bytes:
    return json.dumps(dump, separators=(",", ":"), sort_keys=True).encode()


def dump_from_bytes(data: bytes) -> dict:
    dump = json.loads(data.decode())
    if not isinstance(dump, dict) or dump.get("schema") != SCHEMA:
        raise ValueError(
            f"not a telemetry dump (expected schema {SCHEMA!r})"
        )
    if not isinstance(dump.get("rank"), int):
        raise ValueError("telemetry dump missing integer 'rank'")
    return dump


# -- per-rank dump files (launcher path) ---------------------------------
def rank_dump_path(base: str, rank: int) -> str:
    return f"{base}.rank{rank}.json"


def write_rank_dump(base: str, tele: Telemetry) -> str:
    """Write one rank's dump to ``<base>.rank<r>.json``; returns the path."""
    path = rank_dump_path(base, tele.rank)
    with open(path, "wb") as fh:
        fh.write(dump_to_bytes(tele.dump()))
    return path


def read_rank_dumps(base: str, n: int) -> dict[int, dict]:
    """Read whatever per-rank dumps exist under ``base`` (missing ok)."""
    dumps: dict[int, dict] = {}
    for rank in range(n):
        try:
            with open(rank_dump_path(base, rank), "rb") as fh:
                dumps[rank] = dump_from_bytes(fh.read())
        except (OSError, ValueError):
            continue
    return dumps


# -- in-job gather (control-plane path) ----------------------------------
def collect_job(comm, tele: Telemetry) -> dict[int, dict] | None:
    """Gather every rank's dump to rank 0 over the communicator.

    Collective: all ranks must call it.  Returns {rank: dump} on rank 0
    and None elsewhere.  The dump rides the same byte-level plane as
    application traffic, so the snapshot round-trips the process
    transports exactly like any other message.
    """
    payload = dump_to_bytes(tele.dump())
    gathered = comm.gatherv_bytes(payload, None, 0)
    if gathered is None:
        return None
    dumps = {}
    for blob in gathered:
        dump = dump_from_bytes(blob)
        dumps[dump["rank"]] = dump
    return dumps


# -- job-level artifacts -------------------------------------------------
def merged_metrics(dumps: dict[int, dict]) -> dict:
    """Per-rank registries + a merged job section (counters summed)."""
    per_rank = {
        str(rank): dump.get("metrics") or {}
        for rank, dump in sorted(dumps.items())
    }
    return {
        "schema": METRICS_SCHEMA,
        "nranks": len(dumps),
        "ranks": per_rank,
        "job": merge_snapshots(list(per_rank.values())),
    }


def chrome_trace(dumps: dict[int, dict]) -> dict:
    """Merge per-rank trace events into one Chrome trace document.

    One pid per rank (with a ``process_name`` metadata record), ts/dur
    in microseconds relative to the earliest event in the job.
    """
    base_ts = min(
        (e[3] for dump in dumps.values() for e in dump.get("trace", [])),
        default=0,
    )
    trace_events: list[dict] = []
    for rank, dump in sorted(dumps.items()):
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": rank, "tid": 0,
            "args": {"name": f"rank {rank}"},
        })
        for ph, name, cat, ts_ns, dur_ns, tid, args in dump.get("trace", []):
            event = {
                "name": name, "cat": cat, "ph": ph, "pid": rank, "tid": tid,
                "ts": (ts_ns - base_ts) / 1000.0,
            }
            if ph == "X":
                event["dur"] = dur_ns / 1000.0
            elif ph == "i":
                event["s"] = "t"
            if args:
                event["args"] = args
            trace_events.append(event)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def trace_jsonl(dumps: dict[int, dict]) -> str:
    """Compact JSONL: one ``[rank, ph, name, cat, ts, dur, tid, args]``/line."""
    out = io.StringIO()
    for rank, dump in sorted(dumps.items()):
        for event in dump.get("trace", []):
            out.write(
                json.dumps([rank] + list(event), separators=(",", ":"))
            )
            out.write("\n")
    return out.getvalue()


def write_job_files(
    dumps: dict[int, dict],
    metrics_path: str | None = None,
    trace_path: str | None = None,
) -> None:
    """Write the merged job artifacts (either path may be None)."""
    if metrics_path:
        with open(metrics_path, "w") as fh:
            json.dump(merged_metrics(dumps), fh, indent=1, sort_keys=True)
            fh.write("\n")
    if trace_path:
        if trace_path.endswith(".jsonl"):
            with open(trace_path, "w") as fh:
                fh.write(trace_jsonl(dumps))
        else:
            with open(trace_path, "w") as fh:
                json.dump(chrome_trace(dumps), fh)
                fh.write("\n")


# -- summary table -------------------------------------------------------
def _rank_row(metrics: dict) -> tuple[int, int, int, int, float]:
    counters = metrics.get("counters", {})
    hist = metrics.get("histograms", {}).get("coll.us", {})
    return (
        int(counters.get("comm.msgs_sent", 0)),
        int(counters.get("comm.bytes_sent", 0)),
        int(counters.get("comm.msgs_recvd", 0)),
        int(counters.get("reliability.retransmits", 0)),
        float(hist.get("sum", 0.0)) / 1000.0,
    )


def render_summary(dumps: dict[int, dict]) -> str:
    """Per-rank end-of-job table (msgs, bytes, retransmits, coll time)."""
    out = io.StringIO()
    header = (
        f"{'# rank':<8}{'msgs':>12}{'bytes':>16}{'recvd':>12}"
        f"{'retrans':>10}{'coll_ms':>12}\n"
    )
    out.write("# telemetry: per-rank summary\n")
    out.write(header)
    totals = [0, 0, 0, 0, 0.0]
    for rank, dump in sorted(dumps.items()):
        row = _rank_row(dump.get("metrics") or {})
        for i, v in enumerate(row):
            totals[i] += v
        dropped = dump.get("trace_dropped", 0)
        note = f"  (+{dropped} trace events dropped)" if dropped else ""
        out.write(
            f"{rank:<8}{row[0]:>12}{row[1]:>16}{row[2]:>12}{row[3]:>10}"
            f"{row[4]:>12.2f}{note}\n"
        )
    out.write(
        f"{'job':<8}{totals[0]:>12}{totals[1]:>16}{totals[2]:>12}"
        f"{totals[3]:>10}{totals[4]:>12.2f}\n"
    )
    return out.getvalue()
