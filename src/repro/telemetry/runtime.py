"""Per-rank telemetry object and endpoint wiring.

One :class:`Telemetry` instance per rank bundles the metrics registry
and the span tracer and exposes the narrow hook methods the runtime
layers call:

* ``Comm.isend_bytes``            -> :meth:`Telemetry.on_send`
* ``Comm.recv_bytes``             -> :meth:`Telemetry.on_recv_wait`
* ``Comm.<collective>``           -> :meth:`Telemetry.run_collective`
* ``MatchingEngine.deliver``      -> :meth:`Telemetry.on_delivered`
* ``MatchingEngine.post_recv``    -> :meth:`Telemetry.on_matched_from_queue`
* collective internals (csend)    -> :meth:`Telemetry.on_coll_message`
* ``Benchmark._sweep``            -> :meth:`Telemetry.phase`
* ``ReliableTransport._count``    -> mirrored counters via
  ``bind_telemetry`` (see :mod:`repro.mpi.reliability`)

Every hook site guards with ``if endpoint.telemetry is not None`` — the
disabled cost is one attribute load and one identity test, which is why
no global kill-switch or sampling layer exists.  The hot counters are
resolved once at construction so an instrumented send is one lock and
one integer add.

Message *sinks* are lightweight subscribers to the send/recv/complete
event stream; :mod:`repro.mpi.trace` uses one to keep its ``TraceLog``
API alive on top of this layer.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

from .metrics import MetricsRegistry
from .tracer import DEFAULT_MAX_EVENTS, Tracer

#: Enable the metrics registry in every rank assembled by the world
#: bootstrap (set by ``ombpy-run --metrics`` / ``ombpy --metrics``).
ENV_METRICS = "OMBPY_METRICS"
#: Enable the span tracer (set by ``--trace-out``).
ENV_TRACE = "OMBPY_TRACE"
#: Path base for per-rank dump files written at ``World.finalize`` —
#: rank r writes ``<base>.rank<r>.json``.  Set by the launcher, which
#: merges the dumps into the job-level ``metrics.json``/``trace.json``.
ENV_OUT = "OMBPY_TELEMETRY_OUT"
#: Override the tracer's event-buffer cap.
ENV_TRACE_MAX = "OMBPY_TRACE_MAX_EVENTS"

SCHEMA = "ombpy-telemetry/1"


class Telemetry:
    """Per-rank metrics + tracing facade the runtime hooks call into."""

    def __init__(
        self,
        rank: int,
        metrics: bool = True,
        trace: bool = False,
        max_trace_events: int | None = None,
    ) -> None:
        self.rank = rank
        self.metrics: MetricsRegistry | None = (
            MetricsRegistry() if metrics else None
        )
        if trace:
            cap = (
                max_trace_events if max_trace_events is not None
                else int(os.environ.get(ENV_TRACE_MAX, DEFAULT_MAX_EVENTS))
            )
            self.tracer: Tracer | None = Tracer(rank, max_events=cap)
        else:
            self.tracer = None
        # Message sinks (e.g. repro.mpi.trace.TraceLog): called with
        # (kind, src, dst, context, tag, nbytes).
        self._sinks: list = []
        # Pre-resolved hot-path instruments.
        m = self.metrics
        self._c_sent = m.counter("comm.msgs_sent") if m else None
        self._c_sent_bytes = m.counter("comm.bytes_sent") if m else None
        self._c_recvd = m.counter("comm.msgs_recvd") if m else None
        self._c_recvd_bytes = m.counter("comm.bytes_recvd") if m else None
        self._c_posted_hits = m.counter("match.posted_hits") if m else None
        self._c_unexpected = m.counter("match.unexpected_queued") if m else None
        self._c_unexpected_hits = (
            m.counter("match.unexpected_hits") if m else None
        )
        self._g_unexpected_peak = (
            m.gauge("match.unexpected_peak") if m else None
        )
        self._c_coll_msgs = m.counter("coll.msgs") if m else None
        self._c_coll_bytes = m.counter("coll.bytes") if m else None
        self._h_recv_wait = m.histogram("p2p.recv_wait_us") if m else None
        self._h_coll = m.histogram("coll.us") if m else None

    # -- sinks -----------------------------------------------------------
    def add_message_sink(self, sink) -> None:
        """Subscribe ``sink(kind, src, dst, context, tag, nbytes)``."""
        self._sinks = self._sinks + [sink]

    def remove_message_sink(self, sink) -> None:
        self._sinks = [s for s in self._sinks if s is not sink]

    def _emit(
        self, kind: str, src: int, dst: int, context: int, tag: int,
        nbytes: int,
    ) -> None:
        for sink in self._sinks:
            sink(kind, src, dst, context, tag, nbytes)

    # -- point-to-point hooks -------------------------------------------
    def on_send(self, src_world: int, dst_world: int, env) -> None:
        """One outgoing message left this rank at the communicator level."""
        if self._c_sent is not None:
            self._c_sent.inc()
            self._c_sent_bytes.inc(env.nbytes)
        if self.tracer is not None:
            self.tracer.message(
                "send", src_world, dst_world, env.context, env.tag, env.nbytes
            )
        if self._sinks:
            self._emit(
                "send", src_world, dst_world, env.context, env.tag, env.nbytes
            )

    def on_delivered(self, env, matched: bool, queue_depth: int) -> None:
        """One message arrived at this rank's matching engine.

        ``env.source`` is the sender's *communicator-local* rank (on
        COMM_WORLD it equals the world rank); ``matched`` says whether a
        posted receive consumed it immediately or it joined the
        unexpected queue (depth ``queue_depth`` after the append).
        """
        if self._c_recvd is not None:
            self._c_recvd.inc()
            self._c_recvd_bytes.inc(env.nbytes)
            if matched:
                self._c_posted_hits.inc()
            else:
                self._c_unexpected.inc()
                self._g_unexpected_peak.set_max(queue_depth)
        if self.tracer is not None:
            self.tracer.message(
                "recv", env.source, self.rank, env.context, env.tag, env.nbytes
            )
        if self._sinks:
            self._emit(
                "recv", env.source, self.rank, env.context, env.tag, env.nbytes
            )
            if matched:
                self._emit(
                    "complete", env.source, self.rank, env.context, env.tag,
                    env.nbytes,
                )

    def on_matched_from_queue(self, env) -> None:
        """A newly posted receive completed against a queued message."""
        if self._c_unexpected_hits is not None:
            self._c_unexpected_hits.inc()
        if self.tracer is not None:
            self.tracer.message(
                "complete", env.source, self.rank, env.context, env.tag,
                env.nbytes,
            )
        if self._sinks:
            self._emit(
                "complete", env.source, self.rank, env.context, env.tag,
                env.nbytes,
            )

    def on_recv_wait(
        self, t0_ns: int, dur_ns: int, source: int, tag: int
    ) -> None:
        """A blocking receive finished waiting (``dur_ns`` wall-clock)."""
        if self._h_recv_wait is not None:
            self._h_recv_wait.observe(dur_ns / 1000.0)
        if self.tracer is not None:
            self.tracer.complete(
                "recv.wait", "p2p", t0_ns, dur_ns,
                {"source": source, "tag": tag},
            )

    # -- collective hooks ------------------------------------------------
    def run_collective(self, name: str, fn, *args):
        """Run one collective under a span + latency histogram."""
        t0 = time.time_ns()
        try:
            return fn(*args)
        finally:
            dur = time.time_ns() - t0
            if self.metrics is not None:
                self.metrics.counter("coll.calls." + name).inc()
                self._h_coll.observe(dur / 1000.0)
            if self.tracer is not None:
                self.tracer.complete("coll." + name, "collective", t0, dur)

    def on_coll_message(self, nbytes: int) -> None:
        """One collective-internal message was sent (subset of on_send)."""
        if self._c_coll_msgs is not None:
            self._c_coll_msgs.inc()
            self._c_coll_bytes.inc(nbytes)

    # -- benchmark phases ------------------------------------------------
    @contextmanager
    def phase(self, name: str, **args):
        """Span + counter for one benchmark phase (e.g. one message size)."""
        t0 = time.time_ns()
        try:
            yield
        finally:
            dur = time.time_ns() - t0
            if self.metrics is not None:
                self.metrics.counter("bench.phases").inc()
            if self.tracer is not None:
                self.tracer.complete(name, "bench", t0, dur, args or None)

    # -- snapshots -------------------------------------------------------
    def snapshot(self) -> dict:
        """Metrics-only view (no trace events)."""
        return {
            "schema": SCHEMA,
            "rank": self.rank,
            "metrics": (
                self.metrics.snapshot() if self.metrics is not None else None
            ),
            "trace_dropped": (
                self.tracer.dropped if self.tracer is not None else 0
            ),
        }

    def dump(self) -> dict:
        """Full per-rank payload: metrics snapshot + trace events."""
        d = self.snapshot()
        d["trace"] = self.tracer.events() if self.tracer is not None else []
        return d


def telemetry_from_env(rank: int) -> Telemetry | None:
    """Build a rank's Telemetry from ``OMBPY_METRICS``/``OMBPY_TRACE``.

    Returns None (telemetry fully disabled, zero overhead beyond the
    hook sites' None checks) when neither variable is set.  Tracing
    implies metrics: the job summary table needs the counters.
    """
    metrics = os.environ.get(ENV_METRICS, "") not in ("", "0")
    trace = os.environ.get(ENV_TRACE, "") not in ("", "0")
    if not metrics and not trace:
        return None
    return Telemetry(rank, metrics=True, trace=trace)


def install_on_endpoint(endpoint, tele: Telemetry) -> Telemetry:
    """Attach ``tele`` to an endpoint: comm hooks, engine hooks, and any
    transport decorator in the stack that knows how to bind (the
    reliability layer mirrors its counters into the registry)."""
    endpoint.telemetry = tele
    endpoint.engine.telemetry = tele
    t = endpoint.transport
    while t is not None:
        bind = getattr(t, "bind_telemetry", None)
        if bind is not None:
            bind(tele)
        t = getattr(t, "inner", None)
    return tele


def uninstall_from_endpoint(endpoint) -> None:
    """Detach telemetry from an endpoint (hook sites revert to no-ops)."""
    endpoint.telemetry = None
    endpoint.engine.telemetry = None
    t = endpoint.transport
    while t is not None:
        bind = getattr(t, "bind_telemetry", None)
        if bind is not None:
            bind(None)
        t = getattr(t, "inner", None)
