"""``repro.telemetry`` — per-rank tracing, metrics, and job observability.

The measurement layer the benchmarks (and every runtime subsystem —
matching, collectives, reliability, ULFM recovery) report into:

* :mod:`repro.telemetry.metrics` — counters, gauges, log2-bucket latency
  histograms in a mergeable per-rank registry;
* :mod:`repro.telemetry.tracer` — span + message-event tracer exporting
  Chrome ``chrome://tracing`` JSON (one pid per rank) and compact JSONL;
* :mod:`repro.telemetry.runtime` — the per-rank :class:`Telemetry`
  facade the runtime hooks call, plus endpoint install/uninstall and the
  ``OMBPY_METRICS``/``OMBPY_TRACE``/``OMBPY_TELEMETRY_OUT`` knobs;
* :mod:`repro.telemetry.export` — whole-job assembly: control-plane
  gather to rank 0, launcher-side per-rank dump merge, ``metrics.json``
  / ``trace.json`` writers, and the end-of-job summary table.

Everything is off (and free, beyond a ``None`` check per hook site)
until ``ombpy --metrics/--trace-out`` or ``ombpy-run --metrics/--trace-out``
switches it on.  See ``docs/observability.md``.
"""

from .metrics import (
    Counter, Gauge, Histogram, MetricsRegistry, merge_snapshots,
    snapshot_from_bytes, snapshot_to_bytes,
)
from .runtime import (
    ENV_METRICS, ENV_OUT, ENV_TRACE, SCHEMA, Telemetry,
    install_on_endpoint, telemetry_from_env, uninstall_from_endpoint,
)
from .tracer import Tracer

__all__ = [
    "Counter",
    "ENV_METRICS",
    "ENV_OUT",
    "ENV_TRACE",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SCHEMA",
    "Telemetry",
    "Tracer",
    "install_on_endpoint",
    "merge_snapshots",
    "snapshot_from_bytes",
    "snapshot_to_bytes",
    "telemetry_from_env",
    "uninstall_from_endpoint",
]
