"""Metrics primitives: counters, gauges, and log2-bucket histograms.

The registry is the per-rank store every runtime layer reports into:
the communicator counts messages and bytes, the matching engine counts
queue traffic, the reliability layer mirrors its protocol counters, the
collectives record latency histograms.  Snapshots are plain
JSON-serializable dicts, so a rank's registry can ride the existing
byte-level control plane (``gatherv_bytes``) or a per-rank dump file to
wherever the whole-job view is assembled.

Design constraints:

* **cheap** — instruments are tiny lock-guarded objects; the hot paths
  pre-resolve them once (see :class:`~repro.telemetry.runtime.Telemetry`)
  so a counted send costs one lock + one integer add.  When telemetry is
  disabled nothing here is ever constructed.
* **thread-safe** — transports deliver from reader threads while
  application threads send; every mutation takes the instrument's lock.
* **mergeable** — :func:`merge_snapshots` folds any number of per-rank
  snapshots into one job-level view (counters sum, gauges take the max,
  histogram bins add elementwise).
"""

from __future__ import annotations

import json
import threading

#: Number of log2 latency bins.  Bin 0 is [0, 1); bin i (i >= 1) is
#: [2**(i-1), 2**i); the last bin absorbs everything larger.  28 bins
#: cover [0, ~134s) in microseconds — wider than any sane MPI call.
DEFAULT_BUCKETS = 28


class Counter:
    """Monotonically increasing integer."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """Last-written (or peak) float value."""

    __slots__ = ("_value", "_lock")

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, v: float) -> None:
        with self._lock:
            self._value = float(v)

    def set_max(self, v: float) -> None:
        """Record ``v`` if it exceeds the current value (peak tracking)."""
        with self._lock:
            if v > self._value:
                self._value = float(v)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed log2-bucket histogram (values in microseconds by convention).

    Bucket boundaries are powers of two: bucket 0 holds values below 1,
    bucket i holds [2**(i-1), 2**i), and the final bucket is unbounded.
    Log2 binning keeps ``observe`` branch-free (one ``bit_length``) and
    makes bins from different ranks merge by elementwise addition.
    """

    __slots__ = ("_buckets", "_count", "_sum", "_lock")

    def __init__(self, nbuckets: int = DEFAULT_BUCKETS) -> None:
        if nbuckets < 2:
            raise ValueError(f"histogram needs >= 2 buckets, got {nbuckets}")
        self._buckets = [0] * nbuckets
        self._count = 0
        self._sum = 0.0
        self._lock = threading.Lock()

    @staticmethod
    def bucket_index(value: float, nbuckets: int = DEFAULT_BUCKETS) -> int:
        """The log2 bin for ``value`` (clamped into the last bin)."""
        if value < 1:
            return 0
        return min(int(value).bit_length(), nbuckets - 1)

    @staticmethod
    def bucket_bounds(i: int, nbuckets: int = DEFAULT_BUCKETS) -> tuple[float, float]:
        """[lo, hi) of bin ``i`` (the last bin's hi is +inf)."""
        if i == 0:
            return 0.0, 1.0
        hi = float("inf") if i == nbuckets - 1 else float(1 << i)
        return float(1 << (i - 1)), hi

    def observe(self, value: float) -> None:
        idx = self.bucket_index(value, len(self._buckets))
        with self._lock:
            self._buckets[idx] += 1
            self._count += 1
            self._sum += value

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "count": self._count,
                "sum": self._sum,
                "buckets": list(self._buckets),
            }


class MetricsRegistry:
    """Get-or-create store of named instruments with a snapshot view."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                c = self._counters[name] = Counter()
            return c

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                g = self._gauges[name] = Gauge()
            return g

    def histogram(self, name: str, nbuckets: int = DEFAULT_BUCKETS) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                h = self._histograms[name] = Histogram(nbuckets)
            return h

    def snapshot(self) -> dict:
        """JSON-ready view: {"counters": ..., "gauges": ..., "histograms": ...}."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {k: c.value for k, c in sorted(counters.items())},
            "gauges": {k: g.value for k, g in sorted(gauges.items())},
            "histograms": {
                k: h.snapshot() for k, h in sorted(histograms.items())
            },
        }


def snapshot_to_bytes(snapshot: dict) -> bytes:
    """Serialize a snapshot for the control plane (compact JSON)."""
    return json.dumps(snapshot, separators=(",", ":"), sort_keys=True).encode()


def snapshot_from_bytes(data: bytes) -> dict:
    """Inverse of :func:`snapshot_to_bytes`; validates the shape."""
    snap = json.loads(data.decode())
    if not isinstance(snap, dict):
        raise ValueError("metrics snapshot must be a JSON object")
    for key in ("counters", "gauges", "histograms"):
        if not isinstance(snap.get(key, {}), dict):
            raise ValueError(f"metrics snapshot field {key!r} must be a dict")
    return snap


def merge_snapshots(snapshots: list[dict]) -> dict:
    """Fold per-rank snapshots into one job-level snapshot.

    Counters and histogram bins add; gauges keep the max across ranks
    (they are peaks/levels, not totals).
    """
    counters: dict[str, int] = {}
    gauges: dict[str, float] = {}
    histograms: dict[str, dict] = {}
    for snap in snapshots:
        for name, v in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(v)
        for name, v in snap.get("gauges", {}).items():
            gauges[name] = max(gauges.get(name, float("-inf")), float(v))
        for name, h in snap.get("histograms", {}).items():
            got = histograms.get(name)
            if got is None:
                histograms[name] = {
                    "count": int(h["count"]),
                    "sum": float(h["sum"]),
                    "buckets": [int(b) for b in h["buckets"]],
                }
                continue
            got["count"] += int(h["count"])
            got["sum"] += float(h["sum"])
            theirs = h["buckets"]
            if len(theirs) > len(got["buckets"]):
                got["buckets"].extend([0] * (len(theirs) - len(got["buckets"])))
            for i, b in enumerate(theirs):
                got["buckets"][i] += int(b)
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }
