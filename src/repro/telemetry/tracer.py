"""Span-based per-rank tracer.

Records MPI-call spans (collectives, blocking waits, benchmark phases)
and point message events as compact in-memory records, exportable two
ways:

* **Chrome trace JSON** (``chrome://tracing`` / Perfetto): one *pid* per
  rank, one *tid* per OS thread within the rank, complete (``"X"``)
  events for spans and instant (``"i"``) events for messages — see
  :func:`repro.telemetry.export.chrome_trace` for the job-level merge;
* **compact JSONL**: one JSON array per line, for ad-hoc ``jq``-style
  processing.

Timestamps are wall-clock ``time.time_ns()`` so events from different
rank *processes* line up on one timeline (a per-process monotonic clock
would have a different origin in every rank); durations are wall-clock
deltas clamped non-negative.  Within one thread events are recorded at
completion time, so per-``(pid, tid)`` *end* times are non-decreasing —
the invariant ``tools/validate_trace.py`` checks.

The event buffer is bounded (:data:`DEFAULT_MAX_EVENTS`); once full,
further events are counted in :attr:`Tracer.dropped` rather than
recorded, so a long benchmark cannot exhaust memory.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

#: Event-buffer cap per rank.  ~80 bytes/event in memory, so the default
#: bounds a rank at roughly 16 MB of trace state.
DEFAULT_MAX_EVENTS = 200_000

# Event record layout (list, JSON-ready):
#   [ph, name, cat, ts_ns, dur_ns, tid, args]
# ph is the Chrome phase: "X" complete (span), "i" instant (message).
PH_SPAN = "X"
PH_INSTANT = "i"


class Tracer:
    """Per-rank event recorder."""

    def __init__(self, rank: int, max_events: int = DEFAULT_MAX_EVENTS) -> None:
        if max_events < 1:
            raise ValueError(f"max_events must be >= 1, got {max_events}")
        self.rank = rank
        self.max_events = max_events
        self.dropped = 0
        self._events: list[list] = []
        self._tids: dict[int, int] = {}
        self._lock = threading.Lock()

    # -- recording -------------------------------------------------------
    def _append(
        self, ph: str, name: str, cat: str, ts_ns: int, dur_ns: int,
        args: dict | None,
    ) -> None:
        ident = threading.get_ident()
        with self._lock:
            if len(self._events) >= self.max_events:
                self.dropped += 1
                return
            tid = self._tids.setdefault(ident, len(self._tids))
            self._events.append(
                [ph, name, cat, ts_ns, dur_ns, tid, args or {}]
            )

    def complete(
        self, name: str, cat: str, ts_ns: int, dur_ns: int,
        args: dict | None = None,
    ) -> None:
        """Record one finished span (start ``ts_ns``, length ``dur_ns``)."""
        self._append(PH_SPAN, name, cat, ts_ns, max(0, dur_ns), args)

    def instant(self, name: str, cat: str, args: dict | None = None) -> None:
        """Record a point event stamped now."""
        self._append(PH_INSTANT, name, cat, time.time_ns(), 0, args)

    def message(
        self, kind: str, src: int, dst: int, context: int, tag: int,
        nbytes: int,
    ) -> None:
        """Record one message event (kind: send / recv / complete)."""
        self._append(
            PH_INSTANT, kind, "msg", time.time_ns(), 0,
            {"src": src, "dst": dst, "tag": tag, "nbytes": nbytes,
             "context": context},
        )

    @contextmanager
    def span(self, name: str, cat: str = "mpi", **args):
        """Context manager recording the enclosed region as a span."""
        t0 = time.time_ns()
        try:
            yield
        finally:
            self.complete(name, cat, t0, time.time_ns() - t0, args or None)

    # -- export ----------------------------------------------------------
    def events(self) -> list[list]:
        """Consistent copy of the recorded events (JSON-ready lists)."""
        with self._lock:
            return [list(e) for e in self._events]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0


def events_to_jsonl(events: list[list], rank: int) -> str:
    """Compact JSONL rendering: one ``[rank, ph, name, ...]`` per line."""
    import json

    lines = [
        json.dumps([rank] + list(e), separators=(",", ":"))
        for e in events
    ]
    return "\n".join(lines) + ("\n" if lines else "")
