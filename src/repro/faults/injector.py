"""Fault-injecting transport wrapper.

:class:`FaultyTransport` wraps any concrete
:class:`~repro.mpi.transport.base.Transport` at the send boundary and
applies a :class:`~repro.faults.plan.FaultPlan` to the outgoing message
stream.  Faults are decided per send operation from the plan's per-rank
RNG with a fixed number of draws per op, so the schedule is
deterministic for a given (plan, rank, send sequence).

Injected fault taxonomy:

* **drop** — the message is never handed to the inner transport;
* **duplicate** — the message is sent twice back-to-back;
* **truncate** — the payload (and the envelope byte count) is cut short,
  modelling a corrupted/short message;
* **delay / reorder** — the message (and, to preserve per-sender
  non-overtaking, every subsequent message to the same destination) is
  held in a staging queue and released after ``delay_hold`` further send
  ops — reordering it relative to traffic to *other* destinations while
  keeping each destination's stream FIFO;
* **stall** — the sending thread sleeps ``stall_ms`` before the send
  (slow-rank emulation);
* **crash** — at the scheduled op index the rank dies: hard
  ``os._exit`` under process transports, :class:`InjectedCrash` raised
  in the sending thread under the threads transport.

Control-plane frames (heartbeats, goodbyes, revocations),
reliability-protocol ACKs, and ULFM recovery traffic pass through
untouched and consume no RNG draws: their timing is wall-clock driven,
and letting them perturb the decision stream would destroy replay
determinism — and the recovery machinery must not depend on the very
fault-absorption layer it reconfigures.  Reliability-layer
*retransmissions* likewise bypass injection via
:meth:`~repro.mpi.transport.base.Transport.send_unfaulted`.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

from ..mpi.matching import Envelope
from ..mpi.transport.base import Transport, fault_exempt
from .plan import FaultPlan

#: Environment override for the held-message wall-clock backstop, in
#: milliseconds.  Takes precedence over ``FaultPlan.backstop_ms`` so CI
#: can tune slow hosts without editing committed plan files.
ENV_BACKSTOP_MS = "OMBPY_FAULT_BACKSTOP_MS"


class InjectedCrash(RuntimeError):
    """A scheduled rank crash in ``raise`` mode (threads transport)."""

    def __init__(self, rank: int, op: int, exit_code: int) -> None:
        super().__init__(
            f"injected crash of rank {rank} at send op {op}"
        )
        self.rank = rank
        self.op = op
        self.exit_code = exit_code


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, in replay-comparable form."""

    op: int
    kind: str
    source: int
    dest: int
    context: int
    tag: int
    nbytes: int
    detail: str = ""

    def line(self) -> str:
        """Stable one-line rendering (what the event log compares)."""
        text = (
            f"op={self.op:06d} {self.kind} src={self.source} "
            f"dest={self.dest} ctx={self.context:#x} tag={self.tag} "
            f"nbytes={self.nbytes}"
        )
        return f"{text} {self.detail}" if self.detail else text


class _HeldQueue:
    """Per-destination staging queue for delayed/reordered messages."""

    __slots__ = ("release_op", "created", "frames")

    def __init__(self, release_op: int) -> None:
        self.release_op = release_op
        self.created = time.monotonic()
        self.frames: list[tuple[Envelope, bytes]] = []


class FaultyTransport(Transport):
    """Wrap ``inner`` and inject faults per ``plan`` on the send path.

    Held (delayed) messages are normally released by op count, but a
    sender that simply stops sending would otherwise strand its last
    held messages forever — deadlocking the *receiver*, which is a
    hang the chaos layer caused rather than found.  A background reaper
    therefore force-releases any queue held longer than the plan's
    ``backstop_ms`` of wall time (``OMBPY_FAULT_BACKSTOP_MS`` overrides
    it at run time).  Reaper timing is inherently nondeterministic,
    which is why the event log records injection *decisions* only —
    those are a pure function of (plan, rank, op).
    """

    def __init__(
        self,
        inner: Transport,
        plan: FaultPlan,
        log_path: str | None = None,
    ) -> None:
        super().__init__(inner.world_rank, inner.world_size)
        self.inner = inner
        self.plan = plan
        self.max_hold_seconds = self._resolve_backstop(plan)
        self.events: list[FaultEvent] = []
        self._rng = plan.rng_for(inner.world_rank)
        self._crash = plan.crashes(inner.world_rank)
        self._op = 0
        self._held: dict[int, _HeldQueue] = {}
        self._lock = threading.Lock()
        self._log_path = log_path
        self._closed = threading.Event()
        self._reaper: threading.Thread | None = None

    # -- passthrough plumbing ---------------------------------------------
    @staticmethod
    def _resolve_backstop(plan: FaultPlan) -> float:
        raw = os.environ.get(ENV_BACKSTOP_MS)
        if raw is not None:
            value = float(raw)
            if value <= 0:
                raise ValueError(
                    f"{ENV_BACKSTOP_MS} must be > 0 ms, got {raw!r}"
                )
            return value / 1000.0
        return plan.backstop_ms / 1000.0

    def attach(self, engine) -> None:
        self.engine = engine
        self.inner.attach(engine)

    def report_peer_lost(self, peer_world_rank: int, reason: str) -> None:
        # The detector installs itself on the innermost transport.
        self.inner.report_peer_lost(peer_world_rank, reason)

    def send_unfaulted(
        self, dest_world_rank: int, env: Envelope, payload: bytes
    ) -> None:
        # Reliability-layer retransmissions: skip injection *and* the
        # RNG (see Transport.send_unfaulted).
        self.inner.send_unfaulted(dest_world_rank, env, payload)

    @property
    def name(self) -> str:
        return f"faulty({self.inner.name})"

    # -- event log --------------------------------------------------------
    def event_lines(self) -> list[str]:
        """The injected-event log (identical across same-plan replays)."""
        with self._lock:
            return [e.line() for e in self.events]

    def _write_log(self) -> None:
        if self._log_path is None:
            return
        path = f"{self._log_path}.rank{self.world_rank}"
        try:
            with open(path, "w", encoding="utf-8") as fh:
                for event in self.events:
                    fh.write(event.line() + "\n")
        except OSError:
            pass

    # -- send path --------------------------------------------------------
    def send(self, dest_world_rank: int, env: Envelope, payload: bytes) -> None:
        if fault_exempt(env.context):
            # Control plane, reliability ACKs, and ULFM recovery traffic
            # are exempt: no faults, no RNG draws.
            self.inner.send(dest_world_rank, env, payload)
            return

        with self._lock:
            op = self._op
            self._op += 1
            # Fixed draw count per op keeps the decision stream aligned
            # with the op index regardless of which faults fire.
            r = self._rng
            draws = {
                "drop": r.random(),
                "duplicate": r.random(),
                "delay": r.random(),
                "truncate": r.random(),
                "stall": r.random(),
                "fraction": r.random(),
            }
            actions = self._decide(op, dest_world_rank, env, payload, draws)
            # Held-frame releases happen under the lock: a direct send
            # deciding after us cannot start until these are on the wire,
            # so released traffic is never overtaken.
            self._release_due(op)

        # Execute this op's own actions outside the lock: sends may
        # block for flow control and stalls sleep.
        self._execute(op, dest_world_rank, actions)

    def _decide(self, op, dest, env, payload, draws):
        """Choose this op's actions (called under the lock)."""
        plan = self.plan
        if self._crash is not None and op == self._crash.at_op:
            self.events.append(FaultEvent(
                op, "crash", env.source, dest, env.context, env.tag,
                env.nbytes,
                f"mode={self._crash.mode} exit_code={self._crash.exit_code}",
            ))
            return [("crash", env, payload)]

        actions: list[tuple[str, Envelope, bytes]] = []
        if plan.stall > 0 and draws["stall"] < plan.stall:
            self.events.append(FaultEvent(
                op, "stall", env.source, dest, env.context, env.tag,
                env.nbytes, f"ms={plan.stall_ms}",
            ))
            actions.append(("stall", env, payload))

        if plan.drop > 0 and draws["drop"] < plan.drop:
            self.events.append(FaultEvent(
                op, "drop", env.source, dest, env.context, env.tag,
                env.nbytes,
            ))
            return actions  # message vanishes

        if plan.truncate > 0 and draws["truncate"] < plan.truncate \
                and env.nbytes > 0:
            keep = int(env.nbytes * draws["fraction"])
            payload = payload[:keep]
            env = Envelope(env.context, env.source, env.dest, env.tag, keep)
            self.events.append(FaultEvent(
                op, "truncate", env.source, dest, env.context, env.tag,
                env.nbytes, f"kept={keep}",
            ))

        copies = 1
        if plan.duplicate > 0 and draws["duplicate"] < plan.duplicate:
            copies = 2
            self.events.append(FaultEvent(
                op, "duplicate", env.source, dest, env.context, env.tag,
                env.nbytes,
            ))

        held = self._held.get(dest)
        delay_hit = plan.delay > 0 and draws["delay"] < plan.delay
        if held is None and delay_hit:
            held = self._held[dest] = _HeldQueue(op + plan.delay_hold)
            self.events.append(FaultEvent(
                op, "delay", env.source, dest, env.context, env.tag,
                env.nbytes, f"hold={plan.delay_hold}",
            ))
            self._ensure_reaper()
        if held is not None:
            # Per-sender non-overtaking: while a destination has held
            # traffic, everything to it queues behind the held message.
            held.frames.extend([(env, payload)] * copies)
            return actions

        actions.extend([("send", env, payload)] * copies)
        return actions

    def _release_due(self, op: int) -> None:
        """Send held queues whose release point has passed (under lock).

        The queue key is the transport-level destination (``env.dest``
        is communicator-local, so it cannot be used here).  Releases are
        not logged: the wall-clock reaper makes release *timing*
        nondeterministic, and the log must stay a pure function of the
        plan.
        """
        for dest in sorted(self._held):
            queue = self._held[dest]
            if queue.release_op <= op:
                del self._held[dest]
                for denv, dpayload in queue.frames:
                    self.inner.send(dest, denv, dpayload)

    def _ensure_reaper(self) -> None:
        """Start the wall-clock backstop thread (called under lock)."""
        if self._reaper is not None or self._closed.is_set():
            return
        self._reaper = threading.Thread(
            target=self._reap_loop,
            name=f"fault-reaper-r{self.world_rank}", daemon=True,
        )
        self._reaper.start()

    def _reap_loop(self) -> None:
        while not self._closed.wait(self.max_hold_seconds / 4):
            now = time.monotonic()
            with self._lock:
                for dest in sorted(self._held):
                    queue = self._held[dest]
                    if now - queue.created >= self.max_hold_seconds:
                        del self._held[dest]
                        for denv, dpayload in queue.frames:
                            try:
                                self.inner.send(dest, denv, dpayload)
                            except Exception:  # noqa: BLE001
                                break  # peer gone; drop the rest

    def _execute(self, op, dest, actions) -> None:
        for kind, env, payload in actions:
            if kind == "stall":
                time.sleep(self.plan.stall_ms / 1000.0)
            elif kind == "send":
                self.inner.send(dest, env, payload)
            elif kind == "crash":
                self._write_log()
                if self._crash.mode == "raise":
                    raise InjectedCrash(
                        self.world_rank, op, self._crash.exit_code
                    )
                os._exit(self._crash.exit_code)

    def flush(self) -> None:
        """Release every held message immediately (in FIFO order)."""
        with self._lock:
            held, self._held = self._held, {}
            for dest in sorted(held):
                for env, payload in held[dest].frames:
                    self.inner.send(dest, env, payload)

    def close(self) -> None:
        if self._closed.is_set():
            return
        self._closed.set()
        if self._reaper is not None:
            self._reaper.join(timeout=1)
        try:
            self.flush()
        except Exception:  # noqa: BLE001 - peers may already be gone
            pass
        self._write_log()
        self.inner.close()
