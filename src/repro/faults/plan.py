"""Fault plans: seeded, serializable chaos schedules.

A :class:`FaultPlan` is pure data — a seed plus per-fault probabilities
and one optional scheduled crash.  The injector derives every decision
from ``random.Random(f"{seed}:{rank}")`` with a *fixed number of draws
per send operation*, so the injected-event schedule is a deterministic
function of (plan, rank, send sequence): re-running a job with the same
plan reproduces the identical event log.

JSON round-trips via :meth:`FaultPlan.to_json` / :meth:`from_json`::

    {
      "seed": 42,
      "drop": 0.02,
      "duplicate": 0.01,
      "delay": 0.02,
      "delay_hold": 3,
      "truncate": 0.0,
      "stall": 0.0,
      "stall_ms": 1.0,
      "backstop_ms": 500.0,
      "crash": {"rank": 1, "at_op": 40, "exit_code": 7, "mode": "exit"}
    }

``backstop_ms`` caps how long the injector may hold a delayed message
on the wall clock (the anti-deadlock reaper, see
:class:`~repro.faults.injector.FaultyTransport`); the
``OMBPY_FAULT_BACKSTOP_MS`` environment variable overrides it at run
time, so slow CI hosts can stretch it without editing plan files.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, replace

_RATE_FIELDS = ("drop", "duplicate", "delay", "truncate", "stall")

#: Rates used by ``FaultPlan.chaos`` / a bare ``--fault-seed`` run.
#: Deliberately *survivable*: delays and slow-rank stalls perturb timing
#: and ordering but never lose or duplicate a message, so any benchmark
#: still completes with correct results under the default mix.  Message
#: loss (``drop``), duplication, truncation, and crashes violate MPI's
#: delivery guarantees — a workload that needs every message will hang
#: or fail under them, which is the point — so they are explicit
#: opt-ins via a plan file or ``chaos(seed, drop=...)`` overrides.
CHAOS_DEFAULTS = {"drop": 0.0, "duplicate": 0.0, "delay": 0.05,
                  "stall": 0.02, "stall_ms": 2.0}


@dataclass(frozen=True)
class CrashSpec:
    """One scheduled rank crash.

    ``mode`` is ``"exit"`` (hard ``os._exit`` — process transports) or
    ``"raise"`` (raise :class:`~repro.faults.injector.InjectedCrash` in
    the sending thread — the threads transport, where exiting the
    process would take the test harness down with it).
    """

    rank: int
    at_op: int
    exit_code: int = 1
    mode: str = "exit"

    def __post_init__(self) -> None:
        if self.rank < 0 or self.at_op < 0:
            raise ValueError("crash rank and at_op must be >= 0")
        if self.mode not in ("exit", "raise"):
            raise ValueError(f"crash mode must be 'exit' or 'raise', "
                             f"got {self.mode!r}")


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic fault-injection schedule."""

    seed: int = 0
    drop: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_hold: int = 3      # send ops a delayed message is held for
    truncate: float = 0.0
    stall: float = 0.0
    stall_ms: float = 1.0    # slow-rank stall per triggered send
    backstop_ms: float = 500.0  # wall-clock cap on held (delayed) messages
    crash: CrashSpec | None = None

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} rate must be in [0, 1], got {rate}")
        if self.delay_hold < 1:
            raise ValueError("delay_hold must be >= 1")
        if self.stall_ms < 0:
            raise ValueError("stall_ms must be >= 0")
        if self.backstop_ms <= 0:
            raise ValueError("backstop_ms must be > 0")

    # -- construction -----------------------------------------------------
    @classmethod
    def chaos(cls, seed: int, **overrides) -> "FaultPlan":
        """The default survivable chaos mix (delays + stalls) for a seed.

        Destructive faults are opt-in: ``chaos(seed, drop=0.02)``.
        """
        kwargs = dict(CHAOS_DEFAULTS)
        kwargs.update(overrides)
        return cls(seed=seed, **kwargs)

    def with_(self, **kw) -> "FaultPlan":
        """Functional update."""
        return replace(self, **kw)

    # -- (de)serialization ------------------------------------------------
    def to_json(self) -> str:
        data = asdict(self)
        if self.crash is None:
            del data["crash"]
        return json.dumps(data, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError("fault plan must be a JSON object")
        crash = data.pop("crash", None)
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(
                f"unknown fault-plan field(s): {sorted(unknown)}"
            )
        plan = cls(**data)
        if crash is not None:
            plan = replace(plan, crash=CrashSpec(**crash))
        return plan

    @classmethod
    def from_file(cls, path: str) -> "FaultPlan":
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(fh.read())

    def to_file(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    # -- determinism ------------------------------------------------------
    def rng_for(self, world_rank: int) -> random.Random:
        """The per-rank decision stream: seeded by (plan seed, rank)."""
        return random.Random(f"{self.seed}:{world_rank}")

    def crashes(self, world_rank: int) -> CrashSpec | None:
        """This rank's scheduled crash, if any."""
        if self.crash is not None and self.crash.rank == world_rank:
            return self.crash
        return None

    @property
    def active(self) -> bool:
        """Whether the plan injects anything at all."""
        return self.crash is not None or any(
            getattr(self, f) > 0 for f in _RATE_FIELDS
        )
