"""``repro.faults`` — deterministic fault injection for the MPI runtime.

Chaos engineering for the transport layer: a :class:`FaultPlan` (a seed
plus per-fault rates, serializable to JSON) drives a
:class:`FaultyTransport` wrapper that injects message drop, delay,
duplication, reordering, payload truncation, slow-rank stalls, and rank
crashes at deterministic points in the send stream.  Every injected
event is recorded in an event log, so any failure a chaos run uncovers
reproduces exactly from its seed.

Wire a plan into a run with ``ombpy-run --faults plan.json`` /
``--fault-seed N`` (process transports) or
``run_on_threads(..., fault_plan=plan)`` (threads transport).
See ``docs/resilience.md`` for the fault taxonomy and JSON schema.
"""

from .injector import (
    ENV_BACKSTOP_MS, FaultEvent, FaultyTransport, InjectedCrash,
)
from .plan import CrashSpec, FaultPlan

__all__ = [
    "CrashSpec",
    "ENV_BACKSTOP_MS",
    "FaultEvent",
    "FaultPlan",
    "FaultyTransport",
    "InjectedCrash",
]
