"""Numba-CUDA-workalike library on the simulated device.

Mirrors ``numba.cuda``: ``to_device``/``device_array`` constructors and a
``DeviceNDArray`` with ``copy_to_host``/``copy_to_device``.

Unlike the CuPy/PyCUDA simulations, the CAI export here is **deliberately
layered**: each access walks a descriptor chain, re-derives strides,
revalidates dimensions, and rebuilds the dict — the same work real Numba's
``DeviceNDArray.__cuda_array_interface__`` performs per access.  That
per-access Python cost is exactly why the paper measures roughly twice the
communication-latency overhead for Numba buffers versus CuPy/PyCUDA.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from . import _backing
from .cai import CAI_VERSION
from .device import current_device

_LIBRARY = "numba"


class _MemoryPointer:
    """Descriptor layer 1: owns the device pointer (numba's MemoryPointer)."""

    def __init__(self, ptr: int, size: int) -> None:
        self.device_pointer = ptr
        self.size = size

    @property
    def device_ctypes_pointer(self) -> int:
        return self.device_pointer


class _DummyArrayDescriptor:
    """Descriptor layer 2: dimension bookkeeping (numba's Dim machinery)."""

    def __init__(self, shape: tuple[int, ...], itemsize: int) -> None:
        self.shape = shape
        self.itemsize = itemsize

    def compute_strides(self) -> tuple[int, ...]:
        strides = []
        acc = self.itemsize
        for dim in reversed(self.shape):
            strides.append(acc)
            acc *= dim
        return tuple(reversed(strides))

    def is_c_contiguous(self, strides: tuple[int, ...]) -> bool:
        return strides == self.compute_strides()

    def validate(self) -> None:
        for dim in self.shape:
            if dim < 0:
                raise ValueError(f"negative dimension {dim}")


class DeviceNDArray:
    """A device array in the style of ``numba.cuda.cudadrv.DeviceNDArray``."""

    def __init__(self, shape, dtype: Any = np.float64, strides=None):
        if isinstance(shape, int):
            shape = (shape,)
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self._alloc, self._view = _backing.alloc_typed(self.shape, self.dtype)
        self._descriptor = _DummyArrayDescriptor(
            self.shape, self.dtype.itemsize
        )
        self.gpu_data = _MemoryPointer(self._alloc.ptr, self.nbytes)
        self.strides = strides or self._descriptor.compute_strides()

    @property
    def size(self) -> int:
        return math.prod(self.shape) if self.shape else 1

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def __cuda_array_interface__(self) -> dict:
        # Rebuilt and revalidated on every access, as in real Numba.
        current_device().account_access(_LIBRARY)
        self._descriptor.validate()
        strides = self._descriptor.compute_strides()
        if not self._descriptor.is_c_contiguous(strides):
            raise ValueError("only C-contiguous device arrays are supported")
        ptr = self.gpu_data.device_ctypes_pointer
        typestr = _backing.typestr_of(self.dtype)
        return {
            "shape": tuple(self.shape),
            "strides": None if self._contiguous(strides) else strides,
            "typestr": typestr,
            "data": (int(ptr), False),
            "version": CAI_VERSION,
            "descr": [("", typestr)],
        }

    def _contiguous(self, strides: tuple[int, ...]) -> bool:
        return self._descriptor.is_c_contiguous(strides)

    # -- host transfers ----------------------------------------------------
    def copy_to_host(self, ary: np.ndarray | None = None) -> np.ndarray:
        """Device -> host (numba's copy_to_host)."""
        host = _backing.copy_out(self._alloc, self._view)
        if ary is not None:
            ary[...] = host
            return ary
        return host

    def copy_to_device(self, ary: np.ndarray | "DeviceNDArray") -> None:
        """Host-or-device -> this device array."""
        if isinstance(ary, DeviceNDArray):
            current_device().memcpy_dtod(self._alloc, ary._alloc, self.nbytes)
        else:
            _backing.copy_in(self._alloc, self._view, ary)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"numba_sim.DeviceNDArray(shape={self.shape}, dtype={self.dtype})"
        )


class _CudaModule:
    """The ``numba.cuda`` namespace subset."""

    DeviceNDArray = DeviceNDArray

    @staticmethod
    def to_device(host: np.ndarray) -> DeviceNDArray:
        host = np.ascontiguousarray(host)
        out = DeviceNDArray(host.shape, host.dtype)
        out.copy_to_device(host)
        return out

    @staticmethod
    def device_array(shape, dtype=np.float64) -> DeviceNDArray:
        return DeviceNDArray(shape, dtype)

    @staticmethod
    def device_array_like(ary) -> DeviceNDArray:
        return DeviceNDArray(ary.shape, ary.dtype)

    @staticmethod
    def synchronize() -> None:
        current_device().note_sync()

    @staticmethod
    def is_cuda_array(obj: Any) -> bool:
        return hasattr(obj, "__cuda_array_interface__")


cuda = _CudaModule()
