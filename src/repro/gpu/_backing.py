"""Shared backing-store helpers for the simulated GPU array libraries.

Each library wraps one device :class:`~repro.gpu.device.Allocation` and a
typed NumPy view of it.  Arithmetic executes eagerly on the view while the
device accounts a kernel launch — functional behaviour plus realistic
bookkeeping, without pretending to model kernel *performance* (the paper's
benchmarks only move buffers; they never time kernels).
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from .device import Allocation, Device, current_device


def typestr_of(dtype: np.dtype) -> str:
    """NumPy dtype -> CAI typestr (little-endian form, e.g. '<f8')."""
    return dtype.newbyteorder("<").str


def alloc_typed(
    shape: tuple[int, ...], dtype: np.dtype, device: Device | None = None
) -> tuple[Allocation, np.ndarray]:
    """Allocate device memory for ``shape``/``dtype``; return typed view."""
    dev = device or current_device()
    dtype = np.dtype(dtype)
    count = math.prod(shape) if shape else 1
    alloc = dev.malloc(count * dtype.itemsize)
    view = alloc.backing[: count * dtype.itemsize].view(dtype).reshape(shape)
    return alloc, view


def copy_in(
    alloc: Allocation,
    view: np.ndarray,
    host: np.ndarray,
    device: Device | None = None,
) -> None:
    """Host array -> device allocation (accounted as one H2D DMA)."""
    dev = device or current_device()
    host = np.ascontiguousarray(host, dtype=view.dtype)
    if host.shape != view.shape:
        raise ValueError(
            f"shape mismatch copying to device: {host.shape} != {view.shape}"
        )
    dev.memcpy_htod(alloc, host.tobytes())


def copy_out(
    alloc: Allocation,
    view: np.ndarray,
    device: Device | None = None,
) -> np.ndarray:
    """Device allocation -> new host array (accounted as one D2H DMA)."""
    dev = device or current_device()
    out = bytearray(view.nbytes)
    dev.memcpy_dtoh(out, alloc, view.nbytes)
    return np.frombuffer(bytes(out), dtype=view.dtype).reshape(view.shape).copy()


def coerce_operand(other: Any, like: np.ndarray) -> np.ndarray | float:
    """Pull a host value out of a scalar / ndarray / device-array operand."""
    if hasattr(other, "_view"):  # any of our simulated device arrays
        return other._view
    if isinstance(other, (int, float, complex, np.ndarray)):
        return other
    raise TypeError(
        f"unsupported operand type for device arithmetic: {type(other)}"
    )
