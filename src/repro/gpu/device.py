"""Simulated CUDA device.

Device memory is modelled as a table of NumPy-backed allocations keyed by
fake device pointers.  The device tracks DMA traffic (host-to-device,
device-to-host, device-to-device byte counts and call counts), supports
streams with synchronization semantics, and can inject a calibrated
per-access host overhead per client library — the knob that models why
communicating Numba buffers costs more than CuPy/PyCUDA buffers.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

import numpy as np


class DeviceError(RuntimeError):
    """Invalid device operation (bad pointer, out-of-bounds copy, ...)."""


@dataclass
class TransferStats:
    """Cumulative DMA accounting for one device."""

    h2d_bytes: int = 0
    d2h_bytes: int = 0
    d2d_bytes: int = 0
    h2d_calls: int = 0
    d2h_calls: int = 0
    d2d_calls: int = 0
    kernel_launches: int = 0

    def reset(self) -> None:
        self.h2d_bytes = self.d2h_bytes = self.d2d_bytes = 0
        self.h2d_calls = self.d2h_calls = self.d2d_calls = 0
        self.kernel_launches = 0


@dataclass
class Allocation:
    """One device allocation: fake pointer + NumPy backing store."""

    ptr: int
    backing: np.ndarray  # always a flat uint8 view of the allocation
    nbytes: int
    freed: bool = False


def _spin(seconds: float) -> None:
    """Busy-wait with sub-millisecond resolution (sleep() is too coarse)."""
    if seconds <= 0:
        return
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        pass


class Stream:
    """A CUDA stream.  Work is executed eagerly, so synchronize() only
    verifies the stream is still valid — but user code must still call it
    before MPI operations, matching the real CUDA-aware-MPI contract."""

    _ids = itertools.count(1)

    def __init__(self, device: "Device") -> None:
        self.device = device
        self.id = next(self._ids)
        self.destroyed = False

    def synchronize(self) -> None:
        if self.destroyed:
            raise DeviceError("synchronize on destroyed stream")
        self.device.note_sync()


class Device:
    """One simulated GPU."""

    # Fake device pointers start high so they never collide with ids used
    # elsewhere; spacing leaves room to detect interior pointers.
    _PTR_BASE = 0xDEAD_0000_0000

    def __init__(self, device_id: int = 0, memory_bytes: int = 32 << 30) -> None:
        self.device_id = device_id
        self.memory_bytes = memory_bytes  # V100 in the paper: 32 GB
        self.stats = TransferStats()
        self._allocations: dict[int, Allocation] = {}
        self._next_ptr = itertools.count(self._PTR_BASE, 256)
        self._allocated = 0
        self._lock = threading.RLock()
        self._sync_count = 0
        self.default_stream = Stream(self)
        # Per-library host-access overhead in seconds, injected on each
        # buffer export (see repro.gpu.cai).  Zero by default: live tests
        # measure real Python-path costs; benchmarks may calibrate these.
        self._access_overhead: dict[str, float] = {}

    # -- memory management -------------------------------------------------
    def malloc(self, nbytes: int) -> Allocation:
        """Allocate ``nbytes`` of device memory."""
        if nbytes < 0:
            raise DeviceError(f"negative allocation size {nbytes}")
        with self._lock:
            if self._allocated + nbytes > self.memory_bytes:
                raise DeviceError(
                    f"out of device memory: {self._allocated + nbytes} > "
                    f"{self.memory_bytes}"
                )
            ptr = next(self._next_ptr)
            alloc = Allocation(ptr, np.zeros(nbytes, dtype=np.uint8), nbytes)
            self._allocations[ptr] = alloc
            self._allocated += nbytes
            return alloc

    def free(self, ptr: int) -> None:
        """Free a device allocation."""
        with self._lock:
            alloc = self._allocations.pop(ptr, None)
            if alloc is None or alloc.freed:
                raise DeviceError(f"free of unknown device pointer {ptr:#x}")
            alloc.freed = True
            self._allocated -= alloc.nbytes

    def resolve(self, ptr: int) -> Allocation:
        """Look up the allocation containing ``ptr`` (base pointers only)."""
        with self._lock:
            alloc = self._allocations.get(ptr)
            if alloc is None or alloc.freed:
                raise DeviceError(
                    f"device pointer {ptr:#x} does not name a live allocation"
                )
            return alloc

    def allocated_bytes(self) -> int:
        with self._lock:
            return self._allocated

    def live_allocations(self) -> int:
        with self._lock:
            return len(self._allocations)

    # -- transfers ----------------------------------------------------------
    def memcpy_htod(self, dst: Allocation, src: bytes | memoryview,
                    offset: int = 0) -> None:
        """Host-to-device copy."""
        data = np.frombuffer(src, dtype=np.uint8)
        if offset + data.nbytes > dst.nbytes:
            raise DeviceError(
                f"h2d copy of {data.nbytes} bytes at offset {offset} "
                f"overruns allocation of {dst.nbytes}"
            )
        dst.backing[offset:offset + data.nbytes] = data
        with self._lock:
            self.stats.h2d_bytes += data.nbytes
            self.stats.h2d_calls += 1

    def memcpy_dtoh(self, dst: bytearray | memoryview, src: Allocation,
                    nbytes: int, offset: int = 0) -> None:
        """Device-to-host copy."""
        if offset + nbytes > src.nbytes:
            raise DeviceError(
                f"d2h copy of {nbytes} bytes at offset {offset} overruns "
                f"allocation of {src.nbytes}"
            )
        view = memoryview(dst).cast("B")
        view[:nbytes] = src.backing[offset:offset + nbytes].tobytes()
        with self._lock:
            self.stats.d2h_bytes += nbytes
            self.stats.d2h_calls += 1

    def memcpy_dtod(self, dst: Allocation, src: Allocation, nbytes: int) -> None:
        """Device-to-device copy."""
        if nbytes > dst.nbytes or nbytes > src.nbytes:
            raise DeviceError("d2d copy overruns an allocation")
        dst.backing[:nbytes] = src.backing[:nbytes]
        with self._lock:
            self.stats.d2d_bytes += nbytes
            self.stats.d2d_calls += 1

    # -- kernels / sync -------------------------------------------------------
    def launch_kernel(self) -> None:
        """Account one simulated kernel launch."""
        with self._lock:
            self.stats.kernel_launches += 1

    def note_sync(self) -> None:
        with self._lock:
            self._sync_count += 1

    @property
    def sync_count(self) -> int:
        return self._sync_count

    # -- overhead injection ----------------------------------------------------
    def set_access_overhead(self, library: str, seconds: float) -> None:
        """Set the per-export host overhead charged to ``library``."""
        if seconds < 0:
            raise DeviceError("negative access overhead")
        self._access_overhead[library] = seconds

    def account_access(self, library: str) -> None:
        """Charge one buffer-export access for ``library`` (may busy-wait)."""
        _spin(self._access_overhead.get(library, 0.0))


# The process-wide device, mirroring CUDA's "current device" notion.
_current = Device(0)
_current_lock = threading.Lock()


def current_device() -> Device:
    """Return the process-wide simulated device."""
    return _current


def reset_device(memory_bytes: int = 32 << 30) -> Device:
    """Replace the process-wide device (test isolation helper)."""
    global _current
    with _current_lock:
        _current = Device(0, memory_bytes)
    return _current
