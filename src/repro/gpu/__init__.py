"""``repro.gpu`` — a simulated CUDA device and GPU array libraries.

The paper's GPU benchmarks communicate CuPy, PyCUDA, and Numba device
arrays through CUDA-aware MPI.  This environment has no GPU, so this
package provides:

* :mod:`repro.gpu.device` — a software device: an address space of
  "device" allocations (NumPy-backed), streams, DMA transfer accounting,
  and per-library host-access overhead injection;
* :mod:`repro.gpu.cai` — the CUDA Array Interface (CAI) protocol: building
  ``__cuda_array_interface__`` dicts and resolving them back to device
  memory, exactly the handshake mpi4py uses to accept GPU buffers;
* :mod:`repro.gpu.cupy_sim`, :mod:`repro.gpu.pycuda_sim`,
  :mod:`repro.gpu.numba_sim` — three array libraries with the respective
  upstream APIs.  The Numba simulation routes every buffer export through
  the same descriptor-validation layers that make real Numba's CAI path
  measurably slower than CuPy/PyCUDA — the ordering the paper reports.
"""

from . import cai, cupy_sim, device, numba_sim, pycuda_sim

__all__ = ["cai", "cupy_sim", "device", "numba_sim", "pycuda_sim"]
