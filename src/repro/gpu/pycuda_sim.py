"""PyCUDA-workalike library on the simulated device.

Mirrors the ``pycuda.gpuarray`` / ``pycuda.driver`` split: ``GPUArray``
with ``get``/``set``/``gpudata``, module helpers ``to_gpu``/``zeros``/
``empty``, and explicit driver-level ``memcpy_htod``/``memcpy_dtoh``.
Like CuPy (and unlike Numba), the CAI export is a cached, constant-cost
property — matching the paper's finding that CuPy and PyCUDA buffers
perform nearly identically.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from . import _backing
from .cai import make_cai
from .device import current_device

_LIBRARY = "pycuda"


class GPUArray:
    """A device array in the style of ``pycuda.gpuarray.GPUArray``."""

    def __init__(self, shape: tuple[int, ...] | int, dtype: Any = np.float64):
        if isinstance(shape, int):
            shape = (shape,)
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self._alloc, self._view = _backing.alloc_typed(self.shape, self.dtype)
        self._cai = make_cai(
            self._alloc.ptr, self.shape, _backing.typestr_of(self.dtype)
        )

    @property
    def __cuda_array_interface__(self) -> dict:
        current_device().account_access(_LIBRARY)
        return self._cai

    @property
    def gpudata(self) -> int:
        """The raw device pointer (pycuda exposes the DeviceAllocation)."""
        return self._alloc.ptr

    @property
    def size(self) -> int:
        return math.prod(self.shape) if self.shape else 1

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    def get(self) -> np.ndarray:
        """Device -> host copy."""
        return _backing.copy_out(self._alloc, self._view)

    def set(self, host: np.ndarray) -> None:
        """Host -> device copy."""
        _backing.copy_in(self._alloc, self._view, host)

    def fill(self, value) -> "GPUArray":
        current_device().launch_kernel()
        self._view.fill(value)
        return self

    def _binary(self, other: Any, fn) -> "GPUArray":
        current_device().launch_kernel()
        result = fn(self._view, _backing.coerce_operand(other, self._view))
        out = GPUArray(result.shape, result.dtype)
        out._view[...] = result
        return out

    def __add__(self, other): return self._binary(other, np.add)
    def __sub__(self, other): return self._binary(other, np.subtract)
    def __mul__(self, other): return self._binary(other, np.multiply)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"pycuda_sim.GPUArray(shape={self.shape}, dtype={self.dtype})"


class _GpuArrayModule:
    """The ``pycuda.gpuarray`` namespace subset."""

    GPUArray = GPUArray

    @staticmethod
    def to_gpu(host: np.ndarray) -> GPUArray:
        host = np.ascontiguousarray(host)
        out = GPUArray(host.shape, host.dtype)
        out.set(host)
        return out

    @staticmethod
    def empty(shape, dtype=np.float64) -> GPUArray:
        return GPUArray(shape, dtype)

    @staticmethod
    def zeros(shape, dtype=np.float64) -> GPUArray:
        out = GPUArray(shape, dtype)
        out._view.fill(0)
        return out


class _DriverModule:
    """The ``pycuda.driver`` namespace subset."""

    @staticmethod
    def memcpy_htod(dest: GPUArray | int, src: np.ndarray) -> None:
        """Explicit host-to-device copy (accepts array or raw pointer)."""
        dev = current_device()
        if isinstance(dest, GPUArray):
            alloc = dest._alloc
        else:
            alloc = dev.resolve(dest)
        dev.memcpy_htod(alloc, np.ascontiguousarray(src).tobytes())

    @staticmethod
    def memcpy_dtoh(dest: np.ndarray, src: GPUArray | int) -> None:
        """Explicit device-to-host copy."""
        dev = current_device()
        if isinstance(src, GPUArray):
            alloc, nbytes = src._alloc, src.nbytes
        else:
            alloc = dev.resolve(src)
            nbytes = dest.nbytes
        buf = bytearray(nbytes)
        dev.memcpy_dtoh(buf, alloc, nbytes)
        flat = np.frombuffer(bytes(buf), dtype=dest.dtype)
        dest[...] = flat.reshape(dest.shape)


gpuarray = _GpuArrayModule()
driver = _DriverModule()
