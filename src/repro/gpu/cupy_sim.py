"""CuPy-workalike array library on the simulated device.

Implements the subset of the ``cupy`` API that the paper's benchmarks (and
mpi4py's GPU tutorial) use: ``zeros/ones/empty/arange/array/asnumpy``, the
``ndarray`` type with ``get``/``set``/``fill`` and elementwise arithmetic,
and ``cuda.get_current_stream()``.  Buffer export via the CUDA Array
Interface is a thin property — one dict build per access — which is why
CuPy sits at the fast end of the paper's GPU-buffer comparison.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from . import _backing
from .cai import make_cai
from .device import Stream, current_device

_LIBRARY = "cupy"


class ndarray:
    """A device-resident n-dimensional array (CuPy-style API)."""

    def __init__(self, shape: tuple[int, ...] | int, dtype: Any = np.float64):
        if isinstance(shape, int):
            shape = (shape,)
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self._alloc, self._view = _backing.alloc_typed(self.shape, self.dtype)
        # Cache the CAI dict: CuPy's export path is effectively constant-time.
        self._cai = make_cai(
            self._alloc.ptr, self.shape, _backing.typestr_of(self.dtype)
        )

    # -- CAI export --------------------------------------------------------
    @property
    def __cuda_array_interface__(self) -> dict:
        current_device().account_access(_LIBRARY)
        return self._cai

    # -- shape/size ----------------------------------------------------------
    @property
    def size(self) -> int:
        return math.prod(self.shape) if self.shape else 1

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    @property
    def ndim(self) -> int:
        return len(self.shape)

    # -- host transfers --------------------------------------------------------
    def get(self) -> np.ndarray:
        """Device -> host copy (cupy.ndarray.get)."""
        return _backing.copy_out(self._alloc, self._view)

    def set(self, host: np.ndarray) -> None:
        """Host -> device copy (cupy.ndarray.set)."""
        _backing.copy_in(self._alloc, self._view, host)

    def fill(self, value) -> None:
        current_device().launch_kernel()
        self._view.fill(value)

    # -- arithmetic (eager "kernels") -----------------------------------------
    def _binary(self, other: Any, fn) -> "ndarray":
        current_device().launch_kernel()
        result = fn(self._view, _backing.coerce_operand(other, self._view))
        out = ndarray(result.shape, result.dtype)
        out._view[...] = result
        return out

    def __add__(self, other): return self._binary(other, np.add)
    def __radd__(self, other): return self._binary(other, np.add)
    def __sub__(self, other): return self._binary(other, np.subtract)
    def __mul__(self, other): return self._binary(other, np.multiply)
    def __rmul__(self, other): return self._binary(other, np.multiply)
    def __truediv__(self, other): return self._binary(other, np.divide)

    def __matmul__(self, other) -> "ndarray":
        current_device().launch_kernel()
        result = self._view @ _backing.coerce_operand(other, self._view)
        out = ndarray(result.shape, result.dtype)
        out._view[...] = result
        return out

    def sum(self):
        current_device().launch_kernel()
        return float(self._view.sum())

    def astype(self, dtype) -> "ndarray":
        current_device().launch_kernel()
        out = ndarray(self.shape, dtype)
        out._view[...] = self._view.astype(dtype)
        return out

    def reshape(self, *shape) -> "ndarray":
        if len(shape) == 1 and isinstance(shape[0], tuple):
            shape = shape[0]
        out = ndarray(shape, self.dtype)
        out._view[...] = self._view.reshape(shape)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"cupy_sim.ndarray(shape={self.shape}, dtype={self.dtype})"


# -- module-level constructors (cupy API surface) ---------------------------
def empty(shape, dtype=np.float64) -> ndarray:
    """Uninitialized device array (contents are zeroed in simulation)."""
    return ndarray(shape, dtype)


def zeros(shape, dtype=np.float64) -> ndarray:
    out = ndarray(shape, dtype)
    out._view.fill(0)
    return out


def ones(shape, dtype=np.float64) -> ndarray:
    out = ndarray(shape, dtype)
    out._view.fill(1)
    return out


def arange(n, dtype=None) -> ndarray:
    host = np.arange(n, dtype=dtype)
    out = ndarray(host.shape, host.dtype)
    out.set(host)
    return out


def array(obj, dtype=None) -> ndarray:
    host = np.array(obj, dtype=dtype)
    out = ndarray(host.shape, host.dtype)
    out.set(host)
    return out


def asarray(obj, dtype=None) -> ndarray:
    if isinstance(obj, ndarray) and dtype is None:
        return obj
    return array(obj.get() if isinstance(obj, ndarray) else obj, dtype)


def asnumpy(arr: ndarray) -> np.ndarray:
    """Device array -> host NumPy array (cupy.asnumpy)."""
    return arr.get()


def allclose(a, b, **kw) -> bool:
    a_host = a.get() if isinstance(a, ndarray) else a
    b_host = b.get() if isinstance(b, ndarray) else b
    return bool(np.allclose(a_host, b_host, **kw))


class _Cuda:
    """The ``cupy.cuda`` namespace subset."""

    Stream = Stream

    @staticmethod
    def get_current_stream() -> Stream:
        return current_device().default_stream


cuda = _Cuda()
