"""CUDA Array Interface (CAI) protocol.

The CAI is the contract that lets mpi4py accept device arrays from any GPU
library: the object exposes a ``__cuda_array_interface__`` dict with the
device pointer, shape, and typestr.  This module builds such dicts for the
simulated libraries and resolves them back to device memory — the exact
code path a CUDA-aware binding layer runs when handed a GPU buffer.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from .device import Allocation, Device, current_device

CAI_VERSION = 3


class CAIError(TypeError):
    """Malformed or unsupported ``__cuda_array_interface__`` contents."""


def make_cai(
    ptr: int,
    shape: tuple[int, ...],
    typestr: str,
    read_only: bool = False,
    stream: int | None = None,
) -> dict[str, Any]:
    """Build a version-3 CAI dict for a C-contiguous device array."""
    cai: dict[str, Any] = {
        "shape": tuple(int(s) for s in shape),
        "typestr": typestr,
        "data": (int(ptr), bool(read_only)),
        "version": CAI_VERSION,
        "strides": None,  # None means C-contiguous
        "descr": [("", typestr)],
    }
    if stream is not None:
        cai["stream"] = stream
    return cai


def is_device_array(obj: Any) -> bool:
    """Return True if ``obj`` exposes a CUDA array interface."""
    return hasattr(obj, "__cuda_array_interface__")


def _validate(cai: dict[str, Any]) -> None:
    for key in ("shape", "typestr", "data", "version"):
        if key not in cai:
            raise CAIError(f"CAI dict missing required key {key!r}")
    if not isinstance(cai["shape"], tuple):
        raise CAIError("CAI shape must be a tuple")
    data = cai["data"]
    if not (isinstance(data, tuple) and len(data) == 2):
        raise CAIError("CAI data must be a (pointer, read_only) pair")
    strides = cai.get("strides")
    if strides is not None:
        # Only contiguous layouts are supported, same restriction as
        # mpi4py's GPU buffer support.
        shape = cai["shape"]
        itemsize = np.dtype(cai["typestr"]).itemsize
        expect = []
        acc = itemsize
        for dim in reversed(shape):
            expect.append(acc)
            acc *= dim
        if tuple(strides) != tuple(reversed(expect)):
            raise CAIError(
                "only C-contiguous device arrays are supported "
                f"(strides={strides}, shape={shape})"
            )


def resolve_cai(
    obj: Any, device: Device | None = None
) -> tuple[Allocation, int, np.dtype, tuple[int, ...]]:
    """Resolve a CAI object to (allocation, nbytes, dtype, shape).

    Raises :class:`CAIError` on protocol violations — unknown pointer,
    non-contiguous layout, or a malformed dict.
    """
    if not is_device_array(obj):
        raise CAIError(f"{type(obj).__name__} has no __cuda_array_interface__")
    cai = obj.__cuda_array_interface__
    _validate(cai)
    dev = device or current_device()
    ptr, _read_only = cai["data"]
    alloc = dev.resolve(ptr)
    dtype = np.dtype(cai["typestr"])
    shape = cai["shape"]
    nbytes = dtype.itemsize * math.prod(shape) if shape else dtype.itemsize
    if nbytes > alloc.nbytes:
        raise CAIError(
            f"CAI claims {nbytes} bytes but allocation holds {alloc.nbytes}"
        )
    return alloc, nbytes, dtype, shape


def device_bytes(obj: Any, device: Device | None = None) -> memoryview:
    """Return a host view of a device array's bytes (staging read).

    Charges a device-to-host style access; used by the bindings layer to
    feed device buffers into the wire path.
    """
    alloc, nbytes, _dtype, _shape = resolve_cai(obj, device)
    return memoryview(alloc.backing[:nbytes])
