"""Pickle serialization for the lower-case communication methods.

mpi4py communicates generic Python objects by pickling on the sender and
unpickling on the receiver; the protocol version is configurable via the
``MPI4PY_PICKLE_PROTOCOL`` environment variable.  This codec reproduces
that behaviour (under ``OMBPY_PICKLE_PROTOCOL``) and counts bytes/calls so
benchmarks can report serialization overhead directly.
"""

from __future__ import annotations

import os
import pickle
import threading
from typing import Any


class PickleCodec:
    """Stateful pickle codec with byte/call accounting."""

    def __init__(self, protocol: int | None = None) -> None:
        if protocol is None:
            env = os.environ.get("OMBPY_PICKLE_PROTOCOL")
            protocol = int(env) if env else pickle.HIGHEST_PROTOCOL
        if not 0 <= protocol <= pickle.HIGHEST_PROTOCOL:
            raise ValueError(
                f"pickle protocol {protocol} outside "
                f"[0, {pickle.HIGHEST_PROTOCOL}]"
            )
        self.protocol = protocol
        self._lock = threading.Lock()
        self.dumps_calls = 0
        self.loads_calls = 0
        self.bytes_out = 0
        self.bytes_in = 0

    def dumps(self, obj: Any) -> bytes:
        """Serialize ``obj``; accounts the wire size."""
        data = pickle.dumps(obj, self.protocol)
        with self._lock:
            self.dumps_calls += 1
            self.bytes_out += len(data)
        return data

    def loads(self, data: bytes) -> Any:
        """Deserialize wire bytes produced by :meth:`dumps`."""
        obj = pickle.loads(data)
        with self._lock:
            self.loads_calls += 1
            self.bytes_in += len(data)
        return obj

    def overhead_bytes(self, payload_nbytes: int, obj: Any) -> int:
        """Pickle-framing overhead for an object with a known payload size."""
        return len(self.dumps(obj)) - payload_nbytes

    def reset_stats(self) -> None:
        with self._lock:
            self.dumps_calls = self.loads_calls = 0
            self.bytes_out = self.bytes_in = 0
