"""``repro.bindings`` — an mpi4py-workalike Python binding layer.

This package plays the role mpi4py plays in the paper: it sits between
Python user code and the MPI runtime (:mod:`repro.mpi`) and provides the
two API families the paper benchmarks against each other:

* **lower-case methods** (``send``, ``recv``, ``bcast`` ...) communicate
  arbitrary Python objects by pickling them — convenient but with a
  serialization cost that the paper's Figs. 32-35 measure;
* **upper-case methods** (``Send``, ``Recv``, ``Bcast`` ...) communicate
  buffer-provider objects (bytearray, NumPy arrays, CUDA-array-interface
  device arrays) with near-zero-copy semantics.

Like mpi4py, initialization defaults to ``THREAD_MULTIPLE`` — the detail
behind the paper's Allreduce full-subscription anomaly (Figs. 16-17).
"""

from .buffers import BufferSpec, resolve_buffer
from .comm_api import Comm, CommWorld, init
from .pickle_codec import PickleCodec

__all__ = [
    "BufferSpec",
    "Comm",
    "CommWorld",
    "PickleCodec",
    "init",
    "resolve_buffer",
]
