"""Buffer resolution for the upper-case (direct-buffer) methods.

mpi4py accepts, as a communication buffer: any object exporting the Python
buffer protocol (bytearray, memoryview, NumPy arrays with automatic MPI
datatype discovery), an explicit ``[buffer, datatype]`` or ``[buffer,
count, datatype]`` spec, or — when built CUDA-aware — any object exposing
``__cuda_array_interface__``.  This module performs that dispatch and
returns a uniform :class:`BufferSpec` the communication methods act on.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..mpi import datatypes
from ..mpi.datatypes import Datatype
from ..mpi.exceptions import BufferError_, CountError


@dataclass
class BufferSpec:
    """A resolved communication buffer.

    Attributes
    ----------
    obj:
        The user object (kept for device write-back bookkeeping).
    view:
        Host byte view of the data.  For device arrays this aliases the
        simulated device memory — matching GPUDirect semantics where the
        NIC reads/writes device memory without host staging.
    nbytes:
        Bytes to communicate.
    datatype:
        The MPI datatype (discovered or explicit).
    kind:
        ``"host"`` or ``"device"``.
    library:
        Source library for device buffers (``cupy``/``pycuda``/``numba``).
    """

    obj: Any
    view: memoryview
    nbytes: int
    datatype: Datatype
    kind: str = "host"
    library: str | None = None

    @property
    def count(self) -> int:
        return self.nbytes // self.datatype.size

    def as_array(self) -> np.ndarray:
        """Typed NumPy view of the buffer (used by reductions)."""
        return np.frombuffer(self.view, dtype=self.datatype.to_numpy())

    def write(self, payload: bytes, offset: int = 0) -> None:
        """Copy received bytes into the buffer at a byte offset."""
        n = len(payload)
        if offset + n > self.nbytes:
            raise BufferError_(
                f"writing {n} bytes at offset {offset} overruns buffer of "
                f"{self.nbytes} bytes"
            )
        self.view[offset:offset + n] = payload

    def read(self) -> bytes:
        """Snapshot the buffer contents as wire bytes."""
        return bytes(self.view[:self.nbytes])

    def addr_range(self) -> tuple[int, int]:
        """Host address interval ``[lo, hi)`` of the communicated bytes.

        Used by the race sanitizer to detect overlapping pinned regions;
        empty buffers get the empty interval ``(0, 0)``.
        """
        if self.nbytes == 0:
            return (0, 0)
        base = int(
            np.frombuffer(self.view, dtype=np.uint8)
            .__array_interface__["data"][0]
        )
        return (base, base + self.nbytes)

    def checksum(self) -> int:
        """Adler-32 snapshot of the current contents (sanitizer pins)."""
        return zlib.adler32(self.view[:self.nbytes])

    def describe(self) -> str:
        """Short human-readable identity for diagnostics."""
        return (
            f"{type(self.obj).__name__}"
            f"({self.datatype.Get_name()}, {self.nbytes} bytes)"
        )


_DEVICE_LIBRARIES = {
    "cupy_sim": "cupy",
    "pycuda_sim": "pycuda",
    "numba_sim": "numba",
}


def _library_of(obj: Any) -> str | None:
    module = type(obj).__module__.rsplit(".", maxsplit=1)[-1]
    return _DEVICE_LIBRARIES.get(module, module)


def _resolve_device(obj: Any, writable: bool) -> BufferSpec:
    from ..gpu.cai import resolve_cai

    alloc, nbytes, np_dtype, _shape = resolve_cai(obj)
    datatype = datatypes.from_numpy_dtype(np_dtype)
    view = memoryview(alloc.backing)[:nbytes]
    return BufferSpec(
        obj, view, nbytes, datatype, kind="device", library=_library_of(obj)
    )


def _resolve_host(obj: Any, writable: bool) -> BufferSpec:
    if isinstance(obj, np.ndarray):
        if not obj.flags["C_CONTIGUOUS"]:
            raise BufferError_(
                "only C-contiguous arrays can be communicated "
                "(make a contiguous copy first)"
            )
        if writable and not obj.flags.writeable:
            raise BufferError_(
                "read-only array passed where a writable receive buffer "
                "is required"
            )
        datatype = datatypes.from_numpy_dtype(obj.dtype)
        view = memoryview(obj).cast("B")
        return BufferSpec(obj, view, obj.nbytes, datatype)
    try:
        view = memoryview(obj).cast("B")
    except TypeError:
        raise BufferError_(
            f"{type(obj).__name__} does not support the buffer protocol "
            "and has no __cuda_array_interface__"
        ) from None
    if writable and view.readonly:
        raise BufferError_(
            f"{type(obj).__name__} is read-only but a writable receive "
            "buffer is required"
        )
    return BufferSpec(obj, view, view.nbytes, datatypes.BYTE)


def resolve_buffer(spec: Any, writable: bool = False) -> BufferSpec:
    """Resolve a user buffer argument to a :class:`BufferSpec`.

    Accepted forms, mirroring mpi4py:

    * a buffer-provider or CUDA-array-interface object;
    * ``[buffer, datatype]`` with ``datatype`` a Datatype or MPI name;
    * ``[buffer, count, datatype]`` restricting to ``count`` elements.
    """
    count: int | None = None
    datatype: Datatype | None = None
    if isinstance(spec, (list, tuple)):
        if len(spec) == 2:
            obj, dt = spec
        elif len(spec) == 3:
            obj, count, dt = spec
            if count is not None and count < 0:
                raise CountError(f"negative element count {count}")
        else:
            raise BufferError_(
                f"buffer spec must be [buf, datatype] or "
                f"[buf, count, datatype]; got {len(spec)} items"
            )
        datatype = datatypes.lookup(dt) if isinstance(dt, str) else dt
    else:
        obj = spec

    if hasattr(obj, "__cuda_array_interface__"):
        resolved = _resolve_device(obj, writable)
    else:
        resolved = _resolve_host(obj, writable)

    if datatype is not None:
        if resolved.nbytes % datatype.size != 0 and count is None:
            raise BufferError_(
                f"buffer of {resolved.nbytes} bytes is not a whole number "
                f"of {datatype.Get_name()} elements"
            )
        resolved.datatype = datatype
    if count is not None:
        dt = resolved.datatype
        want = count * dt.size
        if want > resolved.nbytes:
            raise CountError(
                f"count {count} x {dt.Get_name()} = {want} bytes exceeds "
                f"buffer of {resolved.nbytes} bytes"
            )
        resolved.view = resolved.view[:want]
        resolved.nbytes = want
    return resolved
