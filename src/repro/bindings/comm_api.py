"""The mpi4py-workalike communicator API.

Wraps a runtime :class:`repro.mpi.comm.Comm` with the two method families
mpi4py exposes:

* **upper-case** buffer methods (``Send``, ``Recv``, ``Bcast``, ``Reduce``,
  ``Allreduce``, ``Gather``, ``Scatter``, ``Allgather``, ``Alltoall``,
  ``Reduce_scatter``, ``Scan``, plus the vector variants ``Gatherv``,
  ``Scatterv``, ``Allgatherv``, ``Alltoallv``) — near-zero-copy
  communication of buffer-provider or CUDA-array-interface objects;
* **lower-case** pickle methods (``send``, ``recv``, ``bcast``, ``reduce``,
  ``allreduce``, ``gather``, ``scatter``, ``allgather``, ``alltoall``) —
  arbitrary Python objects, with serialization cost.

As in mpi4py, initialization defaults to ``THREAD_MULTIPLE``.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from ..mpi import constants as C
from ..mpi import ops as mpi_ops
from ..mpi.comm import Comm as RuntimeComm
from ..mpi.exceptions import CountError
from ..mpi.ops import Op
from ..mpi.request import RecvRequest, Request
from ..mpi.status import Status
from ..mpi.world import World
from ..mpi.world import init as runtime_init
from .buffers import BufferSpec, resolve_buffer
from .pickle_codec import PickleCodec

ANY_SOURCE = C.ANY_SOURCE
ANY_TAG = C.ANY_TAG
SUM = mpi_ops.SUM
MAX = mpi_ops.MAX
MIN = mpi_ops.MIN
PROD = mpi_ops.PROD


class PickleRecvFuture:
    """Request-like handle returned by :meth:`Comm.irecv`."""

    def __init__(self, req: RecvRequest, codec: PickleCodec) -> None:
        self._req = req
        self._codec = codec

    def wait(self, timeout: float | None = None) -> Any:
        self._req.wait(timeout)
        return self._codec.loads(self._req.payload())

    def test(self) -> tuple[bool, Any | None]:
        done, _st = self._req.test()
        if not done:
            return False, None
        return True, self._codec.loads(self._req.payload())


class BufferRecvRequest:
    """Request-like handle returned by :meth:`Comm.Irecv`."""

    def __init__(self, req: RecvRequest, spec: BufferSpec,
                 sanitizer_pin=None) -> None:
        self._req = req
        self._spec = spec
        # Race-sanitizer ownership record (duck-typed); released — with a
        # content-snapshot check — just before the payload write-back, so
        # a user mutation of the posted buffer is caught, while the
        # legitimate receive fill is not.
        self._pin = sanitizer_pin

    def _check_count(self, st: Status) -> None:
        verifier = self._req._ticket.verifier
        if verifier is not None:
            verifier.check_recv_count(
                st.count_bytes, self._spec.nbytes, st.source, st.tag
            )

    def _release_pin(self) -> None:
        pin = self._pin
        if pin is not None:
            self._pin = None
            pin.release()

    def Wait(self, status: Status | None = None) -> None:
        st = self._req.wait()
        self._check_count(st)
        self._release_pin()
        self._spec.write(self._req.payload())
        if status is not None:
            status._fill(st.source, st.tag, st.count_bytes)

    wait = Wait

    def Test(self) -> bool:
        done, st = self._req.test()
        if done:
            assert st is not None
            self._check_count(st)
            self._release_pin()
            self._spec.write(self._req.payload())
        return done


class Comm:
    """mpi4py-style communicator."""

    def __init__(self, runtime: RuntimeComm, codec: PickleCodec | None = None):
        self._rt = runtime
        self.pickle = codec or PickleCodec()

    # -- identity -----------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rt.rank

    @property
    def size(self) -> int:
        return self._rt.size

    def Get_rank(self) -> int:
        return self._rt.rank

    def Get_size(self) -> int:
        return self._rt.size

    @property
    def runtime(self) -> RuntimeComm:
        """The underlying runtime communicator (native-path escape hatch)."""
        return self._rt

    # -- communicator management ---------------------------------------------
    def Dup(self) -> "Comm":
        return Comm(self._rt.Dup(), self.pickle)

    def Split(self, color: int, key: int = 0) -> "Comm | None":
        sub = self._rt.Split(color, key)
        return Comm(sub, self.pickle) if sub is not None else None

    def Free(self) -> None:
        self._rt.Free()

    def Barrier(self) -> None:
        self._rt.barrier()

    barrier = Barrier

    # -- fault tolerance (ULFM extensions) ---------------------------------
    def Revoke(self) -> None:
        """Revoke the communicator after a failure (MPIX_Comm_revoke)."""
        self._rt.revoke()

    def Shrink(self, timeout: float | None = None) -> "Comm":
        """Return a survivors-only communicator (MPIX_Comm_shrink)."""
        return Comm(self._rt.shrink(timeout=timeout), self.pickle)

    def Agree(self, flag: bool = True, timeout: float | None = None) -> bool:
        """Fault-tolerant AND over live members (MPIX_Comm_agree)."""
        return self._rt.agree(flag, timeout=timeout)

    def Is_revoked(self) -> bool:
        return self._rt.is_revoked()

    def Get_failed(self) -> list[int]:
        """Communicator-local ranks known to have failed."""
        return sorted(self._rt.failed_ranks())

    # ======================================================================
    # Upper-case: direct buffer methods
    # ======================================================================
    def _sanitize_access(self, spec: BufferSpec, op: str,
                         write: bool = False) -> None:
        """Declare a blocking buffer access to an active race sanitizer.

        Duck-typed like the verifier hooks: the sanitizer checks the
        access against every buffer pinned by a pending non-blocking
        operation on this rank.
        """
        sanitizer = self._rt.endpoint.sanitizer
        if sanitizer is not None:
            if write:
                sanitizer.check_write(spec, op)
            else:
                sanitizer.check_read(spec, op)

    def Send(self, buf: Any, dest: int, tag: int = 0) -> None:
        spec = resolve_buffer(buf)
        self._sanitize_access(spec, "Send")
        self._rt.send_bytes(spec.read(), dest, tag)

    def _check_recv_count(self, spec: BufferSpec, st: Status) -> None:
        """Report byte-count mismatches to an active runtime verifier.

        Oversized messages already raise TruncationError in the matching
        engine; this catches the *undersized* half — a sender whose count
        or datatype disagrees with the posted receive buffer.
        """
        verifier = self._rt.endpoint.verifier
        if verifier is not None:
            verifier.check_recv_count(
                st.count_bytes, spec.nbytes, st.source, st.tag
            )

    def Recv(
        self,
        buf: Any,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Status | None = None,
    ) -> None:
        spec = resolve_buffer(buf, writable=True)
        self._sanitize_access(spec, "Recv", write=True)
        payload, st = self._rt.recv_bytes(source, tag, spec.nbytes)
        self._check_recv_count(spec, st)
        spec.write(payload)
        if status is not None:
            status._fill(st.source, st.tag, st.count_bytes)

    def Isend(self, buf: Any, dest: int, tag: int = 0) -> Request:
        spec = resolve_buffer(buf)
        sanitizer = self._rt.endpoint.sanitizer
        # Pin the send buffer at post time; SendRequest releases the pin
        # (verifying the content snapshot) at wait/test.
        pin = None
        if sanitizer is not None:
            pin = sanitizer.pin_spec(spec, "Isend")
        req = self._rt.isend_bytes(spec.read(), dest, tag)
        if pin is not None:
            req.sanitizer_pin = pin
        return req

    def Irecv(
        self, buf: Any, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> BufferRecvRequest:
        spec = resolve_buffer(buf, writable=True)
        req = self._rt.irecv_bytes(source, tag, spec.nbytes)
        sanitizer = self._rt.endpoint.sanitizer
        pin = None
        if sanitizer is not None:
            pin = sanitizer.pin_spec(spec, "Irecv")
        return BufferRecvRequest(req, spec, pin)

    def Sendrecv(
        self,
        sendbuf: Any,
        dest: int,
        sendtag: int = 0,
        recvbuf: Any = None,
        source: int = ANY_SOURCE,
        recvtag: int = ANY_TAG,
        status: Status | None = None,
    ) -> None:
        sspec = resolve_buffer(sendbuf)
        rspec = resolve_buffer(recvbuf, writable=True)
        self._sanitize_access(sspec, "Sendrecv")
        self._sanitize_access(rspec, "Sendrecv", write=True)
        payload, st = self._rt.sendrecv_bytes(
            sspec.read(), dest, sendtag, source, recvtag, rspec.nbytes
        )
        self._check_recv_count(rspec, st)
        rspec.write(payload)
        if status is not None:
            status._fill(st.source, st.tag, st.count_bytes)

    def Bcast(self, buf: Any, root: int = 0) -> None:
        spec = resolve_buffer(buf, writable=True)
        sanitizer = self._rt.endpoint.sanitizer
        token = None
        if sanitizer is not None:
            self._sanitize_access(spec, "Bcast", write=self.rank != root)
            # Snapshot the buffer across the collective: every rank's
            # buffer must stay untouched while the broadcast executes —
            # the legitimate non-root fill happens after the bracket.
            token = sanitizer.coll_begin(spec, "bcast", root)
        data = self._rt.bcast_bytes(
            spec.read() if self.rank == root else None, root
        )
        if token is not None:
            sanitizer.coll_end(token)
        if self.rank != root:
            spec.write(data)

    def Reduce(
        self,
        sendbuf: Any,
        recvbuf: Any = None,
        op: Op = SUM,
        root: int = 0,
    ) -> None:
        sspec = resolve_buffer(sendbuf)
        self._sanitize_access(sspec, "Reduce")
        result = self._rt.reduce_array(sspec.as_array(), op, root)
        if self.rank == root:
            rspec = resolve_buffer(recvbuf, writable=True)
            self._sanitize_access(rspec, "Reduce", write=True)
            rspec.write(np.ascontiguousarray(result).tobytes())

    def Allreduce(self, sendbuf: Any, recvbuf: Any, op: Op = SUM) -> None:
        sspec = resolve_buffer(sendbuf)
        rspec = resolve_buffer(recvbuf, writable=True)
        self._sanitize_access(sspec, "Allreduce")
        self._sanitize_access(rspec, "Allreduce", write=True)
        result = self._rt.allreduce_array(sspec.as_array(), op)
        rspec.write(np.ascontiguousarray(result).tobytes())

    def Gather(self, sendbuf: Any, recvbuf: Any = None, root: int = 0) -> None:
        sspec = resolve_buffer(sendbuf)
        self._sanitize_access(sspec, "Gather")
        blocks = self._rt.gather_bytes(sspec.read(), root)
        if self.rank == root:
            rspec = resolve_buffer(recvbuf, writable=True)
            self._sanitize_access(rspec, "Gather", write=True)
            self._write_blocks(rspec, blocks)

    def Scatter(self, sendbuf: Any = None, recvbuf: Any = None, root: int = 0) -> None:
        rspec = resolve_buffer(recvbuf, writable=True)
        self._sanitize_access(rspec, "Scatter", write=True)
        blocks = None
        if self.rank == root:
            sspec = resolve_buffer(sendbuf)
            self._sanitize_access(sspec, "Scatter")
            blocks = self._split_blocks(sspec, self.size)
        data = self._rt.scatter_bytes(blocks, root)
        rspec.write(data)

    def Allgather(self, sendbuf: Any, recvbuf: Any) -> None:
        sspec = resolve_buffer(sendbuf)
        rspec = resolve_buffer(recvbuf, writable=True)
        self._sanitize_access(sspec, "Allgather")
        self._sanitize_access(rspec, "Allgather", write=True)
        blocks = self._rt.allgather_bytes(sspec.read())
        self._write_blocks(rspec, blocks)

    def Alltoall(self, sendbuf: Any, recvbuf: Any) -> None:
        sspec = resolve_buffer(sendbuf)
        rspec = resolve_buffer(recvbuf, writable=True)
        self._sanitize_access(sspec, "Alltoall")
        self._sanitize_access(rspec, "Alltoall", write=True)
        blocks = self._rt.alltoall_bytes(self._split_blocks(sspec, self.size))
        self._write_blocks(rspec, blocks)

    def Reduce_scatter(
        self,
        sendbuf: Any,
        recvbuf: Any,
        recvcounts: Sequence[int] | None = None,
        op: Op = SUM,
    ) -> None:
        sspec = resolve_buffer(sendbuf)
        rspec = resolve_buffer(recvbuf, writable=True)
        if recvcounts is None:
            total = sspec.count
            if total % self.size != 0:
                raise CountError(
                    f"send count {total} not divisible by {self.size} "
                    "(pass explicit recvcounts)"
                )
            recvcounts = [total // self.size] * self.size
        self._sanitize_access(sspec, "Reduce_scatter")
        self._sanitize_access(rspec, "Reduce_scatter", write=True)
        result = self._rt.reduce_scatter_array(
            sspec.as_array(), recvcounts, op
        )
        rspec.write(np.ascontiguousarray(result).tobytes())

    def Scan(self, sendbuf: Any, recvbuf: Any, op: Op = SUM) -> None:
        sspec = resolve_buffer(sendbuf)
        rspec = resolve_buffer(recvbuf, writable=True)
        self._sanitize_access(sspec, "Scan")
        self._sanitize_access(rspec, "Scan", write=True)
        result = self._rt.scan_array(sspec.as_array(), op)
        rspec.write(np.ascontiguousarray(result).tobytes())

    # -- vector variants --------------------------------------------------------
    def Gatherv(
        self,
        sendbuf: Any,
        recvspec: Any = None,
        root: int = 0,
    ) -> None:
        """Gather variable-size blocks; ``recvspec`` = [buf, counts] at root.

        Counts are element counts of the receive buffer's datatype;
        displacements are the running sums (contiguous packing).
        """
        sspec = resolve_buffer(sendbuf)
        byte_counts = None
        rspec = None
        if self.rank == root:
            rspec, counts = self._split_vspec(recvspec)
            byte_counts = [c * rspec.datatype.size for c in counts]
        blocks = self._rt.gatherv_bytes(sspec.read(), byte_counts, root)
        if self.rank == root:
            assert rspec is not None and blocks is not None
            self._write_ragged(rspec, blocks)

    def Scatterv(
        self,
        sendspec: Any = None,
        recvbuf: Any = None,
        root: int = 0,
    ) -> None:
        """Scatter variable-size blocks; ``sendspec`` = [buf, counts] at root."""
        rspec = resolve_buffer(recvbuf, writable=True)
        blocks = None
        if self.rank == root:
            sspec, counts = self._split_vspec(sendspec)
            blocks = self._split_ragged(sspec, counts)
        data = self._rt.scatterv_bytes(blocks, root)
        rspec.write(data)

    def Allgatherv(self, sendbuf: Any, recvspec: Any) -> None:
        """Allgather variable-size blocks; ``recvspec`` = [buf, counts]."""
        sspec = resolve_buffer(sendbuf)
        rspec, counts = self._split_vspec(recvspec)
        byte_counts = [c * rspec.datatype.size for c in counts]
        blocks = self._rt.allgatherv_bytes(sspec.read(), byte_counts)
        self._write_ragged(rspec, blocks)

    def Alltoallv(self, sendspec: Any, recvspec: Any) -> None:
        """Personalized exchange of variable blocks; specs = [buf, counts]."""
        sspec, scounts = self._split_vspec(sendspec)
        rspec, _rcounts = self._split_vspec(recvspec)
        blocks = self._rt.alltoallv_bytes(self._split_ragged(sspec, scounts))
        self._write_ragged(rspec, blocks)

    # -- block plumbing ------------------------------------------------------
    @staticmethod
    def _split_blocks(spec: BufferSpec, parts: int) -> list[bytes]:
        if spec.nbytes % parts != 0:
            raise CountError(
                f"buffer of {spec.nbytes} bytes does not split into "
                f"{parts} equal blocks"
            )
        block = spec.nbytes // parts
        data = spec.read()
        return [data[i * block:(i + 1) * block] for i in range(parts)]

    @staticmethod
    def _write_blocks(spec: BufferSpec, blocks: Sequence[bytes]) -> None:
        offset = 0
        for b in blocks:
            spec.write(b, offset)
            offset += len(b)

    def _split_vspec(self, vspec: Any) -> tuple[BufferSpec, list[int]]:
        if not (isinstance(vspec, (list, tuple)) and len(vspec) == 2):
            raise CountError(
                "vector collective needs a [buffer, counts] pair"
            )
        buf, counts = vspec
        spec = resolve_buffer(buf, writable=True)
        counts = [int(c) for c in counts]
        if len(counts) != self.size:
            raise CountError(
                f"counts has {len(counts)} entries for {self.size} ranks"
            )
        return spec, counts

    @staticmethod
    def _split_ragged(spec: BufferSpec, counts: Sequence[int]) -> list[bytes]:
        data = spec.read()
        esize = spec.datatype.size
        out = []
        offset = 0
        for c in counts:
            out.append(data[offset:offset + c * esize])
            offset += c * esize
        return out

    @staticmethod
    def _write_ragged(spec: BufferSpec, blocks: Sequence[bytes]) -> None:
        offset = 0
        for b in blocks:
            spec.write(b, offset)
            offset += len(b)

    # ======================================================================
    # Lower-case: pickle methods
    # ======================================================================
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        self._rt.send_bytes(self.pickle.dumps(obj), dest, tag)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        status: Status | None = None,
    ) -> Any:
        payload, st = self._rt.recv_bytes(source, tag, 1 << 62)
        if status is not None:
            status._fill(st.source, st.tag, st.count_bytes)
        return self.pickle.loads(payload)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        return self._rt.isend_bytes(self.pickle.dumps(obj), dest, tag)

    def irecv(
        self, source: int = ANY_SOURCE, tag: int = ANY_TAG
    ) -> PickleRecvFuture:
        req = self._rt.irecv_bytes(source, tag, 1 << 62)
        return PickleRecvFuture(req, self.pickle)

    def sendrecv(
        self, obj: Any, dest: int, sendtag: int = 0,
        source: int = ANY_SOURCE, recvtag: int = ANY_TAG,
    ) -> Any:
        payload, _st = self._rt.sendrecv_bytes(
            self.pickle.dumps(obj), dest, sendtag, source, recvtag, 1 << 62
        )
        return self.pickle.loads(payload)

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        data = self._rt.bcast_bytes(
            self.pickle.dumps(obj) if self.rank == root else None, root
        )
        return self.pickle.loads(data)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        blocks = self._rt.gatherv_bytes(self.pickle.dumps(obj), None, root)
        if blocks is None:
            return None
        return [self.pickle.loads(b) for b in blocks]

    def scatter(self, objs: Sequence[Any] | None = None, root: int = 0) -> Any:
        blocks = None
        if self.rank == root:
            if objs is None or len(objs) != self.size:
                raise CountError(
                    f"scatter needs exactly {self.size} objects at the root"
                )
            blocks = [self.pickle.dumps(o) for o in objs]
        data = self._rt.scatterv_bytes(blocks, root)
        return self.pickle.loads(data)

    def allgather(self, obj: Any) -> list[Any]:
        mine = self.pickle.dumps(obj)
        counts = [
            int(np.frombuffer(b, dtype="<i8")[0])
            for b in self._rt.allgather_bytes(
                np.int64(len(mine)).tobytes()
            )
        ]
        blocks = self._rt.allgatherv_bytes(mine, counts)
        return [self.pickle.loads(b) for b in blocks]

    def alltoall(self, objs: Sequence[Any]) -> list[Any]:
        if len(objs) != self.size:
            raise CountError(
                f"alltoall needs exactly {self.size} objects per rank"
            )
        blocks = self._rt.alltoallv_bytes(
            [self.pickle.dumps(o) for o in objs]
        )
        return [self.pickle.loads(b) for b in blocks]

    def reduce(self, obj: Any, op: Op = SUM, root: int = 0) -> Any:
        """Object reduce: gather + rank-ordered fold at the root."""
        items = self.gather(obj, root)
        if items is None:
            return None
        acc = items[0]
        for item in items[1:]:
            acc = op.fn(acc, item)
        return acc

    def allreduce(self, obj: Any, op: Op = SUM) -> Any:
        result = self.reduce(obj, op, root=0)
        return self.bcast(result, root=0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"bindings.Comm(rank={self.rank}, size={self.size})"


class CommWorld(Comm):
    """COMM_WORLD with lifecycle management for the owning world."""

    def __init__(self, world: World) -> None:
        super().__init__(world.comm)
        self._world = world

    def finalize(self) -> None:
        self._world.finalize()

    def __enter__(self) -> "CommWorld":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.finalize()


def init(thread_level: int = C.THREAD_MULTIPLE) -> CommWorld:
    """Initialize MPI for this process and return COMM_WORLD.

    Defaults to ``THREAD_MULTIPLE``, matching mpi4py — the behaviour the
    paper identifies as the source of the full-subscription Allreduce
    degradation (OMB's C benchmarks initialize ``THREAD_SINGLE``).
    """
    return CommWorld(runtime_init(thread_level))
