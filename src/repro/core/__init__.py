"""``repro.core`` — the OMB-Py micro-benchmark suite.

The paper's primary contribution: Python ports of the OSU Micro-Benchmarks
built on the mpi4py-workalike bindings.  Point-to-point tests (latency,
bandwidth, bi-directional bandwidth, multi-pair latency), all blocking
collectives (Table II), and their vector variants, each runnable over:

* ``buffer`` — upper-case direct-buffer methods (the OMB-Py default),
* ``pickle`` — lower-case object-serialization methods,
* ``native`` — the bindings-free baseline standing in for C OMB,

and over every supported buffer type (bytearray, NumPy, and the simulated
CuPy/PyCUDA/Numba device arrays).
"""

from .compare import compare_report
from .export import figure_to_csv, table_to_csv, table_to_json
from .options import Options
from .registry import available_benchmarks, get_benchmark
from .results import ResultRow, ResultTable, average_overhead
from .runner import run_benchmark
from .tuning import tune

__all__ = [
    "Options",
    "ResultRow",
    "ResultTable",
    "available_benchmarks",
    "average_overhead",
    "compare_report",
    "figure_to_csv",
    "get_benchmark",
    "run_benchmark",
    "table_to_csv",
    "table_to_json",
    "tune",
]
