"""Result export: CSV and JSON serialization of benchmark tables.

The OSU suite is routinely post-processed by plotting scripts; this
module provides the stable machine-readable form — one CSV per table, or
one CSV per figure with the curve family side by side (the layout the
paper's figures plot).
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Sequence

from .results import ResultRow, ResultTable


def table_to_csv(table: ResultTable, full_stats: bool = False) -> str:
    """One table as CSV text (size, value[, min, max, iterations])."""
    out = io.StringIO()
    writer = csv.writer(out)
    header = ["size", table.metric]
    if full_stats:
        header += ["min", "max", "iterations"]
    writer.writerow(header)
    for row in table.rows:
        record = [row.size, f"{row.value:.6g}"]
        if full_stats:
            record += [
                f"{row.minimum:.6g}", f"{row.maximum:.6g}", row.iterations
            ]
        writer.writerow(record)
    return out.getvalue()


def figure_to_csv(
    tables: Sequence[ResultTable], labels: Sequence[str] | None = None
) -> str:
    """A curve family as CSV: size column + one value column per table."""
    if not tables:
        raise ValueError("no tables to export")
    labels = list(labels) if labels else [
        f"{t.api}/{t.buffer}" for t in tables
    ]
    if len(labels) != len(tables):
        raise ValueError(
            f"{len(labels)} labels for {len(tables)} tables"
        )
    sizes = tables[0].sizes()
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(["size"] + labels)
    for size in sizes:
        record: list[str | int] = [size]
        for t in tables:
            try:
                record.append(f"{t.row_for(size).value:.6g}")
            except KeyError:
                record.append("")
        writer.writerow(record)
    return out.getvalue()


def table_to_json(table: ResultTable) -> str:
    """One table as JSON (metadata + rows)."""
    return json.dumps(
        {
            "benchmark": table.benchmark,
            "metric": table.metric,
            "ranks": table.ranks,
            "buffer": table.buffer,
            "api": table.api,
            "rows": [
                {
                    "size": r.size,
                    "value": r.value,
                    "min": r.minimum,
                    "max": r.maximum,
                    "iterations": r.iterations,
                }
                for r in table.rows
            ],
        },
        indent=2,
    )


def table_from_json(text: str) -> ResultTable:
    """Inverse of :func:`table_to_json`."""
    data = json.loads(text)
    table = ResultTable(
        benchmark=data["benchmark"],
        metric=data["metric"],
        ranks=data["ranks"],
        buffer=data["buffer"],
        api=data["api"],
    )
    for r in data["rows"]:
        table.add(ResultRow(
            r["size"], r["value"], r["min"], r["max"], r["iterations"]
        ))
    return table


def write_figure(
    path: str | Path,
    tables: Sequence[ResultTable],
    labels: Sequence[str] | None = None,
) -> Path:
    """Write a curve-family CSV; returns the written path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(figure_to_csv(tables, labels))
    return path
