"""Benchmark registry — the machine-readable form of the paper's Table II.

Maps OSU-style names to benchmark classes and records the feature matrix
(Table I) that positions OMB-Py against mpi4py demo codes, IMB, and SMB.
"""

from __future__ import annotations

from .collective import (
    AllgatherBenchmark,
    AllgathervBenchmark,
    AllreduceBenchmark,
    AlltoallBenchmark,
    AlltoallvBenchmark,
    BarrierBenchmark,
    BcastBenchmark,
    GatherBenchmark,
    GathervBenchmark,
    ReduceBenchmark,
    ReduceScatterBenchmark,
    ScatterBenchmark,
    ScattervBenchmark,
)
from .nonblocking_bench import IallreduceBenchmark, IbcastBenchmark
from .onesided import (
    AccLatencyBenchmark,
    GetLatencyBenchmark,
    PutLatencyBenchmark,
)
from .pt2pt import (
    BandwidthBenchmark,
    BiBandwidthBenchmark,
    LatencyBenchmark,
    MultiLatencyBenchmark,
)
from .pt2pt.mbw_mr import MultiBandwidthBenchmark
from .pt2pt.multi_thread import MultiThreadLatencyBenchmark
from .runner import Benchmark

_BENCHMARKS: dict[str, type[Benchmark]] = {
    cls.name: cls
    for cls in (
        # Point-to-point (Table II row 1)
        LatencyBenchmark,
        BandwidthBenchmark,
        BiBandwidthBenchmark,
        MultiLatencyBenchmark,
        # Blocking collectives (Table II row 2)
        AllgatherBenchmark,
        AllreduceBenchmark,
        AlltoallBenchmark,
        BarrierBenchmark,
        BcastBenchmark,
        GatherBenchmark,
        ReduceScatterBenchmark,
        ReduceBenchmark,
        ScatterBenchmark,
        # Vector variants (Table II row 3)
        AllgathervBenchmark,
        AlltoallvBenchmark,
        GathervBenchmark,
        ScattervBenchmark,
        # Extensions beyond the paper's v1 scope (its planned work):
        # non-blocking collectives and one-sided operations, both of
        # which the original C OMB already covers.
        IbcastBenchmark,
        IallreduceBenchmark,
        MultiThreadLatencyBenchmark,
        MultiBandwidthBenchmark,
        PutLatencyBenchmark,
        GetLatencyBenchmark,
        AccLatencyBenchmark,
    )
}

CATEGORIES: dict[str, tuple[str, ...]] = {
    "pt2pt": ("osu_latency", "osu_bw", "osu_bibw", "osu_multi_lat"),
    "collective": (
        "osu_allgather", "osu_allreduce", "osu_alltoall", "osu_barrier",
        "osu_bcast", "osu_gather", "osu_reduce_scatter", "osu_reduce",
        "osu_scatter",
    ),
    "vector": (
        "osu_allgatherv", "osu_alltoallv", "osu_gatherv", "osu_scatterv",
    ),
    "nonblocking": ("osu_ibcast", "osu_iallreduce"),
    "multithreaded": ("osu_latency_mt",),
    "aggregate": ("osu_mbw_mr",),
    "onesided": ("osu_put_latency", "osu_get_latency", "osu_acc_latency"),
}

# Table I: feature comparison.  Keys are features; values flag support in
# (OMB-Py, mpi4py demo codes, IMB, SMB).
FEATURE_MATRIX: dict[str, tuple[str, str, str, str]] = {
    "point_to_point": ("yes", "yes", "yes", "yes"),
    "blocking_collectives": ("yes", "partially", "yes", "no"),
    "vector_collectives": ("yes", "partially", "yes", "no"),
    "python_support": ("yes", "yes", "no", "no"),
    "gpu_buffers": ("yes", "no", "no", "no"),
    "pickle_and_buffer_apis": ("yes", "yes", "no", "no"),
    "ml_workload_benchmarks": ("yes", "no", "no", "no"),
    "multiple_python_buffer_libraries": ("yes", "no", "no", "no"),
}
FEATURE_COLUMNS = ("OMB-Py", "mpi4py demos", "IMB", "SMB")


def get_benchmark(name: str) -> Benchmark:
    """Instantiate a benchmark by registry name."""
    try:
        return _BENCHMARKS[name]()
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: "
            f"{', '.join(sorted(_BENCHMARKS))}"
        ) from None


def available_benchmarks(category: str | None = None) -> list[str]:
    """Registry names, optionally restricted to one Table-II category."""
    if category is None:
        return sorted(_BENCHMARKS)
    try:
        return list(CATEGORIES[category])
    except KeyError:
        raise KeyError(
            f"unknown category {category!r}; available: "
            f"{', '.join(sorted(CATEGORIES))}"
        ) from None
