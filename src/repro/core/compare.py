"""``ombpy-compare`` — compare two saved benchmark runs.

The paper's core methodology is exactly this comparison: run OMB (C) and
OMB-Py on the same system, subtract, and report the average overhead per
size class.  This tool does it for any two result files produced with
``ombpy ... --output file.json``::

    ombpy osu_latency --threads 2 --api native --output omb.json
    ombpy osu_latency --threads 2 --api buffer --output ombpy.json
    ombpy-compare omb.json ombpy.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .export import table_from_json
from .output import format_comparison
from .results import ResultTable, average_overhead


def split_ranges(
    base: ResultTable, other: ResultTable, threshold: int = 8192
) -> tuple[list[int], list[int]]:
    """Common sizes split into (small, large) at the OSU threshold."""
    common = sorted(set(base.sizes()) & set(other.sizes()))
    return (
        [s for s in common if s <= threshold],
        [s for s in common if s > threshold],
    )


def compare_report(
    base: ResultTable,
    other: ResultTable,
    labels: tuple[str, str] = ("baseline", "candidate"),
    threshold: int = 8192,
) -> str:
    """Human-readable overhead report between two runs."""
    if base.metric != other.metric:
        raise ValueError(
            f"metric mismatch: {base.metric} vs {other.metric}"
        )
    lines = [
        f"# compare: {labels[0]} ({base.benchmark}, {base.api}/{base.buffer})"
        f" vs {labels[1]} ({other.benchmark}, {other.api}/{other.buffer})",
        format_comparison([base, other], list(labels)).rstrip(),
    ]
    small, large = split_ranges(base, other, threshold)
    higher_is_better = base.metric == "bandwidth_mbs"
    for label, sizes in (("small", small), ("large", large)):
        if not sizes:
            continue
        delta = average_overhead(base, other, sizes)
        if higher_is_better:
            delta = -delta
            kind = "deficit"
        else:
            kind = "overhead"
        lines.append(
            f"avg {kind}, {label} msgs (n={len(sizes)}): {delta:+.3f} "
            f"({base.metric})"
        )
    return "\n".join(lines)


def load_table(path: str | Path) -> ResultTable:
    """Load a table saved by ``ombpy --output`` (JSON only)."""
    path = Path(path)
    if path.suffix != ".json":
        raise ValueError(
            f"{path} is not a .json result (CSV lacks the metadata needed "
            "for comparison; re-run with --output file.json)"
        )
    return table_from_json(path.read_text())


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ombpy-compare",
        description="Compare two saved OMB-Py result files.",
    )
    parser.add_argument("baseline", help="baseline .json result")
    parser.add_argument("candidate", help="candidate .json result")
    parser.add_argument(
        "--threshold", type=int, default=8192,
        help="small/large split point in bytes",
    )
    args = parser.parse_args(argv)
    try:
        base = load_table(args.baseline)
        other = load_table(args.candidate)
        print(compare_report(
            base, other,
            labels=(Path(args.baseline).stem, Path(args.candidate).stem),
            threshold=args.threshold,
        ))
    except (OSError, ValueError) as exc:
        print(f"ombpy-compare: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
