"""OSU-style stdout formatting.

The OSU benchmarks print a commented header followed by aligned columns
("# OSU MPI Latency Test", "# Size        Latency (us)"); OMB-Py keeps
that format so downstream tooling that parses OSU output keeps working.
"""

from __future__ import annotations

import io

from .results import ResultTable

_FIELD = 18

_METRIC_HEADERS = {
    "latency_us": "Latency (us)",
    "bandwidth_mbs": "Bandwidth (MB/s)",
}


def format_table(table: ResultTable, full_stats: bool = False) -> str:
    """Render one result table in OSU layout."""
    out = io.StringIO()
    title = table.benchmark.replace("_", " ").title()
    out.write(f"# OMB-Py {title} Test\n")
    out.write(
        f"# ranks: {table.ranks}  buffer: {table.buffer}  api: {table.api}\n"
    )
    metric = _METRIC_HEADERS.get(table.metric, table.metric)
    header = f"{'# Size':<10}{metric:>{_FIELD}}"
    if full_stats:
        header += f"{'Min':>{_FIELD}}{'Max':>{_FIELD}}{'Iters':>{10}}"
    out.write(header + "\n")
    for row in table.rows:
        line = f"{row.size:<10}{row.value:>{_FIELD}.2f}"
        if full_stats:
            line += (
                f"{row.minimum:>{_FIELD}.2f}{row.maximum:>{_FIELD}.2f}"
                f"{row.iterations:>10}"
            )
        out.write(line + "\n")
    return out.getvalue()


def print_table(table: ResultTable, full_stats: bool = False) -> None:
    """Print a table to stdout (rank-0 only in benchmark drivers)."""
    print(format_table(table, full_stats), end="")


def format_comparison(
    tables: list[ResultTable], labels: list[str] | None = None
) -> str:
    """Side-by-side rendering of several runs over the same sizes."""
    if not tables:
        return ""
    labels = labels or [f"{t.api}/{t.buffer}" for t in tables]
    sizes = tables[0].sizes()
    out = io.StringIO()
    out.write(f"{'# Size':<10}")
    for label in labels:
        out.write(f"{label:>{_FIELD}}")
    out.write("\n")
    for size in sizes:
        out.write(f"{size:<10}")
        for t in tables:
            try:
                out.write(f"{t.row_for(size).value:>{_FIELD}.2f}")
            except KeyError:
                out.write(f"{'-':>{_FIELD}}")
        out.write("\n")
    return out.getvalue()
