"""Collective-time-vs-rank-count measurement (the scaling sweep core).

OSU-style methodology at growing communicator sizes: for one collective
at a fixed message size, time ``iterations`` back-to-back calls after
``warmup`` untimed ones, on every rank, and report the slowest rank's
mean — a collective is only as fast as its last finisher.  Two harness
paths share the timing loop:

* :func:`measure_threads` — ranks-as-threads over the inproc fabric
  (optionally under the runtime verifier), with or without a node-group
  map; the CI smoke path.
* :func:`measure_process` — true process ranks under the launcher on a
  stream transport; each rank also reports its transport connection
  statistics, which is how the sweep demonstrates the O(group + groups)
  connection scaling of the fabric.

:func:`predict_ratio` prices the same flat and hierarchical algorithms
on the simulator's LogGP models (:mod:`repro.simulator`), so a sweep can
cross-validate its measured hierarchical speedup against the analytic
expectation — see ``docs/scaling.md``.

The module doubles as the per-rank child program of the process path::

    python -m repro.core.scaling --op allreduce --size 1024 --out base
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

#: Collectives the sweep knows how to drive (the hierarchical set).
SCALING_OPS = ("allreduce", "bcast", "barrier", "gather", "allgather")


def _one_call(comm, op: str, nbytes: int, payload: bytes, arr) -> None:
    if op == "allreduce":
        from ..mpi.ops import SUM

        comm.allreduce_array(arr, SUM)
    elif op == "bcast":
        comm.bcast_bytes(payload if comm.rank == 0 else None, 0)
    elif op == "barrier":
        comm.barrier()
    elif op == "gather":
        comm.gather_bytes(payload, 0)
    elif op == "allgather":
        comm.allgather_bytes(payload)
    else:
        raise ValueError(
            f"unknown scaling op {op!r}; available: {SCALING_OPS}"
        )


def time_collective(
    comm, op: str, nbytes: int, iterations: int, warmup: int
) -> float:
    """This rank's mean time per call, in microseconds."""
    payload = b"\0" * nbytes
    arr = np.zeros(max(1, nbytes // 8), dtype=np.float64)
    for _ in range(warmup):
        _one_call(comm, op, nbytes, payload, arr)
    comm.barrier()
    start = time.perf_counter()
    for _ in range(iterations):
        _one_call(comm, op, nbytes, payload, arr)
    elapsed = time.perf_counter() - start
    return elapsed / iterations * 1e6


def established_connections(transport) -> int | None:
    """Open channels of a fabric-backed transport (streams + shm rings)."""
    stats_fn = getattr(transport, "connection_stats", None)
    if stats_fn is None:
        return None
    stats = stats_fn()
    return stats.get("open_peers", 0) + stats.get("shm_peers", 0)


# ---------------------------------------------------------------------------
# Threads path
# ---------------------------------------------------------------------------

def measure_threads(
    op: str,
    ranks: int,
    nbytes: int,
    *,
    groups: str | None = None,
    iterations: int = 20,
    warmup: int = 3,
    verify: bool = False,
    timeout: float = 300.0,
) -> dict:
    """One (op, N, size) point on the inproc fabric; returns a record
    with the slowest-rank mean latency in microseconds."""
    from ..mpi.world import run_on_threads

    def fn(comm):
        if verify:
            from ..analysis.verifier import verify as verify_ctx

            with verify_ctx(comm, op_timeout=timeout):
                return time_collective(comm, op, nbytes, iterations, warmup)
        return time_collective(comm, op, nbytes, iterations, warmup)

    per_rank = run_on_threads(ranks, fn, timeout=timeout, groups=groups)
    return {
        "op": op,
        "transport": "threads",
        "ranks": ranks,
        "size": nbytes,
        "groups": groups,
        "iterations": iterations,
        "latency_us": max(per_rank),
        "latency_us_per_rank": [round(v, 3) for v in per_rank],
        "connections": None,
    }


# ---------------------------------------------------------------------------
# Process path (launcher children)
# ---------------------------------------------------------------------------

def measure_process(
    op: str,
    ranks: int,
    nbytes: int,
    *,
    transport: str = "uds",
    groups: str | None = None,
    iterations: int = 20,
    warmup: int = 3,
    timeout: float = 300.0,
    workdir: str | None = None,
) -> dict:
    """One (op, N, size) point with real process ranks under the
    launcher; each rank reports its timing and connection statistics."""
    import tempfile

    from ..mpi.launcher import launch

    own_dir = workdir is None
    if own_dir:
        workdir = tempfile.mkdtemp(prefix="ombpy-scaling-")
    base = os.path.join(workdir, f"{op}-n{ranks}-s{nbytes}")
    src = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    env = {
        "PYTHONPATH": src + os.pathsep + os.environ.get("PYTHONPATH", ""),
    }
    try:
        rc = launch(
            ranks,
            [sys.executable, "-m", "repro.core.scaling",
             "--op", op, "--size", str(nbytes),
             "--iterations", str(iterations), "--warmup", str(warmup),
             "--out", base],
            timeout=timeout, transport=transport, groups=groups,
            env_extra=env,
        )
        if rc != 0:
            raise RuntimeError(
                f"scaling child job failed (exit {rc}): "
                f"{op} n={ranks} size={nbytes} transport={transport} "
                f"groups={groups}"
            )
        records = [
            _read_rank_record(f"{base}.rank{rank}.json")
            for rank in range(ranks)
        ]
    finally:
        if own_dir:
            import shutil

            shutil.rmtree(workdir, ignore_errors=True)
    conns = [r["connections"] for r in records]
    return {
        "op": op,
        "transport": transport,
        "ranks": ranks,
        "size": nbytes,
        "groups": groups,
        "iterations": iterations,
        "latency_us": max(r["latency_us"] for r in records),
        "latency_us_per_rank": [round(r["latency_us"], 3) for r in records],
        "connections": conns,
        "max_connections": max(c for c in conns if c is not None)
        if any(c is not None for c in conns) else None,
    }


def _read_rank_record(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def _child_main(argv: list[str] | None = None) -> int:
    """Per-rank body of the process path (run under ``ombpy-run``)."""
    parser = argparse.ArgumentParser(prog="repro.core.scaling")
    parser.add_argument("--op", required=True, choices=SCALING_OPS)
    parser.add_argument("--size", type=int, required=True)
    parser.add_argument("--iterations", type=int, default=20)
    parser.add_argument("--warmup", type=int, default=3)
    parser.add_argument("--out", required=True)
    args = parser.parse_args(argv)

    from ..mpi import world as world_mod

    w = world_mod.init()
    try:
        latency = time_collective(
            w.comm, args.op, args.size, args.iterations, args.warmup
        )
        # Connections are sampled *after* the timed loop, while every
        # channel the collective needed is still open.
        record = {
            "rank": w.rank,
            "latency_us": latency,
            "connections": established_connections(w.endpoint.transport),
        }
        # One final sync so no rank tears down while a peer still has
        # collective traffic in flight.
        w.comm.barrier()
    finally:
        w.finalize()
    with open(f"{args.out}.rank{record['rank']}.json", "w",
              encoding="utf-8") as fh:
        json.dump(record, fh)
    return 0


# ---------------------------------------------------------------------------
# Analytic cross-validation (LogGP)
# ---------------------------------------------------------------------------

def predict_us(
    op: str, ranks: int, nbytes: int, groups: str | None = None
) -> float:
    """LogGP price of one collective call on the reference cluster.

    Flat (``groups=None``) prices the runtime's flat algorithm over the
    inter-node network.  Grouped composes the two-level algorithm the
    runtime actually runs: intra-group phases on the shared-memory
    model, the leader phase over the inter-node model — the standard
    MVAPICH-style two-level decomposition.
    """
    from ..mpi.topology import parse_groups
    from ..simulator.clusters import FRONTERA
    from ..simulator.collective_cost import (
        allgather_us, allreduce_us, barrier_us, bcast_us, collective_us,
        gather_us, reduce_us,
    )

    intra, inter = FRONTERA.intra, FRONTERA.inter
    if groups is None:
        return collective_us(op, inter, ranks, nbytes)
    gmap = parse_groups(groups, ranks)
    g = gmap.max_group_size
    n_groups = gmap.n_groups
    if op == "allreduce":
        return (
            reduce_us(intra, g, nbytes)
            + allreduce_us(inter, n_groups, nbytes)
            + bcast_us(intra, g, nbytes)
        )
    if op == "bcast":
        return bcast_us(inter, n_groups, nbytes) + bcast_us(intra, g, nbytes)
    if op == "barrier":
        return (
            barrier_us(intra, g)
            + barrier_us(inter, n_groups)
            + barrier_us(intra, g)
        )
    if op == "gather":
        return gather_us(intra, g, nbytes) \
            + gather_us(inter, n_groups, nbytes * g)
    if op == "allgather":
        return (
            gather_us(intra, g, nbytes)
            + allgather_us(inter, n_groups, nbytes * g)
            + bcast_us(intra, g, nbytes * ranks)
        )
    raise ValueError(
        f"unknown scaling op {op!r}; available: {SCALING_OPS}"
    )


def predict_ratio(op: str, ranks: int, nbytes: int, groups: str) -> float:
    """Predicted hierarchical/flat latency ratio (< 1 = hierarchy wins)."""
    flat = predict_us(op, ranks, nbytes, None)
    if flat <= 0:
        return 1.0
    return predict_us(op, ranks, nbytes, groups) / flat


if __name__ == "__main__":
    sys.exit(_child_main())
