"""``ombpy`` — the OMB-Py command-line driver.

Run a benchmark under the multi-process launcher::

    ombpy-run -n 2 ombpy osu_latency -b numpy
    ombpy-run -n 4 ombpy osu_allreduce --api buffer -m 4:65536

or self-hosted on ranks-as-threads (no launcher needed)::

    ombpy osu_latency --threads 2 -b bytearray
    ombpy osu_allreduce --threads 4 -d gpu -b cupy

``--validate`` runs the sweep under the runtime MPI verifier
(:mod:`repro.analysis`): deadlocks, cross-rank collective mismatches,
count mismatches, and leaked requests raise bounded diagnostics instead
of hanging the run or corrupting results.  ``--sanitize`` adds the
buffer-race sanitizer (write-after-Isend, read/write-before-Wait,
overlapping pinned buffers, mid-collective mutation; see docs/race.md);
the two flags compose.  The companion static checker is ``ombpy-lint``.
"""

from __future__ import annotations

import argparse
import os
import sys

from ..mpi import init as runtime_init
from ..mpi.world import run_on_threads
from . import options as opt_mod
from .output import print_table
from .registry import available_benchmarks, get_benchmark
from .runner import BenchContext


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ombpy",
        description="OMB-Py: MPI micro-benchmarks for Python.",
    )
    parser.add_argument(
        "benchmark",
        help="benchmark name (use 'list' to enumerate)",
    )
    parser.add_argument(
        "--threads", type=int, default=None, metavar="N",
        help="self-host on N ranks-as-threads instead of the launcher",
    )
    parser.add_argument(
        "--faults", default=None, metavar="PLAN.json",
        help="with --threads: run the sweep under the deterministic "
        "fault injector using this FaultPlan (see docs/resilience.md); "
        "for process runs pass the flag to ombpy-run instead",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None, metavar="SEED",
        help="with --threads: shorthand for the default survivable "
        "chaos mix (message delays + slow-rank stalls) derived from "
        "SEED",
    )
    parser.add_argument(
        "--reliable", action="store_true",
        help="with --threads: stack the ack/retransmit reliable-delivery "
        "layer over the (possibly faulty) transport; for process runs "
        "pass --reliable to ombpy-run instead",
    )
    parser.add_argument(
        "--recover", action="store_true",
        help="survive rank failures: on RankFailedError the survivors "
        "revoke + shrink the communicator (ULFM-style) and re-run the "
        "sweep; pair with ombpy-run --recover for process runs",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the result table to FILE (.csv or .json by "
        "extension)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="collect per-rank metrics during the sweep and write the "
        "merged job view to --metrics-out (plus a per-rank summary "
        "table on stderr)",
    )
    parser.add_argument(
        "--metrics-out", default="metrics.json", metavar="FILE",
        help="where to write the merged job metrics (default: "
        "metrics.json)",
    )
    parser.add_argument(
        "--trace-out", default=None, metavar="FILE",
        help="record per-rank MPI spans and message events and write "
        "the merged trace to FILE: Chrome trace JSON, or JSONL when "
        "FILE ends in .jsonl (implies --metrics)",
    )
    parser.add_argument(
        "--simulate", default=None, metavar="CLUSTER",
        help="instead of running live, project the benchmark onto a "
        "modelled cluster (Frontera, Stampede2, RI2, RI2-GPU); "
        "--simulate-nodes/--simulate-ppn control the layout",
    )
    parser.add_argument("--simulate-nodes", type=int, default=2)
    parser.add_argument("--simulate-ppn", type=int, default=1)
    opt_mod.add_arguments(parser)
    return parser


_SIM_COLLECTIVES = {
    "osu_allreduce": "allreduce",
    "osu_allgather": "allgather",
    "osu_alltoall": "alltoall",
    "osu_bcast": "bcast",
    "osu_reduce": "reduce",
    "osu_gather": "gather",
    "osu_scatter": "scatter",
    "osu_reduce_scatter": "reduce_scatter",
    "osu_barrier": "barrier",
}


def _simulate(args, options) -> int:
    """Project a benchmark onto a modelled cluster (no live ranks)."""
    from ..simulator import CLUSTERS, simulate_collective, simulate_pt2pt

    try:
        cluster = CLUSTERS[args.simulate]
    except KeyError:
        print(
            f"ombpy: unknown cluster {args.simulate!r}; choose from "
            f"{', '.join(CLUSTERS)}", file=sys.stderr,
        )
        return 2
    sizes = [
        s for s in _power_sizes(options.min_size, options.max_size)
    ]
    api = options.api if options.api != "native" else "native"
    buffer = options.buffer
    if args.benchmark == "osu_latency":
        placement = "intra" if args.simulate_nodes <= 1 else "inter"
        table = simulate_pt2pt(
            cluster, placement, api=api, buffer=buffer, sizes=sizes
        )
    elif args.benchmark in ("osu_bw", "osu_bibw"):
        placement = "intra" if args.simulate_nodes <= 1 else "inter"
        table = simulate_pt2pt(
            cluster, placement, api=api, buffer=buffer,
            metric="bandwidth", sizes=sizes,
        )
        if args.benchmark == "osu_bibw":
            table.rows = [r.scaled(2.0) for r in table.rows]
    elif args.benchmark in _SIM_COLLECTIVES:
        table = simulate_collective(
            _SIM_COLLECTIVES[args.benchmark], cluster,
            nodes=args.simulate_nodes, ppn=args.simulate_ppn,
            api=api, buffer=buffer, sizes=sizes,
        )
    else:
        print(
            f"ombpy: {args.benchmark} has no simulation mapping",
            file=sys.stderr,
        )
        return 2
    print_table(table, options.full_stats)
    if args.output:
        _write_output(table, args.output, options.full_stats)
    return 0


def _power_sizes(lo: int, hi: int):
    size = max(lo, 1)
    # Round up to a power of two, as the live sweep does.
    while size & (size - 1):
        size += 1
    while size <= hi:
        yield size
        size <<= 1


def _write_output(table, path: str, full_stats: bool) -> None:
    from pathlib import Path

    from .export import table_to_csv, table_to_json

    target = Path(path)
    if target.suffix == ".json":
        target.write_text(table_to_json(table))
    else:
        target.write_text(table_to_csv(table, full_stats))


def _write_job_telemetry(dumps: dict, args) -> None:
    """Write merged metrics/trace files + the stderr summary (rank 0)."""
    from ..telemetry.export import render_summary, write_job_files

    if not dumps:
        return
    write_job_files(dumps, args.metrics_out, args.trace_out)
    print(render_summary(dumps), end="", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    tele_env: list[str] = []
    if args.metrics or args.trace_out:
        from ..telemetry import ENV_METRICS, ENV_TRACE

        # The flags travel as environment so the world bootstrap (both
        # the threads fabric and launcher-spawned processes) arms every
        # rank's telemetry uniformly.
        os.environ[ENV_METRICS] = "1"
        tele_env.append(ENV_METRICS)
        if args.trace_out:
            os.environ[ENV_TRACE] = "1"
            tele_env.append(ENV_TRACE)
    try:
        return _run(args)
    finally:
        for key in tele_env:
            os.environ.pop(key, None)


def _run(args) -> int:
    if args.benchmark == "list":
        for name in available_benchmarks():
            print(name)
        return 0

    try:
        bench = get_benchmark(args.benchmark)
        options = opt_mod.from_args(args)
    except (KeyError, ValueError) as exc:
        print(f"ombpy: {exc}", file=sys.stderr)
        return 2

    if args.simulate is not None:
        return _simulate(args, options)

    fault_plan = None
    if args.faults is not None or args.fault_seed is not None:
        from ..faults import FaultPlan

        if args.threads is None:
            print(
                "ombpy: --faults/--fault-seed apply to --threads runs; "
                "for process runs use ombpy-run --faults/--fault-seed",
                file=sys.stderr,
            )
            return 2
        fault_plan = (
            FaultPlan.from_file(args.faults) if args.faults is not None
            else FaultPlan.chaos(args.fault_seed)
        )

    if args.threads is not None:
        tele_dumps: dict[int, dict] = {}

        def sweep(comm):
            table = bench.run(BenchContext(comm, options))
            tele = comm.endpoint.telemetry
            if tele is not None:
                tele_dumps[comm.endpoint.world_rank] = tele.dump()
            return table

        if args.recover:
            from ..mpi import ulfm

            def worker(comm):
                table, _final = ulfm.run_with_recovery(comm, sweep)
                return table
        else:
            worker = sweep
        tables = run_on_threads(
            args.threads, worker, fault_plan=fault_plan,
            reliable=args.reliable, tolerate_crashes=args.recover,
        )
        # Under --recover a crashed rank leaves a None result; print the
        # first survivor's table.
        table = next(t for t in tables if t is not None)
        print_table(table, options.full_stats)
        if args.output:
            _write_output(table, args.output, options.full_stats)
        if args.metrics or args.trace_out:
            _write_job_telemetry(tele_dumps, args)
        return 0

    from ..mpi.exceptions import (
        RANK_FAILED_EXIT, CommRevokedError, RankFailedError,
    )

    world = runtime_init()
    comm = world.comm
    try:
        if args.recover and comm.size > 1:
            from ..mpi import ulfm

            table, comm = ulfm.run_with_recovery(
                comm, lambda c: bench.run(BenchContext(c, options))
            )
        else:
            table = bench.run(BenchContext(comm, options))
        # Rank 0 of the *final* communicator prints: under --recover the
        # original rank 0 may be the one that died.
        if comm.rank == 0:
            print_table(table, options.full_stats)
            if args.output:
                _write_output(table, args.output, options.full_stats)
        tele = world.endpoint.telemetry
        if tele is not None and (args.metrics or args.trace_out):
            # Collective gather of every rank's dump over the control
            # plane; rank 0 of the (possibly shrunk) communicator
            # writes the job files.
            from ..telemetry.export import collect_job

            job_dumps = collect_job(comm, tele)
            if job_dumps is not None:
                _write_job_telemetry(job_dumps, args)
    except (RankFailedError, CommRevokedError) as exc:
        # A peer died mid-run (and recovery, if enabled, ran out of
        # ranks).  Exit with the dedicated cascade code so the launcher
        # attributes the job failure to the dead rank, not this survivor.
        print(f"ombpy: rank {world.rank}: {exc}", file=sys.stderr)
        return RANK_FAILED_EXIT
    finally:
        stats = world.reliability_stats()
        if stats is not None and world.endpoint.telemetry is None:
            # Plain-stderr fallback; with telemetry on the same counters
            # arrive in the job metrics via the registry mirror.
            rendered = " ".join(f"{k}={v}" for k, v in stats.items())
            print(
                f"ombpy: rank {world.rank}: reliability {rendered}",
                file=sys.stderr,
            )
        world.finalize()
    return 0


if __name__ == "__main__":
    sys.exit(main())
