"""Multi-threaded latency (osu_latency_mt).

OMB's osu_latency_mt measures ping-pong latency when several threads per
rank communicate concurrently — exactly the THREAD_MULTIPLE regime the
paper identifies behind the full-subscription anomaly (mpi4py initializes
THREAD_MULTIPLE; OMB's single-threaded tests use THREAD_SINGLE).  Each of
T threads on rank 0 ping-pongs with a partner thread on rank 1 over a
private tag; the reported latency is the mean across threads.
"""

from __future__ import annotations

import threading
import time

from ..runner import BenchContext, Benchmark
from ..util import allocate


class MultiThreadLatencyBenchmark(Benchmark):
    name = "osu_latency_mt"
    metric = "latency_us"
    min_ranks = 2
    apis = ("buffer",)

    BASE_TAG = 32
    DEFAULT_THREADS = 4

    def run_size(
        self, ctx: BenchContext, size: int, iterations: int, warmup: int
    ) -> float | None:
        rank = ctx.rank
        nthreads = int(ctx.options.extra.get("threads", self.DEFAULT_THREADS))
        if rank > 1:
            ctx.barrier()
            return None

        comm = ctx.bcomm
        results = [0.0] * nthreads
        errors: list[BaseException | None] = [None] * nthreads

        def pingpong(tid: int) -> None:
            try:
                tag = self.BASE_TAG + tid
                sbuf = allocate(ctx.options.buffer, size).obj
                rbuf = allocate(ctx.options.buffer, size).obj
                for _ in range(warmup):
                    self._one(comm, rank, sbuf, rbuf, tag)
                start = time.perf_counter_ns()
                for _ in range(iterations):
                    self._one(comm, rank, sbuf, rbuf, tag)
                elapsed = time.perf_counter_ns() - start
                results[tid] = elapsed / (2 * iterations) / 1e3
            except BaseException as exc:  # noqa: BLE001 - joined below
                errors[tid] = exc

        threads = [
            threading.Thread(target=pingpong, args=(t,), daemon=True)
            for t in range(nthreads)
        ]
        # All communicating threads start after the barrier, together.
        ctx.barrier()
        for t in threads:
            t.start()
        for t in threads:
            t.join(120)
        for err in errors:
            if err is not None:
                raise err
        return sum(results) / nthreads

    @staticmethod
    def _one(comm, rank: int, sbuf, rbuf, tag: int) -> None:
        if rank == 0:
            comm.Send(sbuf, 1, tag)
            comm.Recv(rbuf, 1, tag)
        else:
            comm.Recv(rbuf, 0, tag)
            comm.Send(sbuf, 0, tag)
