"""Point-to-point benchmarks (paper Table II, first row).

* ``osu_latency`` — blocking ping-pong latency (Algorithm 1);
* ``osu_bw`` — windowed uni-directional bandwidth;
* ``osu_bibw`` — windowed bi-directional bandwidth;
* ``osu_multi_lat`` — concurrent ping-pong latency over rank pairs.
"""

from .bandwidth import BandwidthBenchmark, BiBandwidthBenchmark
from .latency import LatencyBenchmark
from .multi_lat import MultiLatencyBenchmark

__all__ = [
    "BandwidthBenchmark",
    "BiBandwidthBenchmark",
    "LatencyBenchmark",
    "MultiLatencyBenchmark",
]
