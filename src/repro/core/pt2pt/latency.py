"""Blocking send/recv ping-pong latency — the paper's Algorithm 1.

Rank 0 sends and waits for the echo; rank 1 echoes.  Latency is the
round-trip time halved, averaged over the iterations.  Only ranks 0 and 1
participate; any further ranks idle through the barrier and statistics
reduction (OSU's osu_latency behaves identically).
"""

from __future__ import annotations

import time

import numpy as np

from ..runner import BenchContext, Benchmark
from ..util import allocate


class LatencyBenchmark(Benchmark):
    name = "osu_latency"
    metric = "latency_us"
    min_ranks = 2
    apis = ("buffer", "pickle", "native")

    TAG = 1

    def run_size(
        self, ctx: BenchContext, size: int, iterations: int, warmup: int
    ) -> float | None:
        rank = ctx.rank
        api = ctx.options.api
        if api == "pickle":
            body = self._pickle_body(ctx, size)
        elif api == "native":
            body = self._native_body(ctx, size)
        else:
            body = self._buffer_body(ctx, size)

        if rank > 1:
            ctx.barrier()
            if ctx.options.validate:
                ctx.barrier()
            return None

        for _ in range(warmup):
            body(rank)
        ctx.barrier()
        start = time.perf_counter_ns()
        for _ in range(iterations):
            body(rank)
        elapsed = time.perf_counter_ns() - start
        if ctx.options.validate:
            self._validate(ctx, size)
        # Halve the round trip: one-way latency, in microseconds.
        return elapsed / (2 * iterations) / 1e3

    def _validate(self, ctx: BenchContext, size: int) -> None:
        """Post-sweep data check (the -c option): rank 0 sends a known
        pattern; rank 1 verifies it arrived intact through whatever
        buffer type and API the sweep used."""
        from ..util import allocate

        n = max(size, 1)
        if ctx.rank == 0:
            pattern = allocate(ctx.options.buffer, n)
            pattern.fill(seed=size & 0xFF)
            ctx.bcomm.Send(pattern.obj, 1, self.TAG + 1)
        elif ctx.rank == 1:
            sink = allocate(ctx.options.buffer, n)
            ctx.bcomm.Recv(sink.obj, 0, self.TAG + 1)
            if not sink.verify(seed=size & 0xFF):
                raise RuntimeError(
                    f"validation failed for {ctx.options.buffer} buffer "
                    f"at message size {size}"
                )
        ctx.barrier()

    # -- API bodies ---------------------------------------------------------
    def _buffer_body(self, ctx: BenchContext, size: int):
        sbuf = allocate(ctx.options.buffer, size).obj
        rbuf = allocate(ctx.options.buffer, size).obj
        comm, tag = ctx.bcomm, self.TAG

        def body(rank: int) -> None:
            if rank == 0:
                comm.Send(sbuf, 1, tag)
                comm.Recv(rbuf, 1, tag)
            elif rank == 1:
                comm.Recv(rbuf, 0, tag)
                comm.Send(sbuf, 0, tag)

        return body

    def _pickle_body(self, ctx: BenchContext, size: int):
        payload = np.zeros(max(size, 1), dtype=np.uint8)
        comm, tag = ctx.bcomm, self.TAG

        def body(rank: int) -> None:
            if rank == 0:
                comm.send(payload, 1, tag)
                comm.recv(1, tag)
            elif rank == 1:
                comm.recv(0, tag)
                comm.send(payload, 0, tag)

        return body

    def _native_body(self, ctx: BenchContext, size: int):
        from ...native.api import RegisteredBuffer

        n = max(size, 1)
        sbuf = RegisteredBuffer(bytearray(n))
        rbuf = RegisteredBuffer(bytearray(n))
        comm, tag = ctx.ncomm, self.TAG

        def body(rank: int) -> None:
            if rank == 0:
                comm.send(sbuf, n, 1, tag)
                comm.recv(rbuf, n, 1, tag)
            elif rank == 1:
                comm.recv(rbuf, n, 0, tag)
                comm.send(sbuf, n, 0, tag)

        return body
