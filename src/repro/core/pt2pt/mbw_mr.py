"""Multiple bandwidth / message rate (osu_mbw_mr).

OSU's aggregate-bandwidth test: ranks split into sender/receiver halves;
every pair runs the windowed bandwidth pattern concurrently.  The row
value is the *aggregate* bandwidth (MB/s) across pairs; the companion
message rate (messages/s) is exposed per size on the benchmark object.
"""

from __future__ import annotations

import time

from ...mpi.request import waitall
from ..runner import BenchContext, Benchmark
from ..util import allocate


class MultiBandwidthBenchmark(Benchmark):
    name = "osu_mbw_mr"
    metric = "bandwidth_mbs"
    min_ranks = 2
    apis = ("buffer",)

    TAG = 21
    ACK_TAG = 22

    def __init__(self) -> None:
        #: messages per second, keyed by message size (aggregate).
        self.message_rate: dict[int, float] = {}

    def check(self, ctx: BenchContext) -> None:
        super().check(ctx)
        if ctx.size % 2 != 0:
            raise ValueError(
                f"{self.name} needs an even number of ranks, got {ctx.size}"
            )

    def run_size(
        self, ctx: BenchContext, size: int, iterations: int, warmup: int
    ) -> float | None:
        rank, nprocs = ctx.rank, ctx.size
        half = nprocs // 2
        is_sender = rank < half
        partner = rank + half if is_sender else rank - half
        window = ctx.options.window_size
        comm = ctx.bcomm
        n = max(size, 1)
        sbuf = allocate(ctx.options.buffer, size).obj
        rbufs = [allocate(ctx.options.buffer, size).obj
                 for _ in range(window)]
        import numpy as np

        ack = np.zeros(1, dtype="i4")

        def one_window() -> None:
            if is_sender:
                reqs = [comm.Isend(sbuf, partner, self.TAG)
                        for _ in range(window)]
                waitall(reqs)
                comm.Recv(ack, partner, self.ACK_TAG)
            else:
                reqs = [comm.Irecv(rbufs[i], partner, self.TAG)
                        for i in range(window)]
                for r in reqs:
                    r.Wait()
                comm.Send(ack, partner, self.ACK_TAG)

        for _ in range(warmup):
            one_window()
        ctx.barrier()
        start = time.perf_counter_ns()
        for _ in range(iterations):
            one_window()
        elapsed_s = (time.perf_counter_ns() - start) / 1e9

        # Per-pair bandwidth; only senders report (receivers return the
        # same window count so the aggregate is senders-only, as in OSU).
        if not is_sender:
            return None
        pair_bw = n * window * iterations / elapsed_s / 1e6
        # Aggregate across pairs happens in the runner's stats reduce; we
        # report the per-pair value scaled by the pair count so the table
        # row reads as aggregate bandwidth.
        aggregate = pair_bw * half
        self.message_rate[size] = (
            window * iterations / elapsed_s * half
        )
        return aggregate
