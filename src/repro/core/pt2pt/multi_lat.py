"""Multi-pair latency (osu_multi_lat).

Ranks split into pairs (i, i + p/2); all pairs ping-pong concurrently, so
the figure captures latency under fabric load.  Every rank reports its
pair's latency; the table records the average/min/max across pairs.
"""

from __future__ import annotations

import time

from ..runner import BenchContext, Benchmark
from ..util import allocate


class MultiLatencyBenchmark(Benchmark):
    name = "osu_multi_lat"
    metric = "latency_us"
    min_ranks = 2
    apis = ("buffer", "native")

    TAG = 4

    def check(self, ctx: BenchContext) -> None:
        super().check(ctx)
        if ctx.size % 2 != 0:
            raise ValueError(
                f"{self.name} needs an even number of ranks, got {ctx.size}"
            )

    def run_size(
        self, ctx: BenchContext, size: int, iterations: int, warmup: int
    ) -> float | None:
        rank, nprocs = ctx.rank, ctx.size
        half = nprocs // 2
        is_sender = rank < half
        partner = rank + half if is_sender else rank - half
        body = self._make_body(ctx, size, partner, is_sender)

        for _ in range(warmup):
            body()
        ctx.barrier()
        start = time.perf_counter_ns()
        for _ in range(iterations):
            body()
        elapsed = time.perf_counter_ns() - start
        return elapsed / (2 * iterations) / 1e3

    def _make_body(
        self, ctx: BenchContext, size: int, partner: int, is_sender: bool
    ):
        if ctx.options.api == "native":
            from ...native.api import RegisteredBuffer

            n = max(size, 1)
            sbuf = RegisteredBuffer(bytearray(n))
            rbuf = RegisteredBuffer(bytearray(n))
            comm = ctx.ncomm

            def native_body() -> None:
                if is_sender:
                    comm.send(sbuf, n, partner, self.TAG)
                    comm.recv(rbuf, n, partner, self.TAG)
                else:
                    comm.recv(rbuf, n, partner, self.TAG)
                    comm.send(sbuf, n, partner, self.TAG)

            return native_body

        sbuf = allocate(ctx.options.buffer, size).obj
        rbuf = allocate(ctx.options.buffer, size).obj
        comm = ctx.bcomm

        def buffer_body() -> None:
            if is_sender:
                comm.Send(sbuf, partner, self.TAG)
                comm.Recv(rbuf, partner, self.TAG)
            else:
                comm.Recv(rbuf, partner, self.TAG)
                comm.Send(sbuf, partner, self.TAG)

        return buffer_body
