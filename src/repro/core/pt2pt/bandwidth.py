"""Windowed bandwidth benchmarks (osu_bw, osu_bibw).

``osu_bw``: rank 0 posts a window of non-blocking sends, rank 1 a window of
non-blocking receives; the receiver acknowledges each window with a 4-byte
message.  Bandwidth = bytes moved / sender elapsed time, in MB/s.

``osu_bibw``: both ranks post a full window in each direction concurrently,
so the reported figure is the sum of both directions.
"""

from __future__ import annotations

import time

import numpy as np

from ...mpi.request import waitall
from ..runner import BenchContext, Benchmark
from ..util import allocate


class BandwidthBenchmark(Benchmark):
    name = "osu_bw"
    metric = "bandwidth_mbs"
    min_ranks = 2
    apis = ("buffer", "pickle", "native")

    TAG = 2
    ACK_TAG = 3
    bidirectional = False

    def run_size(
        self, ctx: BenchContext, size: int, iterations: int, warmup: int
    ) -> float | None:
        rank = ctx.rank
        if rank > 1:
            ctx.barrier()
            return None
        window = ctx.options.window_size
        body = self._make_body(ctx, size, window)

        for _ in range(warmup):
            body(rank)
        ctx.barrier()
        start = time.perf_counter_ns()
        for _ in range(iterations):
            body(rank)
        elapsed_s = (time.perf_counter_ns() - start) / 1e9
        nbytes = size * window * iterations
        if self.bidirectional:
            nbytes *= 2
        # MB/s with MB = 1e6 bytes, the OSU convention.
        return nbytes / elapsed_s / 1e6

    # -- window bodies -------------------------------------------------------
    def _make_body(self, ctx: BenchContext, size: int, window: int):
        api = ctx.options.api
        if api == "pickle":
            return self._pickle_body(ctx, size, window)
        if api == "native":
            return self._native_body(ctx, size, window)
        return self._buffer_body(ctx, size, window)

    def _buffer_body(self, ctx: BenchContext, size: int, window: int):
        sbuf = allocate(ctx.options.buffer, size).obj
        rbufs = [allocate(ctx.options.buffer, size).obj for _ in range(window)]
        ack = np.zeros(1, dtype="i4")
        comm = ctx.bcomm
        bidir = self.bidirectional

        def body(rank: int) -> None:
            if rank == 0:
                reqs = [comm.Isend(sbuf, 1, self.TAG) for _ in range(window)]
                if bidir:
                    rr = [comm.Irecv(rbufs[i], 1, self.TAG)
                          for i in range(window)]
                    for q in rr:
                        q.Wait()
                waitall(reqs)
                comm.Recv(ack, 1, self.ACK_TAG)
            elif rank == 1:
                rr = [comm.Irecv(rbufs[i], 0, self.TAG)
                      for i in range(window)]
                if bidir:
                    reqs = [comm.Isend(sbuf, 0, self.TAG)
                            for _ in range(window)]
                    waitall(reqs)
                for q in rr:
                    q.Wait()
                comm.Send(ack, 0, self.ACK_TAG)

        return body

    def _pickle_body(self, ctx: BenchContext, size: int, window: int):
        payload = np.zeros(max(size, 1), dtype=np.uint8)
        comm = ctx.bcomm
        bidir = self.bidirectional

        def body(rank: int) -> None:
            if rank == 0:
                reqs = [comm.isend(payload, 1, self.TAG)
                        for _ in range(window)]
                if bidir:
                    futs = [comm.irecv(1, self.TAG) for _ in range(window)]
                    for f in futs:
                        f.wait()
                waitall(reqs)
                comm.recv(1, self.ACK_TAG)
            elif rank == 1:
                futs = [comm.irecv(0, self.TAG) for _ in range(window)]
                if bidir:
                    reqs = [comm.isend(payload, 0, self.TAG)
                            for _ in range(window)]
                    waitall(reqs)
                for f in futs:
                    f.wait()
                comm.send(0, 0, self.ACK_TAG)

        return body

    def _native_body(self, ctx: BenchContext, size: int, window: int):
        from ...native.api import RegisteredBuffer

        n = max(size, 1)
        sbuf = RegisteredBuffer(bytearray(n))
        rbufs = [RegisteredBuffer(bytearray(n)) for _ in range(window)]
        ack = RegisteredBuffer(bytearray(4))
        comm = ctx.ncomm
        bidir = self.bidirectional

        def body(rank: int) -> None:
            if rank == 0:
                reqs = [comm.isend(sbuf, n, 1, self.TAG)
                        for _ in range(window)]
                if bidir:
                    rr = [comm.irecv(rbufs[i], n, 1, self.TAG)
                          for i in range(window)]
                    waitall(rr)
                waitall(reqs)
                comm.recv(ack, 4, 1, self.ACK_TAG)
            elif rank == 1:
                rr = [comm.irecv(rbufs[i], n, 0, self.TAG)
                      for i in range(window)]
                if bidir:
                    reqs = [comm.isend(sbuf, n, 0, self.TAG)
                            for _ in range(window)]
                    waitall(reqs)
                waitall(rr)
                comm.send(ack, 4, 0, self.ACK_TAG)

        return body


class BiBandwidthBenchmark(BandwidthBenchmark):
    name = "osu_bibw"
    bidirectional = True
