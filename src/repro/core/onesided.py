"""One-sided benchmarks: osu_put_latency, osu_get_latency, osu_acc_latency.

Mirrors OMB's one-sided suite: rank 0 is the origin, rank 1 the passive
target; each iteration performs one remotely-completed RMA operation on
the target's window.  These extend the paper's v1 scope (its Table II is
pt2pt + blocking collectives) along the axis OMB itself already covers.
"""

from __future__ import annotations

import time

import numpy as np

from ..mpi.rma import Win
from .runner import BenchContext, Benchmark


class _OneSidedLatency(Benchmark):
    """Common driver: window setup, per-size op loop, teardown."""

    metric = "latency_us"
    min_ranks = 2
    apis = ("buffer",)

    def _operate(self, win: Win, payload, sink, size: int) -> None:
        raise NotImplementedError

    def run_size(
        self, ctx: BenchContext, size: int, iterations: int, warmup: int
    ) -> float | None:
        rank = ctx.rank
        n = max(size, 4)
        window_mem = bytearray(n)
        win = Win(ctx.runtime, window_mem)
        payload = bytearray(b"\x01" * n)
        sink = bytearray(n)
        try:
            value: float | None = None
            if rank == 0:
                for _ in range(warmup):
                    self._operate(win, payload, sink, n)
            win.Fence()
            if rank == 0:
                start = time.perf_counter_ns()
                for _ in range(iterations):
                    self._operate(win, payload, sink, n)
                value = (time.perf_counter_ns() - start) / iterations / 1e3
            win.Fence()
            return value
        finally:
            win.Free()


class PutLatencyBenchmark(_OneSidedLatency):
    name = "osu_put_latency"

    def _operate(self, win, payload, sink, size):
        win.Put(payload, 1)


class GetLatencyBenchmark(_OneSidedLatency):
    name = "osu_get_latency"

    def _operate(self, win, payload, sink, size):
        win.Get(sink, 1)


class AccLatencyBenchmark(_OneSidedLatency):
    name = "osu_acc_latency"
    min_message_size = 4  # accumulates MPI_FLOAT elements

    def _operate(self, win, payload, sink, size):
        arr = np.frombuffer(payload, dtype="f4")
        win.Accumulate(arr, 1)
