"""Buffer allocation and message-size sweeps.

OSU benchmarks sweep powers of two from the minimum to the maximum size
and allocate character buffers; OMB-Py mirrors that per buffer type —
bytearray and NumPy on the CPU, CuPy/PyCUDA/Numba device arrays on the
(simulated) GPU.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

import numpy as np

from .options import Options


def message_sizes(min_size: int, max_size: int) -> Iterator[int]:
    """Powers of two in [min_size, max_size], starting at 1 for min 0/1.

    Size 0 is emitted first when requested (OSU reports a 0-byte row for
    latency tests).
    """
    if min_size == 0:
        yield 0
        size = 1
    else:
        size = 1
        while size < min_size:
            size <<= 1
    while size <= max_size:
        yield size
        size <<= 1


def _fill_pattern(nbytes: int, seed: int) -> np.ndarray:
    """Deterministic byte pattern for validation."""
    return ((np.arange(nbytes) + seed) % 251).astype(np.uint8)


class BufferHandle:
    """A benchmark buffer with uniform fill/readback across buffer types."""

    def __init__(self, obj: Any, kind: str, nbytes: int) -> None:
        self.obj = obj
        self.kind = kind
        self.nbytes = nbytes

    def fill(self, seed: int) -> None:
        """Write the deterministic pattern (used when validating)."""
        pattern = _fill_pattern(self.nbytes, seed)
        if self.kind == "bytearray":
            self.obj[:] = pattern.tobytes()
        elif self.kind == "numpy":
            self.obj[:] = pattern
        elif self.kind == "cupy":
            self.obj.set(pattern)
        elif self.kind == "pycuda":
            self.obj.set(pattern)
        elif self.kind == "numba":
            self.obj.copy_to_device(pattern)
        else:  # pragma: no cover - allocate() validates kinds
            raise ValueError(f"unknown buffer kind {self.kind}")

    def to_numpy(self) -> np.ndarray:
        """Read the buffer back to a host array."""
        if self.kind == "bytearray":
            return np.frombuffer(bytes(self.obj), dtype=np.uint8)
        if self.kind == "numpy":
            return self.obj.copy()
        if self.kind in ("cupy", "pycuda"):
            return self.obj.get()
        if self.kind == "numba":
            return self.obj.copy_to_host()
        raise ValueError(f"unknown buffer kind {self.kind}")

    def verify(self, seed: int) -> bool:
        """Check the buffer holds the pattern written by ``fill(seed)``."""
        return bool(
            np.array_equal(self.to_numpy(), _fill_pattern(self.nbytes, seed))
        )


_ALLOCATORS: dict[str, Callable[[int], Any]] = {}


def _register_cpu_allocators() -> None:
    _ALLOCATORS["bytearray"] = bytearray
    _ALLOCATORS["numpy"] = lambda n: np.zeros(n, dtype=np.uint8)


def _register_gpu_allocators() -> None:
    from ..gpu import cupy_sim, numba_sim, pycuda_sim

    _ALLOCATORS["cupy"] = lambda n: cupy_sim.zeros(n, dtype=np.uint8)
    _ALLOCATORS["pycuda"] = lambda n: pycuda_sim.gpuarray.zeros(
        n, dtype=np.uint8
    )
    _ALLOCATORS["numba"] = lambda n: numba_sim.cuda.device_array(
        n, dtype=np.uint8
    )


_register_cpu_allocators()
_register_gpu_allocators()


def allocate(buffer_kind: str, nbytes: int) -> BufferHandle:
    """Allocate one benchmark buffer of ``nbytes`` bytes."""
    try:
        factory = _ALLOCATORS[buffer_kind]
    except KeyError:
        raise ValueError(
            f"unknown buffer kind {buffer_kind!r}; "
            f"choose from {sorted(_ALLOCATORS)}"
        ) from None
    # Zero-size communication still needs a live object to introspect.
    return BufferHandle(factory(max(nbytes, 1)), buffer_kind, max(nbytes, 1))


def allocate_pair(options: Options, nbytes: int) -> tuple[BufferHandle, BufferHandle]:
    """(send, recv) buffers per the options' buffer type."""
    return allocate(options.buffer, nbytes), allocate(options.buffer, nbytes)
