"""Shared driver for collective latency benchmarks.

Every rank participates; the timed loop runs the collective back-to-back
(OSU style: one barrier before the loop, none inside), and each rank
reports its own average per-call latency.  The runner then reduces
avg/min/max across ranks — the paper: "with collective benchmarks we need
to find the average latency across all participating processes; thus, we
use MPI_Reduce to find that average then report the latency."
"""

from __future__ import annotations

import time
from abc import abstractmethod
from typing import Callable

from ..runner import BenchContext, Benchmark

CollectiveBody = Callable[[], None]


class CollectiveBenchmark(Benchmark):
    """Base class: subclasses build one zero-argument body per size."""

    metric = "latency_us"
    min_ranks = 2
    apis = ("buffer", "pickle", "native")

    @abstractmethod
    def prepare(self, ctx: BenchContext, size: int) -> CollectiveBody:
        """Allocate buffers and return the per-iteration callable."""

    def run_size(
        self, ctx: BenchContext, size: int, iterations: int, warmup: int
    ) -> float | None:
        body = self.prepare(ctx, size)
        for _ in range(warmup):
            body()
        ctx.barrier()
        start = time.perf_counter_ns()
        for _ in range(iterations):
            body()
        elapsed = time.perf_counter_ns() - start
        return elapsed / iterations / 1e3
