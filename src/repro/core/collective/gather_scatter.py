"""Data-movement collectives: osu_allgather, osu_alltoall, osu_gather,
osu_scatter.

The reported message size is the per-rank contribution; aggregate buffers
(receive side of gather/allgather, both sides of alltoall) are ``size *
nprocs`` bytes, as in OSU.
"""

from __future__ import annotations

import numpy as np

from ..runner import BenchContext
from ..util import allocate
from .base import CollectiveBenchmark, CollectiveBody


class AllgatherBenchmark(CollectiveBenchmark):
    name = "osu_allgather"

    def prepare(self, ctx: BenchContext, size: int) -> CollectiveBody:
        api = ctx.options.api
        nprocs = ctx.size
        if api == "pickle":
            payload = np.zeros(max(size, 1), dtype=np.uint8)
            comm = ctx.bcomm
            return lambda: comm.allgather(payload)
        if api == "native":
            from ...native.api import RegisteredBuffer

            n = max(size, 1)
            sbuf = RegisteredBuffer(bytearray(n))
            rbuf = RegisteredBuffer(bytearray(n * nprocs))
            comm = ctx.ncomm
            return lambda: comm.allgather(sbuf, rbuf, n)
        sbuf = allocate(ctx.options.buffer, size).obj
        rbuf = allocate(ctx.options.buffer, max(size, 1) * nprocs).obj
        comm = ctx.bcomm
        return lambda: comm.Allgather(sbuf, rbuf)


class AlltoallBenchmark(CollectiveBenchmark):
    name = "osu_alltoall"

    def prepare(self, ctx: BenchContext, size: int) -> CollectiveBody:
        api = ctx.options.api
        nprocs = ctx.size
        n = max(size, 1)
        if api == "pickle":
            payloads = [
                np.zeros(n, dtype=np.uint8) for _ in range(nprocs)
            ]
            comm = ctx.bcomm
            return lambda: comm.alltoall(payloads)
        if api == "native":
            from ...native.api import RegisteredBuffer

            sbuf = RegisteredBuffer(bytearray(n * nprocs))
            rbuf = RegisteredBuffer(bytearray(n * nprocs))
            comm = ctx.ncomm
            return lambda: comm.alltoall(sbuf, rbuf, n)
        sbuf = allocate(ctx.options.buffer, n * nprocs).obj
        rbuf = allocate(ctx.options.buffer, n * nprocs).obj
        comm = ctx.bcomm
        return lambda: comm.Alltoall(sbuf, rbuf)


class GatherBenchmark(CollectiveBenchmark):
    name = "osu_gather"

    def prepare(self, ctx: BenchContext, size: int) -> CollectiveBody:
        api = ctx.options.api
        nprocs = ctx.size
        n = max(size, 1)
        if api == "pickle":
            payload = np.zeros(n, dtype=np.uint8)
            comm = ctx.bcomm
            return lambda: comm.gather(payload, 0)
        if api == "native":
            from ...native.api import RegisteredBuffer

            sbuf = RegisteredBuffer(bytearray(n))
            rbuf = RegisteredBuffer(bytearray(n * nprocs))
            comm = ctx.ncomm
            return lambda: comm.gather(sbuf, rbuf, n, 0)
        sbuf = allocate(ctx.options.buffer, size).obj
        comm = ctx.bcomm
        if ctx.rank == 0:
            rbuf = allocate(ctx.options.buffer, n * nprocs).obj
            return lambda: comm.Gather(sbuf, rbuf, 0)
        return lambda: comm.Gather(sbuf, None, 0)


class ScatterBenchmark(CollectiveBenchmark):
    name = "osu_scatter"

    def prepare(self, ctx: BenchContext, size: int) -> CollectiveBody:
        api = ctx.options.api
        nprocs = ctx.size
        n = max(size, 1)
        if api == "pickle":
            comm = ctx.bcomm
            if ctx.rank == 0:
                payloads = [
                    np.zeros(n, dtype=np.uint8) for _ in range(nprocs)
                ]
                return lambda: comm.scatter(payloads, 0)
            return lambda: comm.scatter(None, 0)
        if api == "native":
            from ...native.api import RegisteredBuffer

            sbuf = (
                RegisteredBuffer(bytearray(n * nprocs))
                if ctx.rank == 0 else None
            )
            rbuf = RegisteredBuffer(bytearray(n))
            comm = ctx.ncomm
            return lambda: comm.scatter(sbuf, rbuf, n, 0)
        rbuf = allocate(ctx.options.buffer, size).obj
        comm = ctx.bcomm
        if ctx.rank == 0:
            sbuf = allocate(ctx.options.buffer, n * nprocs).obj
            return lambda: comm.Scatter(sbuf, rbuf, 0)
        return lambda: comm.Scatter(None, rbuf, 0)
