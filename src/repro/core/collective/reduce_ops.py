"""Reduction collectives: osu_allreduce, osu_reduce, osu_reduce_scatter.

Like OSU, these operate on MPI_FLOAT elements (element size 4), so the
sweep skips byte sizes below 4; the message size reported is the byte size
of the contribution vector.
"""

from __future__ import annotations

import numpy as np

from ...mpi import ops
from ..runner import BenchContext
from ..util import allocate
from .base import CollectiveBenchmark, CollectiveBody

_FLOAT = "MPI_FLOAT"


def _typed_pair(ctx: BenchContext, size: int):
    """(send, recv) buffers of `size` bytes viewed as MPI_FLOATs."""
    sbuf = allocate(ctx.options.buffer, size).obj
    rbuf = allocate(ctx.options.buffer, size).obj
    return [sbuf, _FLOAT], [rbuf, _FLOAT]


class AllreduceBenchmark(CollectiveBenchmark):
    name = "osu_allreduce"
    min_message_size = 4

    def prepare(self, ctx: BenchContext, size: int) -> CollectiveBody:
        api = ctx.options.api
        if api == "pickle":
            payload = np.zeros(size // 4, dtype=np.float32)
            comm = ctx.bcomm
            return lambda: comm.allreduce(payload, ops.SUM)
        if api == "native":
            send = np.zeros(size // 4, dtype=np.float32)
            recv = np.zeros(size // 4, dtype=np.float32)
            comm = ctx.ncomm
            count = size // 4
            return lambda: comm.allreduce(send, recv, count, ops.SUM)
        sspec, rspec = _typed_pair(ctx, size)
        comm = ctx.bcomm
        return lambda: comm.Allreduce(sspec, rspec, ops.SUM)


class ReduceBenchmark(CollectiveBenchmark):
    name = "osu_reduce"
    min_message_size = 4

    def prepare(self, ctx: BenchContext, size: int) -> CollectiveBody:
        api = ctx.options.api
        if api == "pickle":
            payload = np.zeros(size // 4, dtype=np.float32)
            comm = ctx.bcomm
            return lambda: comm.reduce(payload, ops.SUM, 0)
        if api == "native":
            send = np.zeros(size // 4, dtype=np.float32)
            recv = np.zeros(size // 4, dtype=np.float32)
            comm = ctx.ncomm
            count = size // 4
            return lambda: comm.reduce(send, recv, count, ops.SUM, 0)
        sspec, rspec = _typed_pair(ctx, size)
        comm = ctx.bcomm
        if ctx.rank == 0:
            return lambda: comm.Reduce(sspec, rspec, ops.SUM, 0)
        return lambda: comm.Reduce(sspec, None, ops.SUM, 0)


class ReduceScatterBenchmark(CollectiveBenchmark):
    name = "osu_reduce_scatter"
    min_message_size = 4
    apis = ("buffer", "native")

    def prepare(self, ctx: BenchContext, size: int) -> CollectiveBody:
        # Total vector of size bytes; each rank receives an equal share
        # (remainder elements go to the last rank, OSU-style block counts).
        count = size // 4
        nprocs = ctx.size
        base = count // nprocs
        counts = [base] * nprocs
        counts[-1] += count - base * nprocs
        api = ctx.options.api
        if api == "native":
            send = np.zeros(count, dtype=np.float32)
            recv = np.zeros(max(counts[ctx.rank], 1), dtype=np.float32)
            comm = ctx.ncomm
            return lambda: comm.reduce_scatter(send, recv, counts, ops.SUM)
        sbuf = allocate(ctx.options.buffer, size).obj
        rbuf = allocate(
            ctx.options.buffer, max(counts[ctx.rank] * 4, 4)
        ).obj
        comm = ctx.bcomm
        return lambda: comm.Reduce_scatter(
            [sbuf, _FLOAT], [rbuf, _FLOAT], counts, ops.SUM
        )

    # reduce_scatter needs at least one element per rank to be meaningful;
    # clamp smaller requested sizes up to one float per rank.
    def run_size(self, ctx, size, iterations, warmup):
        size = max(size, ctx.size * 4)
        return super().run_size(ctx, size, iterations, warmup)
