"""osu_bcast — broadcast latency from rank 0."""

from __future__ import annotations

import numpy as np

from ..runner import BenchContext
from ..util import allocate
from .base import CollectiveBenchmark, CollectiveBody


class BcastBenchmark(CollectiveBenchmark):
    name = "osu_bcast"

    def prepare(self, ctx: BenchContext, size: int) -> CollectiveBody:
        api = ctx.options.api
        if api == "pickle":
            payload = np.zeros(max(size, 1), dtype=np.uint8)
            comm = ctx.bcomm
            root_payload = payload if ctx.rank == 0 else None
            return lambda: comm.bcast(root_payload, 0)
        if api == "native":
            from ...native.api import RegisteredBuffer

            n = max(size, 1)
            buf = RegisteredBuffer(bytearray(n))
            comm = ctx.ncomm
            return lambda: comm.bcast(buf, n, 0)
        buf = allocate(ctx.options.buffer, size).obj
        comm = ctx.bcomm
        return lambda: comm.Bcast(buf, 0)
