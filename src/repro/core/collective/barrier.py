"""osu_barrier — barrier latency.

Size-independent: the sweep collapses to a single row (OSU prints no size
column for barrier; we report one row at size 0 for table uniformity).
"""

from __future__ import annotations

from ..options import Options
from ..results import ResultRow, ResultTable
from ..runner import BenchContext
from .base import CollectiveBenchmark, CollectiveBody


class BarrierBenchmark(CollectiveBenchmark):
    name = "osu_barrier"
    apis = ("buffer", "native")

    def prepare(self, ctx: BenchContext, size: int) -> CollectiveBody:
        if ctx.options.api == "native":
            return ctx.ncomm.barrier
        return ctx.bcomm.Barrier

    def run(self, ctx: BenchContext) -> ResultTable:
        self.check(ctx)
        opt: Options = ctx.options
        table = ResultTable(
            benchmark=self.name, metric=self.metric, ranks=ctx.size,
            buffer=opt.buffer, api=opt.api,
        )
        value = self.run_size(ctx, 0, opt.iterations, opt.warmup)
        avg, mn, mx, _count = ctx.reduce_stats(value)
        table.add(ResultRow(0, avg, mn, mx, opt.iterations))
        return table
