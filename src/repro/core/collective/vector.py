"""Vector-variant collectives: osu_allgatherv, osu_alltoallv, osu_gatherv,
osu_scatterv.

As in OSU, every rank contributes the same nominal size (the v-machinery is
exercised with uniform counts, which is what lets the latency be compared
against the non-v tests), with the count arrays spelled out explicitly.
"""

from __future__ import annotations

from ..runner import BenchContext
from ..util import allocate
from .base import CollectiveBenchmark, CollectiveBody


class GathervBenchmark(CollectiveBenchmark):
    name = "osu_gatherv"
    apis = ("buffer",)

    def prepare(self, ctx: BenchContext, size: int) -> CollectiveBody:
        nprocs = ctx.size
        n = max(size, 1)
        counts = [n] * nprocs
        sbuf = allocate(ctx.options.buffer, size).obj
        comm = ctx.bcomm
        if ctx.rank == 0:
            rbuf = allocate(ctx.options.buffer, n * nprocs).obj
            return lambda: comm.Gatherv(sbuf, [rbuf, counts], 0)
        return lambda: comm.Gatherv(sbuf, None, 0)


class ScattervBenchmark(CollectiveBenchmark):
    name = "osu_scatterv"
    apis = ("buffer",)

    def prepare(self, ctx: BenchContext, size: int) -> CollectiveBody:
        nprocs = ctx.size
        n = max(size, 1)
        counts = [n] * nprocs
        rbuf = allocate(ctx.options.buffer, size).obj
        comm = ctx.bcomm
        if ctx.rank == 0:
            sbuf = allocate(ctx.options.buffer, n * nprocs).obj
            return lambda: comm.Scatterv([sbuf, counts], rbuf, 0)
        return lambda: comm.Scatterv(None, rbuf, 0)


class AllgathervBenchmark(CollectiveBenchmark):
    name = "osu_allgatherv"
    apis = ("buffer",)

    def prepare(self, ctx: BenchContext, size: int) -> CollectiveBody:
        nprocs = ctx.size
        n = max(size, 1)
        counts = [n] * nprocs
        sbuf = allocate(ctx.options.buffer, size).obj
        rbuf = allocate(ctx.options.buffer, n * nprocs).obj
        comm = ctx.bcomm
        return lambda: comm.Allgatherv(sbuf, [rbuf, counts])


class AlltoallvBenchmark(CollectiveBenchmark):
    name = "osu_alltoallv"
    apis = ("buffer",)

    def prepare(self, ctx: BenchContext, size: int) -> CollectiveBody:
        nprocs = ctx.size
        n = max(size, 1)
        counts = [n] * nprocs
        sbuf = allocate(ctx.options.buffer, n * nprocs).obj
        rbuf = allocate(ctx.options.buffer, n * nprocs).obj
        comm = ctx.bcomm
        return lambda: comm.Alltoallv([sbuf, counts], [rbuf, counts])
