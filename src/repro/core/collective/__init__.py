"""Blocking-collective benchmarks (paper Table II, rows 2-3).

Latency tests for Allgather, Allreduce, Alltoall, Barrier, Bcast, Gather,
Reduce, Reduce_scatter, and Scatter, plus the vector variants Allgatherv,
Alltoallv, Gatherv, and Scatterv.
"""

from .barrier import BarrierBenchmark
from .base import CollectiveBenchmark
from .bcast import BcastBenchmark
from .gather_scatter import (
    AllgatherBenchmark,
    AlltoallBenchmark,
    GatherBenchmark,
    ScatterBenchmark,
)
from .reduce_ops import (
    AllreduceBenchmark,
    ReduceBenchmark,
    ReduceScatterBenchmark,
)
from .vector import (
    AllgathervBenchmark,
    AlltoallvBenchmark,
    GathervBenchmark,
    ScattervBenchmark,
)

__all__ = [
    "AllgatherBenchmark",
    "AllgathervBenchmark",
    "AllreduceBenchmark",
    "AlltoallBenchmark",
    "AlltoallvBenchmark",
    "BarrierBenchmark",
    "BcastBenchmark",
    "CollectiveBenchmark",
    "GatherBenchmark",
    "GathervBenchmark",
    "ReduceBenchmark",
    "ReduceScatterBenchmark",
    "ScatterBenchmark",
    "ScattervBenchmark",
]
