"""Non-blocking collective benchmarks: osu_ibcast, osu_iallreduce.

Mirrors OMB's osu_i* tests.  Two quantities are reported per size:

* the row value is pure latency — ``i<op>`` immediately followed by
  ``wait()``;
* communication/computation **overlap** (the point of non-blocking
  collectives) is computed OSU-style from a run with matching compute
  injected between start and wait::

      overlap% = max(0, 100 * (1 - (t_total - t_compute) / t_pure))

  and stored per size in ``table_extra`` (exposed for the ablation bench).
"""

from __future__ import annotations

import time

import numpy as np

from ..mpi import ops
from ..mpi.collectives.nonblocking import NonBlockingCollectives
from .runner import BenchContext, Benchmark


def _busy_compute(seconds: float) -> None:
    deadline = time.perf_counter() + seconds
    while time.perf_counter() < deadline:
        pass


class _NonBlockingCollective(Benchmark):
    metric = "latency_us"
    min_ranks = 2
    apis = ("buffer",)

    def __init__(self) -> None:
        self.overlap_percent: dict[int, float] = {}

    def _start(self, nb: NonBlockingCollectives, ctx: BenchContext,
               size: int):
        raise NotImplementedError

    def run_size(
        self, ctx: BenchContext, size: int, iterations: int, warmup: int
    ) -> float | None:
        nb = NonBlockingCollectives(ctx.runtime)
        for _ in range(warmup):
            self._start(nb, ctx, size).wait()
        ctx.barrier()

        # Pure latency: start + wait back to back.
        start = time.perf_counter_ns()
        for _ in range(iterations):
            self._start(nb, ctx, size).wait()
        pure_us = (time.perf_counter_ns() - start) / iterations / 1e3

        # Overlap: inject compute equal to the pure latency.
        compute_s = pure_us / 1e6
        ctx.barrier()
        start = time.perf_counter_ns()
        for _ in range(iterations):
            req = self._start(nb, ctx, size)
            _busy_compute(compute_s)
            req.wait()
        total_us = (time.perf_counter_ns() - start) / iterations / 1e3
        compute_us = compute_s * 1e6
        if pure_us > 0:
            overlap = 100.0 * (1.0 - (total_us - compute_us) / pure_us)
            self.overlap_percent[size] = max(0.0, min(100.0, overlap))
        return pure_us


class IbcastBenchmark(_NonBlockingCollective):
    name = "osu_ibcast"

    def _start(self, nb, ctx, size):
        payload = bytes(max(size, 1)) if ctx.rank == 0 else None
        return nb.ibcast(payload, 0)


class IallreduceBenchmark(_NonBlockingCollective):
    name = "osu_iallreduce"
    min_message_size = 4

    def _start(self, nb, ctx, size):
        return nb.iallreduce(
            np.zeros(max(size // 4, 1), dtype=np.float32), ops.SUM
        )
