"""Timing primitives for the benchmark loops.

OSU reports microseconds; everything here is ``perf_counter_ns``-based and
converted at the edge.  ``Wtime`` mirrors ``MPI_Wtime`` for user code.
"""

from __future__ import annotations

import time


def Wtime() -> float:
    """Seconds from a monotonic high-resolution clock (MPI_Wtime)."""
    return time.perf_counter()


class Timer:
    """Accumulating stopwatch used inside the measurement loops."""

    __slots__ = ("_start", "elapsed_ns")

    def __init__(self) -> None:
        self._start = 0
        self.elapsed_ns = 0

    def start(self) -> None:
        self._start = time.perf_counter_ns()

    def stop(self) -> None:
        self.elapsed_ns += time.perf_counter_ns() - self._start

    def reset(self) -> None:
        self.elapsed_ns = 0

    @property
    def elapsed_us(self) -> float:
        return self.elapsed_ns / 1e3

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_ns / 1e9


def ns_to_us(ns: int | float) -> float:
    return ns / 1e3
