"""User options for OMB-Py runs (paper §IV-F).

The paper lists five user-facing knobs — device, buffer type, message-size
range, iteration count, warm-up count — plus the OSU convention of cutting
iterations for large messages.  :class:`Options` carries all of them along
with the API family selector this reproduction adds for its baselines.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field, replace

DEVICES = ("cpu", "gpu")
CPU_BUFFERS = ("bytearray", "numpy")
GPU_BUFFERS = ("cupy", "pycuda", "numba")
BUFFERS = CPU_BUFFERS + GPU_BUFFERS
APIS = ("buffer", "pickle", "native")

# OSU defaults.
DEFAULT_MIN_SIZE = 1
DEFAULT_MAX_SIZE = 1 << 20          # 1 MB keeps laptop runs quick
DEFAULT_ITERATIONS = 100
DEFAULT_WARMUP = 10
LARGE_MESSAGE_SIZE = 8192           # OSU's threshold for trimming iterations
DEFAULT_ITERATIONS_LARGE = 20
DEFAULT_WARMUP_LARGE = 2


@dataclass(frozen=True)
class Options:
    """Validated benchmark options."""

    device: str = "cpu"
    buffer: str = "numpy"
    api: str = "buffer"
    min_size: int = DEFAULT_MIN_SIZE
    max_size: int = DEFAULT_MAX_SIZE
    iterations: int = DEFAULT_ITERATIONS
    warmup: int = DEFAULT_WARMUP
    iterations_large: int = DEFAULT_ITERATIONS_LARGE
    warmup_large: int = DEFAULT_WARMUP_LARGE
    large_message_size: int = LARGE_MESSAGE_SIZE
    validate: bool = False
    sanitize: bool = False          # run the sweep under the race sanitizer
    full_stats: bool = False        # print min/max columns too
    window_size: int = 64           # bandwidth-test in-flight window
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.device not in DEVICES:
            raise ValueError(f"device must be one of {DEVICES}")
        if self.buffer not in BUFFERS:
            raise ValueError(f"buffer must be one of {BUFFERS}")
        if self.api not in APIS:
            raise ValueError(f"api must be one of {APIS}")
        if self.device == "cpu" and self.buffer in GPU_BUFFERS:
            raise ValueError(
                f"buffer {self.buffer!r} requires device='gpu'"
            )
        if self.device == "gpu" and self.buffer in CPU_BUFFERS:
            raise ValueError(
                f"buffer {self.buffer!r} requires device='cpu'"
            )
        if self.min_size < 0 or self.max_size < self.min_size:
            raise ValueError(
                f"invalid size range [{self.min_size}, {self.max_size}]"
            )
        if self.iterations < 1 or self.warmup < 0:
            raise ValueError("iterations must be >= 1 and warmup >= 0")
        if self.window_size < 1:
            raise ValueError("window size must be >= 1")

    def iterations_for(self, size: int) -> tuple[int, int]:
        """(iterations, warmup) for a message size — OSU trims large sizes."""
        if size > self.large_message_size:
            return self.iterations_large, self.warmup_large
        return self.iterations, self.warmup

    def with_(self, **kw) -> "Options":
        """Functional update."""
        return replace(self, **kw)


def add_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the OMB-Py option flags to an argparse parser."""
    parser.add_argument(
        "-d", "--device", choices=DEVICES, default="cpu",
        help="run on CPU or (simulated) GPU buffers",
    )
    parser.add_argument(
        "-b", "--buffer", choices=BUFFERS, default=None,
        help="communication buffer type (default: numpy for cpu, "
        "cupy for gpu)",
    )
    parser.add_argument(
        "--api", choices=APIS, default="buffer",
        help="buffer = upper-case direct methods, pickle = lower-case "
        "object methods, native = bindings-free baseline",
    )
    parser.add_argument(
        "-m", "--message-sizes", default=None, metavar="MIN:MAX",
        help=f"message size range in bytes "
        f"(default {DEFAULT_MIN_SIZE}:{DEFAULT_MAX_SIZE})",
    )
    parser.add_argument(
        "-i", "--iterations", type=int, default=DEFAULT_ITERATIONS,
        help="timed iterations per message size",
    )
    parser.add_argument(
        "-x", "--warmup", type=int, default=DEFAULT_WARMUP,
        help="untimed warm-up iterations per message size",
    )
    parser.add_argument(
        "-W", "--window-size", type=int, default=64,
        help="in-flight window for bandwidth tests",
    )
    parser.add_argument(
        "-c", "--validate", action="store_true",
        help="verify received data after each size sweep AND run the "
        "sweep under the runtime MPI verifier (deadlock, collective-"
        "mismatch, count-mismatch, and leak detection; see "
        "docs/analysis.md)",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="run the sweep under the buffer-race sanitizer (write-after-"
        "Isend, read/write-before-Wait, overlapping pinned buffers, "
        "mid-collective mutation; see docs/race.md) — composes with "
        "--validate",
    )
    parser.add_argument(
        "-f", "--full", action="store_true", dest="full_stats",
        help="report min/max latency columns as well",
    )


def from_args(args: argparse.Namespace) -> Options:
    """Build validated :class:`Options` from parsed CLI arguments."""
    buffer = args.buffer
    if buffer is None:
        buffer = "numpy" if args.device == "cpu" else "cupy"
    min_size, max_size = DEFAULT_MIN_SIZE, DEFAULT_MAX_SIZE
    if args.message_sizes:
        lo, _, hi = args.message_sizes.partition(":")
        min_size = int(lo)
        max_size = int(hi) if hi else min_size
    return Options(
        device=args.device,
        buffer=buffer,
        api=args.api,
        min_size=min_size,
        max_size=max_size,
        iterations=args.iterations,
        warmup=args.warmup,
        window_size=args.window_size,
        validate=args.validate,
        sanitize=args.sanitize,
        full_stats=args.full_stats,
    )
