"""Benchmark driver.

:class:`Benchmark` implements the measurement pipeline of the paper's
Algorithm 1: per message size — allocate buffers, warm up, barrier so all
ranks start together, run the timed loop, then reduce per-rank statistics
(avg/min/max) across participating ranks with an (untimed) allreduce.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from ..bindings.comm_api import Comm as BindingsComm
from ..mpi import ops
from ..mpi.comm import Comm as RuntimeComm
from ..native.api import NativeComm
from .options import Options
from .results import ResultRow, ResultTable
from .util import message_sizes


class BenchContext:
    """Everything a benchmark body needs: the three API surfaces + options."""

    def __init__(self, runtime: RuntimeComm, options: Options) -> None:
        self.runtime = runtime
        self.bcomm = BindingsComm(runtime)
        self.ncomm = NativeComm(runtime)
        self.options = options

    @property
    def rank(self) -> int:
        return self.runtime.rank

    @property
    def size(self) -> int:
        return self.runtime.size

    def barrier(self) -> None:
        self.runtime.barrier()

    def reduce_stats(self, value: float | None) -> tuple[float, float, float, int]:
        """(avg, min, max, count) of per-rank values across participants.

        Ranks that did not participate in the measurement pass None and
        contribute nothing; every rank receives the statistics.
        """
        val = 0.0 if value is None else float(value)
        flag = 0.0 if value is None else 1.0
        sums = self.runtime.allreduce_array(
            np.array([val, flag], dtype="f8"), ops.SUM
        )
        mn = self.runtime.allreduce_array(
            np.array([val if value is not None else math.inf], dtype="f8"),
            ops.MIN,
        )
        mx = self.runtime.allreduce_array(
            np.array([val if value is not None else -math.inf], dtype="f8"),
            ops.MAX,
        )
        count = int(sums[1])
        if count == 0:
            return 0.0, 0.0, 0.0, 0
        return sums[0] / count, float(mn[0]), float(mx[0]), count


class Benchmark(ABC):
    """Base class for all OMB-Py benchmarks."""

    #: registry key, e.g. "osu_latency"
    name: str = ""
    #: "latency_us" or "bandwidth_mbs"
    metric: str = "latency_us"
    #: smallest meaningful message (reduction tests need >= element size)
    min_message_size: int = 1
    #: smallest communicator that can run this benchmark
    min_ranks: int = 2
    #: which API families this benchmark supports
    apis: tuple[str, ...] = ("buffer", "pickle", "native")

    @abstractmethod
    def run_size(
        self, ctx: BenchContext, size: int, iterations: int, warmup: int
    ) -> float | None:
        """Measure one message size; return this rank's metric or None."""

    def check(self, ctx: BenchContext) -> None:
        """Validate the run configuration before sweeping."""
        if ctx.size < self.min_ranks:
            raise ValueError(
                f"{self.name} needs at least {self.min_ranks} ranks, "
                f"got {ctx.size}"
            )
        if ctx.options.api not in self.apis:
            raise ValueError(
                f"{self.name} does not support api={ctx.options.api!r} "
                f"(supported: {self.apis})"
            )

    def run(self, ctx: BenchContext) -> ResultTable:
        """Sweep all message sizes; every rank returns the full table.

        With ``--validate`` the sweep additionally runs under the runtime
        verifier (:func:`repro.analysis.verify`): deadlocks, collective
        mismatches, count mismatches, and leaked requests raise instead
        of hanging or silently corrupting the measurement.  With
        ``--sanitize`` it runs under the buffer-race sanitizer
        (:func:`repro.analysis.sanitize`): touching a buffer pinned by a
        pending non-blocking operation, or mutating a collective's buffer
        mid-flight, raises at the detection point.  The two compose.
        """
        self.check(ctx)
        opt = ctx.options
        table = ResultTable(
            benchmark=self.name,
            metric=self.metric,
            ranks=ctx.size,
            buffer=opt.buffer,
            api=opt.api,
        )
        from contextlib import ExitStack

        with ExitStack() as stack:
            if opt.validate:
                from ..analysis.verifier import verify

                timeout = float(opt.extra.get("verify_timeout", 60.0))
                stack.enter_context(verify(ctx.runtime, op_timeout=timeout))
            if opt.sanitize:
                from ..analysis.race import sanitize

                stack.enter_context(sanitize(ctx.runtime))
            self._sweep(ctx, table)
        return table

    def _sweep(self, ctx: BenchContext, table: ResultTable) -> None:
        opt = ctx.options
        tele = ctx.runtime.endpoint.telemetry
        for size in message_sizes(opt.min_size, opt.max_size):
            if size < self.min_message_size:
                continue
            iters, warm = opt.iterations_for(size)
            if tele is None:
                value = self.run_size(ctx, size, iters, warm)
            else:
                with tele.phase(self.name, size=size, iterations=iters):
                    value = self.run_size(ctx, size, iters, warm)
            avg, mn, mx, count = ctx.reduce_stats(value)
            if count == 0:
                raise RuntimeError(
                    f"{self.name}: no rank reported a measurement for "
                    f"size {size}"
                )
            table.add(ResultRow(size, avg, mn, mx, iters))


def run_benchmark(
    name: str, runtime: RuntimeComm, options: Options | None = None
) -> ResultTable:
    """Look up a benchmark by name and run it; returns the result table."""
    from .registry import get_benchmark

    bench = get_benchmark(name)
    ctx = BenchContext(runtime, options or Options())
    return bench.run(ctx)
