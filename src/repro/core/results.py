"""Benchmark result records.

A benchmark produces one :class:`ResultRow` per message size, with
avg/min/max statistics reduced across the participating ranks (the paper:
"we run the measured MPI operations for multiple iterations and find the
average, max, and min performance across all participating processes").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class ResultRow:
    """One message-size measurement."""

    size: int
    value: float            # latency in us, or bandwidth in MB/s
    minimum: float = 0.0
    maximum: float = 0.0
    iterations: int = 0

    def scaled(self, factor: float) -> "ResultRow":
        """Row with all statistics multiplied by ``factor``."""
        return ResultRow(
            self.size,
            self.value * factor,
            self.minimum * factor,
            self.maximum * factor,
            self.iterations,
        )


@dataclass
class ResultTable:
    """All rows of one benchmark run plus identifying metadata."""

    benchmark: str
    metric: str                  # "latency_us" | "bandwidth_mbs"
    ranks: int
    buffer: str
    api: str
    rows: list[ResultRow] = field(default_factory=list)

    def add(self, row: ResultRow) -> None:
        self.rows.append(row)

    def sizes(self) -> list[int]:
        return [r.size for r in self.rows]

    def values(self) -> list[float]:
        return [r.value for r in self.rows]

    def row_for(self, size: int) -> ResultRow:
        for r in self.rows:
            if r.size == size:
                return r
        raise KeyError(f"no row for message size {size}")

    def __iter__(self) -> Iterator[ResultRow]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)


def average_overhead(
    base: ResultTable, other: ResultTable, sizes: list[int] | None = None
) -> float:
    """Mean of (other - base) over common sizes — the paper's overhead stat."""
    pick = sizes or sorted(set(base.sizes()) & set(other.sizes()))
    if not pick:
        raise ValueError("tables share no message sizes")
    deltas = [other.row_for(s).value - base.row_for(s).value for s in pick]
    return sum(deltas) / len(deltas)
