"""Figure-level simulation entry points.

These produce the exact curve families the paper's figures plot:

* :func:`simulate_pt2pt` — latency or bandwidth vs message size for one
  (cluster, placement, API, buffer, MPI library) combination;
* :func:`simulate_collective` — collective latency vs message size for a
  (nodes, PPN) layout, with the THREAD_MULTIPLE full-subscription
  behaviour applied to the Python paths;
* :func:`simulate_ml` — execution time and speedup vs process count for
  the three distributed ML benchmarks, calibrated to the paper's
  sequential baselines and 224-core speedups.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.results import ResultRow, ResultTable
from . import calibration
from .clusters import ClusterModel
from .collective_cost import collective_us, congested
from .loggp import NetworkModel
from .mpilibs import MVAPICH2, MPILibProfile

DEFAULT_SMALL_SIZES = [2 ** k for k in range(0, 14)]          # 1 B .. 8 KB
DEFAULT_LARGE_SIZES = [2 ** k for k in range(14, 21)]         # 16 KB .. 1 MB

_GPU_BUFFERS = ("cupy", "pycuda", "numba")


def _pt2pt_net(
    cluster: ClusterModel, placement: str, device: str, mpilib: MPILibProfile
) -> NetworkModel:
    if device == "gpu":
        if cluster.gpu_net is None:
            raise ValueError(f"cluster {cluster.name} has no GPU partition")
        return mpilib.apply(cluster.gpu_net)
    if placement not in ("intra", "inter"):
        raise ValueError("placement must be 'intra' or 'inter'")
    return mpilib.apply(cluster.network(placement == "intra"))


def _pt2pt_overhead_us(
    cluster: ClusterModel,
    placement: str,
    api: str,
    buffer: str,
    nbytes: int,
) -> float:
    """OMB-Py overhead over the native path for one one-way latency."""
    if api == "native":
        return 0.0
    if buffer in _GPU_BUFFERS:
        assert cluster.gpu_buffers is not None
        ovh = cluster.gpu_buffers.call_overhead_us(buffer, nbytes, calls=2)
    else:
        binding = cluster.binding(placement == "intra")
        ovh = binding.call_overhead_us(nbytes, calls=2)
    if api == "pickle":
        ovh += calibration.pickle_extra_us(nbytes, calls=2)
    return ovh


def simulate_pt2pt(
    cluster: ClusterModel,
    placement: str = "intra",
    api: str = "native",
    buffer: str = "numpy",
    device: str = "cpu",
    metric: str = "latency",
    mpilib: MPILibProfile = MVAPICH2,
    sizes: list[int] | None = None,
    window: int = 64,
) -> ResultTable:
    """Latency (us) or bandwidth (MB/s) vs message size for pt2pt."""
    if buffer in _GPU_BUFFERS:
        device = "gpu"
    net = _pt2pt_net(cluster, placement, device, mpilib)
    sizes = sizes or (DEFAULT_SMALL_SIZES + DEFAULT_LARGE_SIZES)
    table = ResultTable(
        benchmark=f"sim_{metric}_{placement}",
        metric="latency_us" if metric == "latency" else "bandwidth_mbs",
        ranks=2,
        buffer=buffer,
        api=api,
    )
    for n in sizes:
        if metric == "latency":
            value = net.latency_us(n) + _pt2pt_overhead_us(
                cluster, placement, api, buffer, n
            )
        elif metric == "bandwidth":
            per_msg = max(net.gap_us(n), calibration.O_MSG_US)
            if api != "native":
                if buffer in _GPU_BUFFERS:
                    assert cluster.gpu_buffers is not None
                    per_msg += cluster.gpu_buffers.call_overhead_us(
                        buffer, 0, calls=1
                    )
                else:
                    binding = cluster.binding(placement == "intra")
                    per_msg += (
                        calibration.BW_PY_CALL_FRACTION * binding.call_us
                        + calibration.BW_PY_BYTE_US * n
                    )
                if api == "pickle":
                    per_msg += calibration.pickle_bw_extra_us(n)
            total = net.latency_us(n) + (window - 1) * per_msg
            value = n * window / total
        else:
            raise ValueError("metric must be 'latency' or 'bandwidth'")
        table.add(ResultRow(n, value))
    return table


def simulate_collective(
    op: str,
    cluster: ClusterModel,
    nodes: int,
    ppn: int = 1,
    api: str = "native",
    buffer: str = "numpy",
    mpilib: MPILibProfile = MVAPICH2,
    sizes: list[int] | None = None,
) -> ResultTable:
    """Collective latency (us) vs message size for a (nodes, ppn) layout."""
    if nodes < 1 or ppn < 1:
        raise ValueError("nodes and ppn must be >= 1")
    if nodes > cluster.max_nodes:
        raise ValueError(
            f"{cluster.name} has {cluster.max_nodes} nodes, asked for {nodes}"
        )
    device_gpu = buffer in _GPU_BUFFERS
    if device_gpu:
        if cluster.gpu_net is None:
            raise ValueError(f"cluster {cluster.name} has no GPU partition")
        net = mpilib.apply(cluster.gpu_net)
    else:
        net = mpilib.apply(cluster.inter if nodes > 1 else cluster.intra)
    p = nodes * ppn
    sizes = sizes or (DEFAULT_SMALL_SIZES + DEFAULT_LARGE_SIZES)
    table = ResultTable(
        benchmark=f"sim_{op}",
        metric="latency_us",
        ranks=p,
        buffer=buffer,
        api=api,
    )
    for n in sizes:
        base = collective_us(op, net, p, n, ppn=ppn)
        value = base
        if api != "native":
            if device_gpu:
                assert cluster.gpu_buffers is not None
                value += calibration.gpu_collective_overhead_us(
                    op, n, p, buffer, cluster.gpu_buffers
                )
            else:
                binding = cluster.binding(nodes == 1)
                value += calibration.cpu_collective_overhead_us(
                    op, n, p, binding
                )
                value += calibration.full_subscription_penalty_us(
                    op, n, p, ppn, cluster.node.cores
                )
        table.add(ResultRow(n, value))
    return table


# ---------------------------------------------------------------------------
# Distributed ML speedup model (Figs 36-38).
#
# The benchmarks are embarrassingly parallel with a small serial fraction
# (dataset broadcast, result gather, fit-everywhere in k-NN); Amdahl's law
# with a per-process coordination cost reproduces the curves.  Serial
# fractions are calibrated from the paper's 224-process speedups:
# f = (224/S - 1)/223 for speedup S.
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class MLWorkload:
    name: str
    seq_time_s: float
    serial_fraction: float
    # Per-process coordination cost (collective setup grows ~log p).
    coord_s_per_log2p: float = 0.002


def _calibrated_fraction(speedup_at_224: float) -> float:
    return (224.0 / speedup_at_224 - 1.0) / 223.0


KNN = MLWorkload(
    "knn", seq_time_s=112.9,
    serial_fraction=_calibrated_fraction(105.6),
)
KMEANS_HPO = MLWorkload(
    "kmeans_hpo", seq_time_s=1059.45,
    serial_fraction=_calibrated_fraction(95.0),
)
MATMUL = MLWorkload(
    "matmul", seq_time_s=79.63,
    serial_fraction=_calibrated_fraction(129.8),
)
ML_WORKLOADS = {w.name: w for w in (KNN, KMEANS_HPO, MATMUL)}

# Paper's x axis: 1..28 on one node, then 2/4/8 full nodes.
DEFAULT_ML_PROCS = [1, 2, 4, 8, 14, 16, 20, 24, 28, 56, 112, 224]


def simulate_ml(
    workload: str | MLWorkload,
    procs: list[int] | None = None,
) -> list[tuple[int, float, float]]:
    """[(processes, time_s, speedup)] for one ML benchmark."""
    w = (
        ML_WORKLOADS[workload] if isinstance(workload, str) else workload
    )
    procs = procs or DEFAULT_ML_PROCS
    out = []
    for p in procs:
        if p < 1:
            raise ValueError(f"process count must be >= 1, got {p}")
        t = w.seq_time_s * (
            w.serial_fraction + (1.0 - w.serial_fraction) / p
        )
        if p > 1:
            t += w.coord_s_per_log2p * math.log2(p)
        out.append((p, t, w.seq_time_s / t))
    return out
