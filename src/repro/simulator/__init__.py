"""``repro.simulator`` — calibrated HPC-cluster performance models.

The paper's evaluation ran on Frontera, Stampede2, and RI2 — 16-node
InfiniBand/Omni-Path clusters with up to 56 cores per node and V100 GPUs.
None of that hardware exists here, so the figures are reproduced through
this package:

* :mod:`repro.simulator.loggp` — Hockney/LogGP point-to-point cost models
  with eager/rendezvous regimes;
* :mod:`repro.simulator.machine`, :mod:`repro.simulator.clusters` — node
  and cluster descriptions with constants calibrated against the paper's
  reported average overheads (Table III and the per-figure numbers);
* :mod:`repro.simulator.mpilibs` — MVAPICH2 vs Intel MPI profile deltas;
* :mod:`repro.simulator.overheads` — the Python-binding overhead model
  (fixed per-call cost + per-byte touch cost + pickle + GPU-buffer-library
  access costs + THREAD_MULTIPLE full-subscription penalties);
* :mod:`repro.simulator.collective_cost` — analytic per-algorithm costs of
  the collectives;
* :mod:`repro.simulator.engine` / :mod:`repro.simulator.des_collectives`
  — a discrete-event simulator running generator-style implementations of
  the same algorithms, used to cross-validate the analytic costs;
* :mod:`repro.simulator.api` — ``simulate_pt2pt`` / ``simulate_collective``
  / ``simulate_ml``, the entry points the figure benchmarks call.
"""

from .api import simulate_collective, simulate_ml, simulate_pt2pt
from .clusters import CLUSTERS, FRONTERA, RI2, RI2_GPU, STAMPEDE2
from .mpilibs import INTEL_MPI, MVAPICH2

__all__ = [
    "CLUSTERS",
    "FRONTERA",
    "INTEL_MPI",
    "MVAPICH2",
    "RI2",
    "RI2_GPU",
    "STAMPEDE2",
    "simulate_collective",
    "simulate_ml",
    "simulate_pt2pt",
]
