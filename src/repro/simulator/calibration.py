"""Per-operation calibration of Python-binding overheads for collectives
and the bandwidth path.

Point-to-point calibration lives with each cluster
(:mod:`repro.simulator.clusters`); this module holds the *shape* constants
that extend those per-cluster numbers to collectives, GPU buffers, the
bandwidth tests, and full-subscription runs.  Each constant is derived
from a specific paper figure; the derivations are in the comments.

Model forms
-----------
CPU collective overhead (rank-level, per call)::

    ovh(n, p) = call_us * CPU_CALL_FACTOR[op]
              + byte_us * cpu_byte_factor(op, p) * n

GPU collective overhead (adds the buffer-library export costs)::

    ovh(n, p, lib) = (GPU_BASE[op] + lib_call * GPU_CALL[op]) * log2(p)
                   + lib_byte * GPU_BYTE_FACTOR[op] * n

Full-subscription (THREAD_MULTIPLE) penalty: piecewise per op — see
:func:`full_subscription_penalty_us`.
"""

from __future__ import annotations

import math

from .overheads import BindingOverheadModel, GpuBufferOverheadModel

# ---------------------------------------------------------------------------
# CPU collectives.
#
# Figs 14/15 (Allreduce, 16 nodes x 1 PPN, Frontera): 0.93 us small and
# 14.13 us large  ->  fixed ~= 4 binding calls (4 * 0.216 = 0.86), byte
# slope (14.13-0.93)/296082 = 4.46e-5 = byte_us * 1.76*log2(16).
# Figs 18/19 (Allgather): 0.92 us small, 23.4 us large  ->  byte slope
# 7.59e-5 = byte_us * 0.75*16  (the binding touches all p gathered blocks).
# ---------------------------------------------------------------------------
CPU_CALL_FACTOR: dict[str, float] = {
    "allreduce": 4.0,
    "allgather": 4.0,
    "alltoall": 4.0,
    "bcast": 2.0,
    "reduce": 3.0,
    "reduce_scatter": 4.0,
    "gather": 3.0,
    "scatter": 3.0,
    "barrier": 1.0,
}


def cpu_byte_factor(op: str, p: int) -> float:
    """Multiplier on the per-byte binding cost for one collective call.

    Calibrated against the Frontera *inter-node* binding byte cost
    (6.8e-7 us/B): allreduce needs slope 4.46e-5 at p=16 -> 16.4*log2(p);
    allgather needs 7.59e-5 -> 7.0*p (the binding touches all p blocks).
    """
    lg = max(math.log2(max(p, 2)), 1.0)
    table = {
        "allreduce": 16.4 * lg,          # two touches per doubling round
        "allgather": 7.0 * p,            # touches all p gathered blocks
        "alltoall": 8.0 * p,
        "bcast": 9.3,
        "reduce": 11.0 * lg,
        "reduce_scatter": 14.0 * lg,
        "gather": 4.7 * p,
        "scatter": 4.7 * p,
        "barrier": 0.0,
    }
    return table[op]


def cpu_collective_overhead_us(
    op: str, nbytes: int, p: int, binding: BindingOverheadModel
) -> float:
    """OMB-Py minus OMB for one CPU collective call."""
    return (
        binding.call_us * CPU_CALL_FACTOR[op]
        + binding.byte_us * cpu_byte_factor(op, p) * nbytes
    )


# ---------------------------------------------------------------------------
# GPU collectives (RI2, 8 nodes x 1 GPU; Figs 24-27).
#
# Solving X + lib_call*K for the three libraries at p=8 (log2 p = 3):
#   Allreduce small: 18.64/17.63/23.1 us -> X = 11.84, K = 3.84
#   Allgather small: 12.14/11.94/17.24 us -> X =  4.35, K = 4.40
# Expressed per log2(p): base = X/3, call = K/3.
# Large-message deltas give the per-op byte factors (fractions of the
# pt2pt per-byte export costs).
# ---------------------------------------------------------------------------
GPU_BASE_PER_LOG2P: dict[str, float] = {
    "allreduce": 11.84 / 3,
    "allgather": 4.35 / 3,
    "alltoall": 5.5 / 3,
    "bcast": 2.4 / 3,
    "reduce": 8.0 / 3,
    "reduce_scatter": 9.0 / 3,
    "gather": 3.0 / 3,
    "scatter": 3.0 / 3,
}
GPU_CALL_PER_LOG2P: dict[str, float] = {
    "allreduce": 3.84 / 3,
    "allgather": 4.40 / 3,
    "alltoall": 4.4 / 3,
    "bcast": 2.0 / 3,
    "reduce": 3.0 / 3,
    "reduce_scatter": 3.5 / 3,
    "gather": 2.5 / 3,
    "scatter": 2.5 / 3,
}
GPU_BYTE_FACTOR: dict[str, float] = {
    "allreduce": 0.45,
    "allgather": 0.70,
    "alltoall": 0.80,
    "bcast": 0.50,
    "reduce": 0.45,
    "reduce_scatter": 0.50,
    "gather": 0.60,
    "scatter": 0.60,
}

_GPU_LIB_FIELDS = {
    "cupy": ("cupy_call_us", "cupy_byte_us"),
    "pycuda": ("pycuda_call_us", "pycuda_byte_us"),
    "numba": ("numba_call_us", "numba_byte_us"),
}


def gpu_collective_overhead_us(
    op: str,
    nbytes: int,
    p: int,
    library: str,
    gpu: GpuBufferOverheadModel,
) -> float:
    """OMB-Py-with-device-buffers minus OMB-GPU for one collective call."""
    call_field, byte_field = _GPU_LIB_FIELDS[library]
    lib_call = getattr(gpu, call_field)
    lib_byte = getattr(gpu, byte_field)
    lg = max(math.log2(max(p, 2)), 1.0)
    return (
        (GPU_BASE_PER_LOG2P[op] + lib_call * GPU_CALL_PER_LOG2P[op]) * lg
        + lib_byte * GPU_BYTE_FACTOR[op] * nbytes
    )


# ---------------------------------------------------------------------------
# THREAD_MULTIPLE full-subscription penalties (Figs 16/17, 20/21).
#
# mpi4py initializes THREAD_MULTIPLE; at 56 PPN the progress threads
# oversubscribe the cores.  Allgather 56 PPN (Figs 20/21): overhead grows
# 8 us @ 1 B -> 345 us @ 8 KB (slope ~0.0412 us/B), blows up through the
# rendezvous switch to a 41 ms peak at 32 KB, then relaxes to ~10 ms as
# the ring algorithm re-pipelines.  Allreduce 56 PPN (Figs 16/17): 4.21 us
# small; large messages degrade as the reduction computation itself is
# descheduled.
# ---------------------------------------------------------------------------
def full_subscription_penalty_us(
    op: str, nbytes: int, p: int, ppn: int, cores: int
) -> float:
    """Extra OMB-Py cost when the node is fully subscribed."""
    if ppn < cores:
        return 0.0
    if op == "allgather":
        if nbytes <= 8192:
            return 7.0 + 0.0412 * nbytes
        if nbytes <= 16384:
            return 20500.0 * (nbytes / 16384.0)
        if nbytes <= 32768:
            return 41000.0 * (nbytes / 32768.0)
        # Past the peak the pipelined ring recovers to ~10 ms.
        return 10000.0
    if op == "allreduce":
        # 4.21 us small-range average (fixed progress-thread cost); the
        # reduction-compute descheduling the paper describes only bites on
        # large messages, so the per-byte term starts past 8 KB.
        return 3.3 + 2.1e-3 * max(0, nbytes - 8192)
    # Other collectives: generic oversubscription cost.
    return 2.0 + 1.0e-3 * nbytes


# ---------------------------------------------------------------------------
# Bandwidth-path constants (Figs 12/13).
#
# The windowed bandwidth test is message-rate limited at small sizes; the
# baseline injects a message every max(gap, O_MSG) us.  The Python path
# overlaps most of its binding work with the injection gap — what remains
# is ~0.25 of a binding call plus a small per-byte term chosen so the
# large-message bandwidth deficit averages the paper's 331 MB/s.
# ---------------------------------------------------------------------------
O_MSG_US = 0.40                 # baseline per-message injection overhead
BW_PY_CALL_FRACTION = 0.50      # unoverlapped fraction of a binding call
BW_PY_BYTE_US = 6.0e-7          # residual per-byte Python cost

# Pickle-path constants (Figs 32-35): one-way overhead = 2 pickle ops.
# Small avg 1.07 us -> pickle_call ~= 0.5 us; the curve diverges past
# 64 KB, reaching ~1510 us at 1 MB -> large per-byte ~= 1.55e-3 us/B.
PICKLE_CALL_US = 0.50
PICKLE_BYTE_US = 6.0e-5
PICKLE_LARGE_BYTES = 65536
PICKLE_LARGE_BYTE_US = 1.55e-3


def pickle_extra_us(nbytes: int, calls: int = 2) -> float:
    """Pickle-path cost over the direct-buffer path for one operation."""
    cost = PICKLE_CALL_US * calls + PICKLE_BYTE_US * nbytes
    if nbytes > PICKLE_LARGE_BYTES:
        cost += PICKLE_LARGE_BYTE_US * (nbytes - PICKLE_LARGE_BYTES)
    return cost


# Per-message pickle cost on the *windowed bandwidth* path (Figs 34/35).
# Serialization overlaps with injection, so the unoverlapped residue is a
# small per-byte term that saturates at 8 KB (the paper's worst point,
# ~2.4 GB/s deficit), stays flat through the 16-64 KB catch-up band, and
# collapses past 64 KB where the allocation+copy regime of the latency
# model takes over.
PICKLE_BW_BYTE_US = 3.0e-5
PICKLE_BW_SATURATION_BYTES = 8192


def pickle_bw_extra_us(nbytes: int) -> float:
    """Unoverlapped per-message pickle cost in the bandwidth window."""
    cost = PICKLE_BW_BYTE_US * min(nbytes, PICKLE_BW_SATURATION_BYTES)
    if nbytes > PICKLE_LARGE_BYTES:
        cost += PICKLE_LARGE_BYTE_US * (nbytes - PICKLE_LARGE_BYTES)
    return cost
