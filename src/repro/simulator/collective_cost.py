"""Analytic cost models of the collective algorithms.

Each function prices one collective call from the algorithm's
communication structure (the same algorithms :mod:`repro.mpi.collectives`
implements) on a given network model.  ``p`` is the total rank count; when
several ranks share a node (``ppn > 1``) the per-byte fabric terms are
scaled by the NIC-sharing factor, the standard first-order congestion
treatment.

The discrete-event simulator (:mod:`repro.simulator.des_collectives`)
cross-validates these formulas on the executable algorithm definitions.
"""

from __future__ import annotations

import math
from dataclasses import replace

from .loggp import NetworkModel


def _ceil_log2(p: int) -> int:
    return max(1, math.ceil(math.log2(max(p, 2))))


def congested(net: NetworkModel, ppn: int) -> NetworkModel:
    """Scale per-byte costs by the NIC-sharing factor for ppn ranks/node."""
    if ppn <= 1:
        return net
    f = float(ppn)
    return replace(
        net,
        beta_us_per_byte=net.beta_us_per_byte * f,
        rendezvous_beta_us_per_byte=(
            None if net.rendezvous_beta_us_per_byte is None
            else net.rendezvous_beta_us_per_byte * f
        ),
        gap_us_per_byte=(
            None if net.gap_us_per_byte is None
            else net.gap_us_per_byte * f
        ),
    )


# Reduction arithmetic: one float op per 4 bytes at a few GFLOP/s.
GAMMA_US_PER_BYTE = 2.5e-7


def barrier_us(net: NetworkModel, p: int) -> float:
    """Dissemination barrier: ceil(log2 p) zero-byte rounds."""
    if p <= 1:
        return 0.0
    return _ceil_log2(p) * net.latency_us(0)


def bcast_us(net: NetworkModel, p: int, n: int) -> float:
    """Binomial below the switch point, scatter+ring-allgather above."""
    if p == 1 or n == 0:
        return 0.0
    steps = _ceil_log2(p)
    binomial = steps * net.latency_us(n)
    if n <= 16384 or p <= 2:
        return binomial
    chunk = -(-n // p)
    scatter = sum(
        net.latency_us(chunk * min(2 ** k, p)) for k in range(steps)
    ) / 2  # pipelined halving: each level moves half the previous volume
    ring = (p - 1) * net.latency_us(chunk)
    return min(binomial, scatter + ring)


def reduce_us(net: NetworkModel, p: int, n: int) -> float:
    """Binomial reduce: log rounds of message + local reduction."""
    if p == 1:
        return 0.0
    per_round = net.latency_us(n) + GAMMA_US_PER_BYTE * n
    return _ceil_log2(p) * per_round


def allreduce_us(net: NetworkModel, p: int, n: int) -> float:
    """Recursive doubling for small, ring for large (the runtime's split)."""
    if p == 1:
        return 0.0
    steps = _ceil_log2(p)
    rd = steps * (net.latency_us(n) + GAMMA_US_PER_BYTE * n)
    if n <= 8192 or p <= 2:
        return rd
    seg = -(-n // p)
    ring = 2 * (p - 1) * (
        net.latency_us(seg) + GAMMA_US_PER_BYTE * seg / 2
    )
    return min(rd, ring)


def allgather_us(net: NetworkModel, p: int, n: int) -> float:
    """Recursive doubling (volume doubles per round) or ring.

    ``n`` is the per-rank block size.
    """
    if p == 1:
        return 0.0
    if n * p <= 32768:
        return sum(
            net.latency_us(n * 2 ** k) for k in range(_ceil_log2(p))
        )
    return (p - 1) * net.latency_us(n)


def alltoall_us(net: NetworkModel, p: int, n: int) -> float:
    """Bruck for tiny blocks, pairwise exchange otherwise."""
    if p == 1:
        return 0.0
    if n <= 256 and p > 2:
        return sum(
            net.latency_us(n * ((p + 1) // 2))
            for _ in range(_ceil_log2(p))
        )
    return (p - 1) * net.latency_us(n)


def gather_us(net: NetworkModel, p: int, n: int) -> float:
    """Binomial gather: round k moves 2^k blocks toward the root."""
    if p == 1:
        return 0.0
    return sum(
        net.latency_us(n * min(2 ** k, p - 2 ** k if p > 2 ** k else 1))
        for k in range(_ceil_log2(p))
    )


def scatter_us(net: NetworkModel, p: int, n: int) -> float:
    """Binomial scatter mirrors gather."""
    return gather_us(net, p, n)


def reduce_scatter_us(net: NetworkModel, p: int, n: int) -> float:
    """Recursive halving (total vector n, result n/p per rank)."""
    if p == 1:
        return 0.0
    total = 0.0
    vol = n / 2
    for _ in range(_ceil_log2(p)):
        total += net.latency_us(int(vol)) + GAMMA_US_PER_BYTE * vol
        vol /= 2
    return total


_COSTS = {
    "barrier": lambda net, p, n: barrier_us(net, p),
    "bcast": bcast_us,
    "reduce": reduce_us,
    "allreduce": allreduce_us,
    "allgather": allgather_us,
    "alltoall": alltoall_us,
    "gather": gather_us,
    "scatter": scatter_us,
    "reduce_scatter": reduce_scatter_us,
}


def collective_us(
    op: str, net: NetworkModel, p: int, n: int, ppn: int = 1
) -> float:
    """Baseline (C OMB) latency of one collective call."""
    try:
        fn = _COSTS[op]
    except KeyError:
        raise ValueError(
            f"unknown collective {op!r}; available: {sorted(_COSTS)}"
        ) from None
    return fn(congested(net, ppn), p, n)
