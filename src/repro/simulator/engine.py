"""Discrete-event simulation engine for rank programs.

A *rank program* is a generator that yields communication events:

* ``("send", dst, nbytes)`` — asynchronous send; the message arrives at
  ``dst`` after the network model's latency;
* ``("recv", src)`` — block until the next message from ``src`` arrives;
* ``("sendrecv", dst, src, nbytes)`` — both, completing at the max;
* ``("compute", us)`` — advance the local clock by a computation.

The engine advances per-rank virtual clocks under Hockney timing: a send
costs the sender nothing locally and is delivered at ``t_send +
latency(n)``, so a ping-pong one-way time equals ``latency(n)`` — the same
convention the analytic models in :mod:`collective_cost` use, which is
what makes cross-validation meaningful.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Generator, Iterable

from .loggp import NetworkModel

Event = tuple
RankProgram = Generator[Event, float, None]


class SimulationError(RuntimeError):
    """Deadlock or protocol violation inside a simulated program."""


def simulate(
    programs: list[RankProgram],
    net: NetworkModel,
    per_send_overhead_us: float = 0.0,
) -> list[float]:
    """Run rank programs to completion; return per-rank finish times (us).

    ``per_send_overhead_us`` charges the *sender's clock* per send — the
    knob that turns the baseline simulation into the "through Python
    bindings" simulation.
    """
    p = len(programs)
    clocks = [0.0] * p
    # inbox[dst][src] -> deque of arrival times
    inbox: list[dict[int, deque]] = [dict() for _ in range(p)]
    # blocked[r] = src the rank waits on, or None if runnable
    blocked: list[int | None] = [None] * p
    finished = [False] * p
    # Value to send into the generator on next resume; None primes a
    # just-started generator (sending a non-None value there is an error).
    resume_value: list[float | None] = [None] * p

    def deliver(src: int, dst: int, arrival: float) -> None:
        inbox[dst].setdefault(src, deque()).append(arrival)

    def try_recv(r: int, src: int) -> float | None:
        q = inbox[r].get(src)
        if not q:
            return None
        arrival = q.popleft()
        return max(clocks[r], arrival)

    def step(r: int) -> None:
        """Advance rank r until it finishes or blocks on an empty recv."""
        gen = programs[r]
        while True:
            try:
                event = gen.send(resume_value[r])
            except StopIteration:
                finished[r] = True
                return
            kind = event[0]
            if kind == "compute":
                clocks[r] += float(event[1])
                resume_value[r] = clocks[r]
            elif kind == "send":
                _, dst, nbytes = event
                clocks[r] += per_send_overhead_us
                deliver(r, dst, clocks[r] + net.latency_us(int(nbytes)))
                resume_value[r] = clocks[r]
            elif kind == "recv":
                _, src = event
                done_at = try_recv(r, src)
                if done_at is None:
                    blocked[r] = src
                    return
                clocks[r] = done_at
                resume_value[r] = clocks[r]
            elif kind == "sendrecv":
                _, dst, src, nbytes = event
                clocks[r] += per_send_overhead_us
                deliver(r, dst, clocks[r] + net.latency_us(int(nbytes)))
                done_at = try_recv(r, src)
                if done_at is None:
                    blocked[r] = src
                    return
                clocks[r] = done_at
                resume_value[r] = clocks[r]
            else:
                raise SimulationError(f"unknown event {event!r} from rank {r}")

    # Prime all generators.
    for r in range(p):
        step(r)

    # Drain: repeatedly unblock ranks whose awaited message has arrived.
    progress = True
    while progress:
        progress = False
        for r in range(p):
            if finished[r] or blocked[r] is None:
                continue
            done_at = try_recv(r, blocked[r])
            if done_at is not None:
                clocks[r] = done_at
                resume_value[r] = clocks[r]
                blocked[r] = None
                step(r)
                progress = True
    if not all(finished):
        stuck = [r for r in range(p) if not finished[r]]
        raise SimulationError(
            f"simulation deadlocked; ranks {stuck} blocked on "
            f"{[blocked[r] for r in stuck]}"
        )
    return clocks


def simulate_collective(
    make_program: Callable[[int, int], RankProgram],
    p: int,
    net: NetworkModel,
    per_send_overhead_us: float = 0.0,
) -> float:
    """Simulate one collective; return the max finish time across ranks."""
    programs = [make_program(r, p) for r in range(p)]
    return max(simulate(programs, net, per_send_overhead_us))
