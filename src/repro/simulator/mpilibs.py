"""MPI library profiles (paper §V-H: MVAPICH2 vs Intel MPI).

A profile perturbs a cluster's network model — real MPI libraries differ
in small-message latency (protocol fast paths) and achieved bandwidth
(pipelining, rendezvous tuning).  Calibration targets: the paper reports a
0.36 us average latency difference and an 856 MB/s average bandwidth
difference between MVAPICH2 and Intel MPI on Frontera inter-node runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .loggp import NetworkModel


@dataclass(frozen=True)
class MPILibProfile:
    """Deltas one MPI implementation applies to the base fabric model.

    Latency and bandwidth are perturbed independently: the paper measures
    a *flat* ~0.36 us latency difference across all sizes (so the delta is
    pure fixed-cost, not per-byte) alongside an 856 MB/s bandwidth
    difference (an injection-rate effect, so it lands on the LogGP gap).
    """

    name: str
    alpha_extra_us: float = 0.0       # added fixed latency (every size)
    injection_factor: float = 1.0     # multiplies achievable message rate

    def apply(self, net: NetworkModel) -> NetworkModel:
        """Return the network model as seen through this MPI library."""
        gap = (
            net.gap_us_per_byte
            if net.gap_us_per_byte is not None
            else net.beta_us_per_byte
        )
        return replace(
            net,
            alpha_us=net.alpha_us + self.alpha_extra_us,
            gap_us_per_byte=gap / self.injection_factor,
        )


# MVAPICH2 2.3.6 — the baseline the clusters are calibrated against.
MVAPICH2 = MPILibProfile(name="MVAPICH2")

# Intel MPI 19.0.9 — calibration (Figs. 28-31): +0.36 us flat latency,
# ~19% lower injection rate on this fabric (average bandwidth difference
# of 856 MB/s across the sweep).
INTEL_MPI = MPILibProfile(
    name="IntelMPI",
    alpha_extra_us=0.36,
    injection_factor=0.81,
)

MPI_LIBS = {p.name: p for p in (MVAPICH2, INTEL_MPI)}
