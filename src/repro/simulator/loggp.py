"""Hockney / LogGP point-to-point cost models.

The classic two-parameter Hockney model prices a message of n bytes at
``alpha + beta * n``; real MPI stacks add protocol regimes — an eager path
for small messages and a rendezvous path (extra handshake latency, better
per-byte rate) for large ones.  :class:`NetworkModel` captures both, which
is all the structure the paper's latency/bandwidth curves need.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """One link class (e.g. intra-node shared memory, inter-node IB).

    All times are microseconds; rates are bytes/microsecond.

    Attributes
    ----------
    alpha_us:
        Zero-byte one-way latency on the eager path.
    beta_us_per_byte:
        Per-byte cost on the eager path (1 / eager bandwidth).
    rendezvous_bytes:
        Message size at which the rendezvous protocol takes over.
    rendezvous_alpha_us:
        Extra fixed handshake cost on the rendezvous path.
    rendezvous_beta_us_per_byte:
        Per-byte cost on the rendezvous path (usually lower: zero-copy).
    gap_us_per_byte:
        LogGP "G": per-byte gap limiting back-to-back injection; governs
        the bandwidth tests' window pipelining.
    """

    alpha_us: float
    beta_us_per_byte: float
    rendezvous_bytes: int = 16384
    rendezvous_alpha_us: float = 0.0
    rendezvous_beta_us_per_byte: float | None = None
    gap_us_per_byte: float | None = None

    def latency_us(self, nbytes: int) -> float:
        """One-way time for a single n-byte message."""
        if nbytes < 0:
            raise ValueError(f"negative message size {nbytes}")
        if nbytes <= self.rendezvous_bytes:
            return self.alpha_us + self.beta_us_per_byte * nbytes
        beta = (
            self.rendezvous_beta_us_per_byte
            if self.rendezvous_beta_us_per_byte is not None
            else self.beta_us_per_byte
        )
        return self.alpha_us + self.rendezvous_alpha_us + beta * nbytes

    def gap_us(self, nbytes: int) -> float:
        """Minimum spacing between consecutive message injections."""
        g = (
            self.gap_us_per_byte
            if self.gap_us_per_byte is not None
            else self.beta_us_per_byte
        )
        return g * nbytes

    def bandwidth_mbs(self, nbytes: int, window: int = 64) -> float:
        """Steady-state windowed bandwidth in MB/s (MB = 1e6 bytes).

        With a window of in-flight messages, throughput is limited by the
        per-message gap; the first message additionally pays latency,
        amortized over the window.
        """
        if nbytes == 0:
            return 0.0
        per_msg = max(self.gap_us(nbytes), 1e-9)
        total_us = self.latency_us(nbytes) + per_msg * (window - 1)
        return (nbytes * window) / total_us  # bytes/us == MB/s


def effective_model(
    intra: NetworkModel, inter: NetworkModel, same_node: bool
) -> NetworkModel:
    """Pick the link model for a rank pair by placement."""
    return intra if same_node else inter
