"""Calibrated cluster models for Frontera, Stampede2, and RI2.

Network base parameters (the "OMB in C" curves) are set to publicly
plausible values for the respective fabrics (InfiniBand HDR-100 on
Frontera, Omni-Path on Stampede2, EDR InfiniBand on RI2, V100+GPUDirect on
RI2's GPU partition).  Binding-overhead parameters are **calibrated
against the paper's reported averages** — the derivations are spelled out
next to each constant.  The calibration inputs are data; every formula
that consumes them lives in :mod:`repro.simulator.overheads` and
:mod:`repro.simulator.collective_cost`.

Calibration recipe (paper Figs. 4-13): the ping-pong one-way overhead of
OMB-Py over OMB is ``2*call_us + byte_us*n``.  Averaging over the paper's
small range (1 B..8 KB, mean n = 1170) and large range (16 KB..1 MB, mean
n = 297252) gives two equations per cluster; solving yields the constants
below.  E.g. Frontera intra-node (0.44 us small, 2.31 us large):
``byte_us = (2.31-0.44)/296082 = 6.32e-6``, ``call_us = (0.44 -
byte_us*1170)/2 = 0.216``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .loggp import NetworkModel
from .machine import GPUModel, NodeModel
from .overheads import BindingOverheadModel, GpuBufferOverheadModel


@dataclass(frozen=True)
class ClusterModel:
    """One cluster: hardware + network + calibrated binding overheads."""

    name: str
    node: NodeModel
    intra: NetworkModel                     # shared-memory path
    inter: NetworkModel                     # fabric path
    binding_intra: BindingOverheadModel     # Python overhead, intra-node
    binding_inter: BindingOverheadModel     # Python overhead, inter-node
    max_nodes: int = 16
    gpu: GPUModel | None = None
    gpu_net: NetworkModel | None = None     # GPUDirect fabric path
    gpu_buffers: GpuBufferOverheadModel | None = None

    def network(self, same_node: bool) -> NetworkModel:
        return self.intra if same_node else self.inter

    def binding(self, same_node: bool) -> BindingOverheadModel:
        return self.binding_intra if same_node else self.binding_inter


# ---------------------------------------------------------------------------
# Frontera: Intel Xeon Platinum 8280 (Cascade Lake), 2x28 cores, 2.7 GHz,
# Mellanox InfiniBand HDR/HDR-100.
# ---------------------------------------------------------------------------
FRONTERA = ClusterModel(
    name="Frontera",
    node=NodeModel(
        cpu="Xeon Platinum 8280", sockets=2, cores_per_socket=28,
        ghz=2.7, ram_gb=192,
    ),
    intra=NetworkModel(
        alpha_us=0.25, beta_us_per_byte=1.0 / 11000,      # ~11 GB/s shm
        rendezvous_bytes=8192, rendezvous_alpha_us=0.9,
        rendezvous_beta_us_per_byte=1.0 / 13000,
        gap_us_per_byte=1.0 / 13000,
    ),
    inter=NetworkModel(
        alpha_us=1.10, beta_us_per_byte=1.0 / 11500,      # HDR-100 ~12 GB/s
        rendezvous_bytes=16384, rendezvous_alpha_us=1.5,
        rendezvous_beta_us_per_byte=1.0 / 12200,
        gap_us_per_byte=1.0 / 12200,
    ),
    # Calibration: Fig 4/5 — 0.44 us small / 2.31 us large.
    binding_intra=BindingOverheadModel(call_us=0.216, byte_us=6.32e-6),
    # Calibration: Fig 10/11 — 0.43 us small / 0.63 us large (inter-node
    # byte cost is tiny: both paths go through the NIC, so Python forces
    # no extra copy the C path avoids).
    binding_inter=BindingOverheadModel(call_us=0.215, byte_us=6.8e-7),
    max_nodes=16,
)

# ---------------------------------------------------------------------------
# Stampede2: Intel Xeon Platinum 8160 (Skylake), 2x24 cores, Intel Omni-Path.
# ---------------------------------------------------------------------------
STAMPEDE2 = ClusterModel(
    name="Stampede2",
    node=NodeModel(
        cpu="Xeon Platinum 8160", sockets=2, cores_per_socket=24,
        ghz=2.7, ram_gb=192,
    ),
    intra=NetworkModel(
        alpha_us=0.35, beta_us_per_byte=1.0 / 9000,
        rendezvous_bytes=8192, rendezvous_alpha_us=1.0,
        rendezvous_beta_us_per_byte=1.0 / 11000,
        gap_us_per_byte=1.0 / 11000,
    ),
    inter=NetworkModel(
        alpha_us=1.35, beta_us_per_byte=1.0 / 10000,      # Omni-Path 100G
        rendezvous_bytes=16384, rendezvous_alpha_us=1.8,
        rendezvous_beta_us_per_byte=1.0 / 11000,
        gap_us_per_byte=1.0 / 11000,
    ),
    # Calibration: Fig 6/7 — 0.41 us small / 4.13 us large.
    binding_intra=BindingOverheadModel(call_us=0.198, byte_us=1.256e-5),
    binding_inter=BindingOverheadModel(call_us=0.198, byte_us=1.0e-6),
    max_nodes=16,
)

# ---------------------------------------------------------------------------
# RI2: Intel Xeon Gold 6132, 2x14 cores, EDR InfiniBand; GPU partition has
# one V100 (32 GB) per node on Xeon E5-2680 v4 hosts.
# ---------------------------------------------------------------------------
RI2 = ClusterModel(
    name="RI2",
    node=NodeModel(
        cpu="Xeon Gold 6132", sockets=2, cores_per_socket=14,
        ghz=2.4, ram_gb=192,
    ),
    intra=NetworkModel(
        alpha_us=0.30, beta_us_per_byte=1.0 / 10000,
        rendezvous_bytes=8192, rendezvous_alpha_us=1.0,
        rendezvous_beta_us_per_byte=1.0 / 12000,
        gap_us_per_byte=1.0 / 12000,
    ),
    inter=NetworkModel(
        alpha_us=1.20, beta_us_per_byte=1.0 / 10500,      # EDR ~12 GB/s
        rendezvous_bytes=16384, rendezvous_alpha_us=1.6,
        rendezvous_beta_us_per_byte=1.0 / 11500,
        gap_us_per_byte=1.0 / 11500,
    ),
    # Calibration: Fig 8/9 — 0.41 us small / 1.76 us large.
    binding_intra=BindingOverheadModel(call_us=0.202, byte_us=4.56e-6),
    binding_inter=BindingOverheadModel(call_us=0.202, byte_us=8.0e-7),
    max_nodes=8,
)

# GPU partition of RI2 (paper §V-A: 8 nodes, 1 V100 per node).
RI2_GPU = ClusterModel(
    name="RI2-GPU",
    node=NodeModel(
        cpu="Xeon E5-2680 v4", sockets=2, cores_per_socket=14,
        ghz=2.4, ram_gb=128,
    ),
    intra=RI2.intra,
    inter=RI2.inter,
    binding_intra=RI2.binding_intra,
    binding_inter=RI2.binding_inter,
    max_nodes=8,
    gpu=GPUModel(name="Tesla V100", memory_gb=32),
    gpu_net=NetworkModel(
        alpha_us=4.2, beta_us_per_byte=1.0 / 8500,        # GDR ~8.5 GB/s
        rendezvous_bytes=16384, rendezvous_alpha_us=2.5,
        rendezvous_beta_us_per_byte=1.0 / 9000,
        gap_us_per_byte=1.0 / 9000,
    ),
    # Calibration: Figs 22/23 — one-way overhead = 2*call + byte*n.
    # Small avgs 3.54/3.44/5.85 us -> call = 1.77/1.72/2.93 us;
    # large avgs 8.35/7.92/11.4 us -> byte = (large-small)/296082.
    gpu_buffers=GpuBufferOverheadModel(
        cupy_call_us=1.77, pycuda_call_us=1.72, numba_call_us=2.93,
        cupy_byte_us=1.62e-5, pycuda_byte_us=1.51e-5, numba_byte_us=1.87e-5,
    ),
)

CLUSTERS: dict[str, ClusterModel] = {
    c.name: c for c in (FRONTERA, STAMPEDE2, RI2, RI2_GPU)
}
