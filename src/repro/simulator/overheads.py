"""Python-binding overhead models.

The paper's central measurement is the delta between OMB (C calling MPI
directly) and OMB-Py (Python calling MPI through mpi4py).  That delta has
a simple structure, which this module models explicitly:

* a **fixed per-call cost** — argument parsing, buffer-protocol
  introspection, datatype discovery, interpreter dispatch;
* a **per-byte touch cost** — the extra copy/packing work the binding
  layer does on the user buffer;
* for the **pickle path** — serialization: a fixed cost plus a steep
  per-byte cost, with an extra regime above 64 KB where allocation and
  copy effects compound (the paper's Figs. 32-35 divergence);
* for **GPU buffers** — a per-call CUDA-Array-Interface export cost that
  differs by library (Numba's per-access rebuild/validation makes it
  roughly 2x CuPy/PyCUDA, per the paper's Figs. 22-27);
* a **THREAD_MULTIPLE full-subscription penalty** — mpi4py initializes
  THREAD_MULTIPLE while OMB's C tests use THREAD_SINGLE; at full PPN the
  extra progress threads oversubscribe cores and the penalty grows with
  both message size and PPN (the paper's Figs. 16-17 and 20-21).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BindingOverheadModel:
    """Per-call Python binding costs for one cluster's CPU."""

    call_us: float            # fixed cost per MPI call through the bindings
    byte_us: float            # per-byte buffer-touch cost
    # Pickle path (lower-case methods):
    pickle_call_us: float = 0.65
    pickle_byte_us: float = 2.2e-4
    pickle_large_bytes: int = 65536
    pickle_large_byte_us: float = 1.5e-3
    # THREAD_MULTIPLE penalty at full subscription (per call, scaled):
    thread_multiple_call_us: float = 2.0
    thread_multiple_byte_us: float = 5.0e-3

    def call_overhead_us(self, nbytes: int, calls: int = 2) -> float:
        """Binding overhead for one benchmark operation.

        ``calls`` is the number of binding-layer entries per measured
        operation (a ping-pong side makes a send call and a recv call).
        """
        return self.call_us * calls + self.byte_us * nbytes

    def pickle_overhead_us(self, nbytes: int, calls: int = 2) -> float:
        """Additional cost of the pickle path over the direct-buffer path."""
        cost = self.pickle_call_us * calls + self.pickle_byte_us * nbytes
        if nbytes > self.pickle_large_bytes:
            cost += self.pickle_large_byte_us * (
                nbytes - self.pickle_large_bytes
            )
        return cost

    def thread_multiple_us(
        self, nbytes: int, ppn: int, cores: int
    ) -> float:
        """Full-subscription oversubscription penalty (OMB-Py only).

        Zero until the node is fully subscribed; then grows with both PPN
        and message size, matching the divergence the paper reports for
        56-PPN Allgather/Allreduce.
        """
        if ppn < cores:
            return 0.0
        scale = ppn / cores
        return scale * (
            self.thread_multiple_call_us
            + self.thread_multiple_byte_us * nbytes
        )


@dataclass(frozen=True)
class GpuBufferOverheadModel:
    """Per-call CAI-export costs of the three GPU buffer libraries (us)."""

    cupy_call_us: float = 1.77
    pycuda_call_us: float = 1.72
    numba_call_us: float = 2.93
    # Per-byte extra staging cost (tiny: GPUDirect path is zero-copy, but
    # the Python layer still walks descriptors proportionally for pack
    # checks on large transfers).
    cupy_byte_us: float = 4.6e-6
    pycuda_byte_us: float = 4.3e-6
    numba_byte_us: float = 5.3e-6

    def call_overhead_us(
        self, library: str, nbytes: int, calls: int = 2
    ) -> float:
        """Per-operation overhead of using ``library`` device buffers."""
        table = {
            "cupy": (self.cupy_call_us, self.cupy_byte_us),
            "pycuda": (self.pycuda_call_us, self.pycuda_byte_us),
            "numba": (self.numba_call_us, self.numba_byte_us),
        }
        try:
            call, byte = table[library]
        except KeyError:
            raise ValueError(
                f"unknown GPU buffer library {library!r}; "
                f"choose from {sorted(table)}"
            ) from None
        return call * calls + byte * nbytes
