"""Node and GPU hardware descriptions.

Pure data: socket/core counts and clock rates from the paper's §V-A, plus
the memory- and device-level rates the cost models consume.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class NodeModel:
    """One compute node."""

    cpu: str
    sockets: int
    cores_per_socket: int
    ghz: float
    ram_gb: int
    # Sustained single-core copy bandwidth (bytes/us) — prices the extra
    # buffer copies Python paths make.
    copy_bw_bytes_per_us: float = 8000.0

    @property
    def cores(self) -> int:
        return self.sockets * self.cores_per_socket

    def copy_us(self, nbytes: int) -> float:
        """Time to memcpy n bytes on one core."""
        return nbytes / self.copy_bw_bytes_per_us


@dataclass(frozen=True)
class GPUModel:
    """One accelerator."""

    name: str
    memory_gb: int
    # Device-to-device bandwidth over NVLink/PCIe as seen by the NIC
    # (bytes/us); prices GPUDirect transfers.
    d2d_bw_bytes_per_us: float = 20000.0
    # Fixed cost of launching a GPU-involved transfer.
    transfer_setup_us: float = 2.0
