"""Generator-style collective algorithms for the discrete-event engine.

These mirror the executable algorithms in :mod:`repro.mpi.collectives`
step for step — same trees, same rounds, same message sizes — but as DES
rank programs.  Tests assert that simulating them reproduces the analytic
costs in :mod:`repro.simulator.collective_cost` (exactly where the
analytic form is exact, within tolerance where it approximates).
"""

from __future__ import annotations

import math
from typing import Callable

from .engine import RankProgram


def _ceil_log2(p: int) -> int:
    return max(1, math.ceil(math.log2(max(p, 2))))


def dissemination_barrier(rank: int, p: int) -> RankProgram:
    """ceil(log2 p) rounds of zero-byte token exchange."""
    dist = 1
    while dist < p:
        yield ("sendrecv", (rank + dist) % p, (rank - dist) % p, 0)
        dist <<= 1


def binomial_bcast(rank: int, p: int, n: int, root: int = 0) -> RankProgram:
    """Binomial-tree broadcast of an n-byte payload."""
    vrank = (rank - root) % p
    mask = 1
    while mask < p:
        if vrank & mask:
            yield ("recv", ((vrank - mask) + root) % p)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        child = vrank + mask
        if child < p:
            yield ("send", (child + root) % p, n)
        mask >>= 1


def recursive_doubling_allreduce(
    rank: int, p: int, n: int, gamma_us_per_byte: float = 0.0
) -> RankProgram:
    """Power-of-two recursive doubling with optional reduction compute."""
    if p & (p - 1):
        raise ValueError("DES recursive doubling requires power-of-two p")
    mask = 1
    while mask < p:
        partner = rank ^ mask
        yield ("sendrecv", partner, partner, n)
        if gamma_us_per_byte:
            yield ("compute", gamma_us_per_byte * n)
        mask <<= 1


def ring_allgather(rank: int, p: int, n: int) -> RankProgram:
    """p-1 neighbour steps circulating n-byte blocks."""
    right = (rank + 1) % p
    left = (rank - 1) % p
    for _ in range(p - 1):
        yield ("sendrecv", right, left, n)


def ring_allreduce(
    rank: int, p: int, n: int, gamma_us_per_byte: float = 0.0
) -> RankProgram:
    """Ring reduce-scatter + ring allgather over p segments of n/p bytes."""
    seg = -(-n // p)
    right = (rank + 1) % p
    left = (rank - 1) % p
    for _ in range(p - 1):
        yield ("sendrecv", right, left, seg)
        if gamma_us_per_byte:
            yield ("compute", gamma_us_per_byte * seg / 2)
    for _ in range(p - 1):
        yield ("sendrecv", right, left, seg)


def pairwise_alltoall(rank: int, p: int, n: int) -> RankProgram:
    """p-1 rounds of pairwise exchange of n-byte blocks."""
    for step in range(1, p):
        dest = (rank + step) % p
        source = (rank - step) % p
        yield ("sendrecv", dest, source, n)


def binomial_gather(rank: int, p: int, n: int, root: int = 0) -> RankProgram:
    """Binomial gather of n-byte blocks toward the root."""
    vrank = (rank - root) % p
    mask = 1
    while mask < p:
        if vrank & mask:
            span = min(mask, p - vrank)
            yield ("send", ((vrank - mask) + root) % p, span * n)
            return
        child = vrank | mask
        if child < p:
            yield ("recv", (child + root) % p)
        mask <<= 1


def make(op: str, n: int, **kw) -> Callable[[int, int], RankProgram]:
    """Factory: (rank, p) -> program, for :func:`engine.simulate_collective`."""
    table = {
        "barrier": lambda r, p: dissemination_barrier(r, p),
        "bcast": lambda r, p: binomial_bcast(r, p, n, **kw),
        "allreduce_rd": lambda r, p: recursive_doubling_allreduce(
            r, p, n, **kw
        ),
        "allreduce_ring": lambda r, p: ring_allreduce(r, p, n, **kw),
        "allgather_ring": lambda r, p: ring_allgather(r, p, n),
        "alltoall_pairwise": lambda r, p: pairwise_alltoall(r, p, n),
        "gather_binomial": lambda r, p: binomial_gather(r, p, n, **kw),
    }
    try:
        return table[op]
    except KeyError:
        raise ValueError(
            f"unknown DES collective {op!r}; available: {sorted(table)}"
        ) from None
