"""The service wire protocol: newline-delimited JSON over UDS or TCP.

One request object per line, one reply object per line, UTF-8.  A
connection may issue any number of requests; replies come back in
order.  Every reply carries ``ok`` (bool) and ``reply`` (a tag from
:data:`REPLIES`); failures carry ``reason``.

Requests (``op`` field):

* ``SUBMIT {job: {...}}`` → ``ACCEPTED {job_id, queue_depth}`` or
  ``REJECTED {reason}`` (queue full, draining, invalid spec, pool too
  degraded for the requested rank count);
* ``STATUS`` → ``STATUS {state, pool, queue_depth, running, jobs,
  metrics, uptime_s}`` — the ``GET /health`` analogue;
* ``JOB {job_id}`` → ``JOB {job}`` with the job record;
* ``RESULT {job_id, wait?, timeout_s?}`` → ``RESULT {job}`` once the
  job is terminal (optionally blocking server-side up to ``timeout_s``);
* ``CANCEL {job_id}`` → ``CANCELLED {job}``;
* ``DRAIN`` → ``DRAINING`` — stop admitting, finish what is queued.

Job lifecycle states: ``QUEUED → RUNNING → DONE`` with terminal
failure states ``FAILED`` (error or rank failure past the retry cap),
``DEADLINE`` (wall-clock deadline exceeded; the watchdog revoked the
job's communicator context) and ``CANCELLED``.
"""

from __future__ import annotations

import json
import socket
from dataclasses import asdict, dataclass, field
from typing import Any

#: Reply tags.
ACCEPTED = "ACCEPTED"
REJECTED = "REJECTED"
ERROR = "ERROR"
REPLIES = (
    ACCEPTED, REJECTED, ERROR, "STATUS", "JOB", "RESULT", "CANCELLED",
    "DRAINING",
)

#: Job states.
QUEUED = "QUEUED"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"
DEADLINE = "DEADLINE"
CANCELLED = "CANCELLED"
TERMINAL_STATES = (DONE, FAILED, DEADLINE, CANCELLED)

#: Job kinds.
KIND_BENCHMARK = "benchmark"
KIND_SLEEP = "sleep"

#: Maximum accepted request line (a job spec is tiny; anything larger
#: is a confused or hostile client).
MAX_LINE_BYTES = 1 << 20


@dataclass(frozen=True)
class JobSpec:
    """What a client asks the pool to run."""

    kind: str = KIND_BENCHMARK
    benchmark: str = "osu_latency"
    ranks: int = 2
    options: dict = field(default_factory=dict)
    priority: int = 0
    deadline_s: float | None = None
    max_retries: int | None = None
    seconds: float = 0.0          # KIND_SLEEP: how long to hold the ranks
    validate: bool = False        # run under the runtime MPI verifier
    label: str = ""

    def __post_init__(self) -> None:
        if self.kind not in (KIND_BENCHMARK, KIND_SLEEP):
            raise ValueError(
                f"job kind must be '{KIND_BENCHMARK}' or '{KIND_SLEEP}', "
                f"got {self.kind!r}"
            )
        if self.ranks < 1:
            raise ValueError(f"job ranks must be >= 1, got {self.ranks}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError(
                f"job deadline must be > 0 seconds, got {self.deadline_s}"
            )
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError(
                f"job retry cap must be >= 0, got {self.max_retries}"
            )
        if self.kind == KIND_SLEEP and self.seconds < 0:
            raise ValueError(
                f"sleep duration must be >= 0 seconds, got {self.seconds}"
            )

    def to_wire(self) -> dict:
        return asdict(self)

    @classmethod
    def from_wire(cls, obj: Any) -> "JobSpec":
        if not isinstance(obj, dict):
            raise ValueError(f"job spec must be an object, got {type(obj).__name__}")
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(obj) - known
        if unknown:
            raise ValueError(
                f"unknown job spec field(s): {', '.join(sorted(unknown))}"
            )
        return cls(**obj)


def table_to_wire(table) -> dict:
    """Serialize a :class:`repro.core.results.ResultTable` for the wire."""
    return {
        "benchmark": table.benchmark,
        "metric": table.metric,
        "ranks": table.ranks,
        "buffer": table.buffer,
        "api": table.api,
        "rows": [
            {
                "size": r.size,
                "value": r.value,
                "minimum": r.minimum,
                "maximum": r.maximum,
                "iterations": r.iterations,
            }
            for r in table.rows
        ],
    }


def table_from_wire(obj: dict):
    """Rebuild a :class:`~repro.core.results.ResultTable` from the wire."""
    from ..core.results import ResultRow, ResultTable

    table = ResultTable(
        benchmark=obj["benchmark"], metric=obj["metric"],
        ranks=obj["ranks"], buffer=obj["buffer"], api=obj["api"],
    )
    for row in obj.get("rows", ()):
        table.add(ResultRow(
            size=row["size"], value=row["value"],
            minimum=row.get("minimum", 0.0),
            maximum=row.get("maximum", 0.0),
            iterations=row.get("iterations", 0),
        ))
    return table


def encode(obj: dict) -> bytes:
    """One wire message: compact JSON + newline."""
    return json.dumps(obj, separators=(",", ":")).encode("utf-8") + b"\n"


def read_message(fh) -> dict | None:
    """Read one message from a file-like socket reader; None on EOF."""
    line = fh.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ValueError(f"wire message exceeds {MAX_LINE_BYTES} bytes")
    obj = json.loads(line.decode("utf-8"))
    if not isinstance(obj, dict):
        raise ValueError("wire message must be a JSON object")
    return obj


def write_message(sock: socket.socket, obj: dict) -> None:
    """Write one message to a socket."""
    sock.sendall(encode(obj))
