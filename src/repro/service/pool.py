"""The warm rank pool: persistent ranks-as-threads serving many jobs.

``ombpy-run`` builds a world, runs one program, and tears everything
down.  :class:`ThreadRankPool` builds the world **once** — an
:class:`~repro.mpi.transport.inproc.InprocFabric` with one long-lived
rank thread per slot — and then serves an open-ended stream of jobs.

Isolation: every job gets its own communicator built over the member
ranks with a **fresh context id** derived from the job serial (the same
context-folding scheme ``Comm.Split`` uses, executed without traffic
because the server assigns members centrally).  The matching engine
keys all traffic by context, so concurrent jobs — even two copies of
the same benchmark on overlapping tag ranges — can never cross-match
messages, and killing one job (revoking its context) cannot touch
another.

Degradation: a rank that dies (an injected crash standing in for a
process death) is marked failed on the fabric — every survivor's engine
learns of the death exactly as it would from a socket EOF.  The pool
reports the death upward, stops scheduling the dead slot, revokes the
contexts of any job the victim was running (flushing the surviving
members out of their collectives), and keeps serving on the shrunken
rank set.  ULFM's primitives — revoke, failure acknowledgement, the
per-rank dead set — are what make each transition safe.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field

from ..mpi.comm import Comm, Endpoint
from ..mpi.group import Group
from ..mpi.transport.inproc import InprocFabric
from ..telemetry import install_on_endpoint, telemetry_from_env
from .protocol import KIND_SLEEP, table_to_wire

#: Job contexts: ``(serial << SHIFT) | SALT``.  The base communicator
#: (context 0) derives Dup/Split contexts in the low 16-bit slot and
#: ULFM shrink counts down from the top of that slot; the salt keeps
#: job contexts clear of both, and the shift leaves the usual 16 bits
#: of derivation headroom for Dup/Split/shrink *inside* a job.
_JOB_CONTEXT_SHIFT = 20
_JOB_CONTEXT_SALT = 0xB
#: Serial bound keeping ``job_ctx << 16`` (one in-job derivation) < 2^62.
MAX_JOB_SERIAL = 1 << 26


def job_context(serial: int) -> int:
    """Context id for job number ``serial`` (1-based)."""
    if not 0 < serial < MAX_JOB_SERIAL:
        raise ValueError(f"job serial {serial} out of range")
    return (serial << _JOB_CONTEXT_SHIFT) | _JOB_CONTEXT_SALT


class JobKilled(Exception):
    """A job was preempted (deadline or cancel) while off the wire."""


@dataclass
class JobRun:
    """One dispatched job instance on the pool."""

    job_id: str
    spec: object                  # protocol.JobSpec
    members: list[int]            # world ranks, sorted ascending
    context: int
    cancel: threading.Event = field(default_factory=threading.Event)
    # -- filled in by member reports --
    pending: set[int] = field(default_factory=set)
    result: dict | None = None
    errors: list[str] = field(default_factory=list)
    kinds: set[str] = field(default_factory=set)
    dead_member: bool = False


def _error_kind(exc: BaseException) -> str:
    name = type(exc).__name__
    if name == "RankFailedError":
        return "rank_failed"
    if name == "CommRevokedError":
        return "revoked"
    if name == "PeerFailedError":
        return "rank_failed"
    if isinstance(exc, JobKilled):
        return "killed"
    return "error"


class ThreadRankPool:
    """N warm rank threads over one in-process fabric.

    Emits pool events (dicts) on :attr:`events` for the server's control
    loop::

        {"type": "job_done",   "job_id": ..., "result": {...} | None}
        {"type": "job_failed", "job_id": ..., "error": str,
         "kinds": [...], "dead_member": bool}
        {"type": "rank_dead",  "rank": int, "reason": str}
    """

    #: Jobs may run side by side on disjoint rank sets.
    concurrent = True

    def __init__(
        self,
        size: int,
        fault_plan=None,
        reliable: bool = False,
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = size
        self.events: queue.Queue = queue.Queue()
        self._fabric = InprocFabric(size)
        self._endpoints: list[Endpoint] = []
        for rank in range(size):
            transport = self._fabric.create_transport(rank)
            if fault_plan is not None and fault_plan.active:
                from ..faults import FaultyTransport

                transport = FaultyTransport(transport, fault_plan)
            if reliable:
                from ..mpi.reliability import ReliableTransport

                transport = ReliableTransport(transport)
            endpoint = Endpoint(transport)
            tele = telemetry_from_env(rank)
            if tele is not None:
                install_on_endpoint(endpoint, tele)
            self._endpoints.append(endpoint)
        self._lock = threading.Lock()
        self._free: set[int] = set(range(size))
        self._dead: set[int] = set()
        self._runs: dict[str, JobRun] = {}
        self._mailboxes: list[queue.Queue] = [queue.Queue() for _ in range(size)]
        self._stopping = False
        self._threads = [
            threading.Thread(
                target=self._rank_loop, args=(r,),
                name=f"pool-rank-{r}", daemon=True,
            )
            for r in range(size)
        ]
        for t in self._threads:
            t.start()

    # -- server-facing surface -------------------------------------------
    def live_count(self) -> int:
        with self._lock:
            return self.size - len(self._dead)

    def failed_ranks(self) -> set[int]:
        with self._lock:
            return set(self._dead)

    def free_count(self) -> int:
        with self._lock:
            return len(self._free)

    def can_dispatch(self, nranks: int) -> bool:
        with self._lock:
            return len(self._free) >= nranks

    def dispatch(self, run: JobRun) -> None:
        """Assign the lowest free ranks to ``run`` and wake them.

        Only the server's control loop calls this (after
        :meth:`can_dispatch`), so free-set checks cannot race.
        """
        with self._lock:
            members = sorted(self._free)[: run.spec.ranks]
            if len(members) < run.spec.ranks:
                raise RuntimeError(
                    f"dispatch without capacity: need {run.spec.ranks}, "
                    f"free {sorted(self._free)}"
                )
            self._free.difference_update(members)
            run.members = members
            run.pending = set(members)
            self._runs[run.job_id] = run
        for rank in members:
            self._mailboxes[rank].put(run)

    def kill(self, job_id: str) -> bool:
        """Preempt a running job: set its cancel flag and revoke its
        context on every live member, flushing them out of collectives
        with ``CommRevokedError``.  Other jobs are untouched — the
        context is theirs alone."""
        with self._lock:
            run = self._runs.get(job_id)
            if run is None:
                return False
            members = [r for r in run.members if r not in self._dead]
        run.cancel.set()
        for rank in members:
            self._endpoints[rank].engine.revoke_context(run.context)
        return True

    def describe(self) -> dict:
        with self._lock:
            return {
                "substrate": "threads",
                "size": self.size,
                "live": self.size - len(self._dead),
                "free": len(self._free),
                "failed_ranks": sorted(self._dead),
            }

    def telemetry_snapshots(self) -> dict[int, dict]:
        """Per-rank telemetry snapshots, when telemetry is armed."""
        out = {}
        for rank, ep in enumerate(self._endpoints):
            if ep.telemetry is not None:
                out[rank] = ep.telemetry.snapshot()
        return out

    def stop(self, timeout: float = 10.0) -> None:
        """Stop every rank thread and close the fabric (idempotent)."""
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
        for box in self._mailboxes:
            box.put(None)
        deadline = time.monotonic() + timeout
        for t in self._threads:
            t.join(max(0.1, deadline - time.monotonic()))
        for ep in self._endpoints:
            ep.close()
        self._fabric.close()

    # -- rank side --------------------------------------------------------
    def _rank_loop(self, rank: int) -> None:
        endpoint = self._endpoints[rank]
        while True:
            run = self._mailboxes[rank].get()
            if run is None:
                return
            # A peer may have died while this rank sat idle; clear the
            # sticky failure so the new job's (all-live) traffic flows.
            # The per-rank death record survives acknowledgement.
            endpoint.engine.acknowledge_failure()
            if run.cancel.is_set():
                self._report(rank, run, error="job cancelled before start",
                             kind="killed")
                continue
            try:
                result = self._execute(endpoint, rank, run)
            except BaseException as exc:  # noqa: BLE001 - classified below
                if type(exc).__name__ == "InjectedCrash":
                    # The thread analogue of a process death: peers find
                    # out through the fabric, as they would through EOF.
                    self._fabric.mark_rank_failed(
                        rank, f"rank {rank} crashed (injected fault: {exc})"
                    )
                    self._on_rank_dead(rank, run, str(exc))
                    return  # the rank is gone; its thread with it
                endpoint.engine.acknowledge_failure()
                self._report(rank, run, error=f"{type(exc).__name__}: {exc}",
                             kind=_error_kind(exc))
            else:
                self._report(rank, run, result=result)

    def _execute(self, endpoint: Endpoint, rank: int, run: JobRun):
        spec = run.spec
        comm = Comm(endpoint, Group(run.members), context=run.context)
        lead = rank == run.members[0]
        if spec.kind == KIND_SLEEP:
            end = time.monotonic() + spec.seconds
            while True:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    break
                if run.cancel.is_set():
                    raise JobKilled("killed while sleeping")
                time.sleep(min(0.02, remaining))
            return {"slept_s": spec.seconds} if lead else None

        from ..core.options import Options
        from ..core.runner import run_benchmark

        options = Options(**spec.options)
        if spec.validate:
            from ..analysis import verify

            with verify(comm):
                table = run_benchmark(spec.benchmark, comm, options)
        else:
            table = run_benchmark(spec.benchmark, comm, options)
        return table_to_wire(table) if lead else None

    # -- report aggregation ----------------------------------------------
    def _report(
        self,
        rank: int,
        run: JobRun,
        result: dict | None = None,
        error: str | None = None,
        kind: str | None = None,
    ) -> None:
        with self._lock:
            run.pending.discard(rank)
            if result is not None:
                run.result = result
            if error is not None:
                run.errors.append(f"rank {rank}: {error}")
                run.kinds.add(kind or "error")
            if rank not in self._dead:
                self._free.add(rank)
            finished = not run.pending
            if finished:
                self._runs.pop(run.job_id, None)
        if finished:
            self._emit_final(run)

    def _on_rank_dead(self, rank: int, run: JobRun, reason: str) -> None:
        """A member crashed mid-job: record the death, flush the other
        jobs that rank was *not* part of untouched, and finish this one."""
        with self._lock:
            self._dead.add(rank)
            self._free.discard(rank)
            run.pending.discard(rank)
            run.dead_member = True
            run.errors.append(f"rank {rank}: died ({reason})")
            run.kinds.add("crash")
            finished = not run.pending
            if finished:
                self._runs.pop(run.job_id, None)
        self.events.put({"type": "rank_dead", "rank": rank, "reason": reason})
        # Flush the surviving members promptly: their collectives on the
        # job context die with CommRevokedError instead of relying only
        # on the sticky engine failure.
        for member in run.members:
            if member != rank:
                self._endpoints[member].engine.revoke_context(run.context)
        if finished:
            self._emit_final(run)

    def _emit_final(self, run: JobRun) -> None:
        if run.errors or run.dead_member:
            self.events.put({
                "type": "job_failed",
                "job_id": run.job_id,
                "error": run.errors[0] if run.errors else "rank died",
                "kinds": sorted(run.kinds),
                "dead_member": run.dead_member,
            })
        else:
            self.events.put({
                "type": "job_done",
                "job_id": run.job_id,
                "result": run.result,
            })
