"""``repro.service`` — the self-healing benchmark-as-a-service daemon.

A benchmark invocation through ``ombpy-run`` pays full launch cost —
process spawn, transport rendezvous, mesh dial — for every job, and a
single rank crash ends the process.  This package keeps a **rank pool
warm** across jobs and converts the runtime's recovery primitives
(:mod:`repro.mpi.ulfm`, :mod:`repro.mpi.resilience`) into load-bearing
infrastructure:

* :mod:`repro.service.server` — the daemon: job queue with FIFO +
  priority admission control and backpressure, per-job wall-clock
  deadlines enforced by a revoke-based watchdog, capped-exponential
  retry of retryable jobs, graceful drain on SIGTERM, and degraded-mode
  serving after a rank death;
* :mod:`repro.service.pool` — the warm rank pool substrates: an
  in-process threads pool (concurrent jobs, each isolated in its own
  communicator context) and a process pool spawned once via
  :func:`repro.mpi.launcher.spawn_ranks` whose worker ranks shrink and
  keep serving when a peer dies (:mod:`repro.service.worker`);
* :mod:`repro.service.client` — :class:`ServiceClient` with client-side
  timeouts and jittered reconnect backoff, plus the ``ombpy-submit``
  CLI (:mod:`repro.service.cli`; the server side is ``ombpy-serve``);
* :mod:`repro.service.protocol` — the newline-delimited JSON wire
  protocol and job specifications;
* :mod:`repro.service.config` — the ``OMBPY_SERVICE_*`` environment
  knobs with validation.

See ``docs/service.md`` for the protocol, the SERVING → DEGRADED →
DRAINING lifecycle, and failure semantics.
"""

from .config import ServiceConfig
from .client import ServiceClient
from .protocol import JobSpec
from .server import BenchmarkService

__all__ = [
    "BenchmarkService",
    "JobSpec",
    "ServiceClient",
    "ServiceConfig",
]
