"""Rank program for the process-backed pool (``--pool process``).

``ombpy-serve --pool process`` spawns ``python -m repro.service.worker``
once per rank via :func:`repro.mpi.launcher.spawn_ranks`.  The ranks
build a world, and the **leader** (rank 0 of the current base
communicator) connects back to the daemon's control socket
(``OMBPY_SERVICE_CTRL``) to receive job directives, which it broadcasts
to the other ranks over the base communicator itself:

    HELLO {size}            worker → server   pool is up
    RUN {job_id, spec}      server → worker   run one job
    RESULT {job_id, ...}    worker → server   job outcome
    SHRUNK {size, failed}   worker → server   a rank died; pool shrank
    SHUTDOWN                server → worker   exit cleanly

A job runs on the ``spec.ranks`` lowest base ranks inside a
sub-communicator from ``base.Split`` — fresh context, no tag collisions
with pool control traffic.  When any rank dies, the survivors follow the
ULFM recovery recipe (revoke → shrink), the new leader re-dials the
control socket, reports ``SHRUNK``, and the pool keeps serving jobs that
fit the smaller world.  Jobs run one at a time: process ranks block in
collectives, so this substrate trades concurrency for true
process-death fault coverage.
"""

from __future__ import annotations

import json
import os
import socket
import sys

from ..mpi import world as mpi_world
from ..mpi.exceptions import CommRevokedError, RankFailedError
from .protocol import JobSpec, KIND_SLEEP, encode, read_message, table_to_wire

ENV_CTRL = "OMBPY_SERVICE_CTRL"

_RECOVERABLE = (RankFailedError, CommRevokedError)


def _connect_ctrl(path: str) -> tuple[socket.socket, object]:
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(path)
    return sock, sock.makefile("rb")


def _run_job(base, spec: JobSpec) -> tuple[dict | None, str | None]:
    """Run one job on the lowest ``spec.ranks`` base ranks.  Returns
    ``(result, error)`` as seen by *this* rank (result only on the job
    lead).  Collective over the whole base communicator."""
    color = 0 if base.rank < spec.ranks else -1
    sub = base.Split(color, base.rank)
    if sub is None:
        return None, None
    try:
        if spec.kind == KIND_SLEEP:
            import time

            time.sleep(spec.seconds)
            result = {"slept_s": spec.seconds} if sub.rank == 0 else None
            return result, None
        from ..core.options import Options
        from ..core.runner import run_benchmark

        options = Options(**spec.options)
        if spec.validate:
            from ..analysis import verify

            with verify(sub):
                table = run_benchmark(spec.benchmark, sub, options)
        else:
            table = run_benchmark(spec.benchmark, sub, options)
        return (table_to_wire(table) if sub.rank == 0 else None), None
    except _RECOVERABLE:
        raise
    except Exception as exc:  # noqa: BLE001 - reported to the server
        return None, f"{type(exc).__name__}: {exc}"


def main() -> int:
    ctrl_path = os.environ.get(ENV_CTRL)
    if not ctrl_path:
        print("repro.service.worker: OMBPY_SERVICE_CTRL not set",
              file=sys.stderr)
        return 2
    world = mpi_world.init()
    base = world.comm
    ctrl = fh = None
    try:
        if base.rank == 0:
            ctrl, fh = _connect_ctrl(ctrl_path)
            ctrl.sendall(encode({"op": "HELLO", "size": base.size}))
        while True:
            try:
                # Leader pulls the next directive and fans it out over
                # the base communicator; everyone blocks here between
                # jobs, so a directive is a pool-wide synchronization.
                if base.rank == 0:
                    directive = read_message(fh)
                    if directive is None:
                        directive = {"op": "SHUTDOWN"}
                    payload = json.dumps(directive).encode()
                    base.bcast_bytes(payload, 0)
                else:
                    payload = base.bcast_bytes(None, 0)
                    directive = json.loads(payload.decode())
                op = directive.get("op")
                if op == "SHUTDOWN":
                    return 0
                if op != "RUN":
                    continue
                spec = JobSpec.from_wire(directive["spec"])
                result, error = _run_job(base, spec)
                # Fold per-rank outcomes so the leader reports app
                # errors from any member, not just its own.
                statuses = base.allgather_bytes(
                    (error or "").encode("utf-8")
                )
                if base.rank == 0:
                    errors = [s.decode() for s in statuses if s]
                    if errors:
                        ctrl.sendall(encode({
                            "op": "JOB_FAILED",
                            "job_id": directive["job_id"],
                            "error": "; ".join(errors),
                        }))
                    else:
                        ctrl.sendall(encode({
                            "op": "RESULT",
                            "job_id": directive["job_id"],
                            "result": result,
                        }))
            except _RECOVERABLE:
                # ULFM recovery: agree the old communicator is dead,
                # shrink to the survivors, and let the new leader
                # re-dial the daemon.
                try:
                    base.revoke()
                except _RECOVERABLE:
                    pass
                shrunken = base.shrink()
                failed = sorted(base.failed_ranks())
                base = shrunken
                if ctrl is not None:
                    try:
                        ctrl.close()
                    except OSError:
                        pass
                    ctrl = fh = None
                if base.rank == 0:
                    ctrl, fh = _connect_ctrl(ctrl_path)
                    ctrl.sendall(encode({
                        "op": "SHRUNK",
                        "size": base.size,
                        "failed": failed,
                    }))
    finally:
        if ctrl is not None:
            try:
                ctrl.close()
            except OSError:
                pass
        world.finalize()


if __name__ == "__main__":
    sys.exit(main())
