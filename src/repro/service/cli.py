"""Console entry points: ``ombpy-serve`` (daemon) and ``ombpy-submit``.

``ombpy-serve`` brings up the warm rank pool and serves jobs until a
drain (SIGTERM/SIGINT or a client ``DRAIN``).  It prints one
machine-readable line once it is accepting connections::

    OMBPY-SERVE READY socket=/tmp/ombpy.sock pool=4 substrate=threads

so scripts (the CI smoke job, ``tools/chaos_smoke.py --service``) can
wait for readiness by watching stdout instead of sleeping.

``ombpy-submit`` is the client: ``submit`` a benchmark or sleep job,
``status`` (health probe), ``result`` (optionally blocking), ``cancel``,
``drain``.  Each failure mode gets a distinct, documented exit code
(table in ``docs/service.md``) so shell pipelines and the campaign
driver can branch on *why* a job died without parsing stderr:

====  =======================================================
code  meaning
====  =======================================================
0     success (``DONE`` for awaited jobs)
1     job failed (application error past the retry cap)
2     usage or connection error
3     rejected by admission control (queue full / draining /
      pool too degraded)
4     per-job wall-clock deadline exceeded
5     rank failure (pool lost ranks; includes collateral and
      pool-degraded failures)
6     cancelled
====  =======================================================
"""

from __future__ import annotations

import argparse
import signal
import sys
import threading

from .client import ServiceClient, ServiceError
from .protocol import (
    CANCELLED, DEADLINE, DONE, FAILED, KIND_BENCHMARK, KIND_SLEEP,
    REJECTED, JobSpec, TERMINAL_STATES, table_from_wire,
)
from .config import ServiceConfig

DEFAULT_SOCKET = "/tmp/ombpy-service.sock"

#: ``ombpy-submit`` exit codes, one per failure mode (see module
#: docstring and docs/service.md).
EXIT_DONE = 0
EXIT_FAILED = 1
EXIT_USAGE = 2
EXIT_REJECTED = 3
EXIT_DEADLINE = 4
EXIT_RANK_FAILURE = 5
EXIT_CANCELLED = 6

#: Server-side failure kinds that count as rank failures for the exit
#: code: the pool (not the application) is what broke.
_RANK_FAILURE_KINDS = (
    "rank_failure", "collateral", "pool_degraded", "pool_lost",
)


def exit_code_for(job: dict) -> int:
    """Map a terminal job record to its documented exit code."""
    state = job.get("state")
    if state == DONE:
        return EXIT_DONE
    if state == DEADLINE:
        return EXIT_DEADLINE
    if state == CANCELLED:
        return EXIT_CANCELLED
    if state == FAILED and job.get("failure_kind") in _RANK_FAILURE_KINDS:
        return EXIT_RANK_FAILURE
    return EXIT_FAILED


def _tcp_addr(text: str) -> tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise argparse.ArgumentTypeError(
            f"expected HOST:PORT, got {text!r}"
        )
    return host, int(port)


# ---------------------------------------------------------------------------
# ombpy-serve
# ---------------------------------------------------------------------------
def serve_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ombpy-serve",
        description="benchmark-as-a-service daemon: a persistent warm "
        "rank pool with admission control, deadlines, and ULFM-backed "
        "degraded-mode serving",
    )
    parser.add_argument("--pool-size", type=int, default=4,
                        help="ranks in the warm pool (default 4)")
    parser.add_argument("--pool", choices=("threads", "process"),
                        default="threads",
                        help="pool substrate: in-process rank threads "
                        "(concurrent jobs) or spawned rank processes "
                        "(true process-death fault coverage)")
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help=f"UDS listen path (default {DEFAULT_SOCKET})")
    parser.add_argument("--tcp", type=_tcp_addr, default=None,
                        metavar="HOST:PORT", help="listen on TCP instead")
    parser.add_argument("--transport", choices=("tcp", "uds", "shm"),
                        default="tcp",
                        help="rank transport for --pool process")
    parser.add_argument("--faults", default=None, metavar="PLAN.json",
                        help="fault-plan file injected into the pool "
                        "transports (threads pool)")
    parser.add_argument("--fault-seed", type=int, default=None,
                        help="seeded chaos mix for the pool transports")
    parser.add_argument("--reliable", action="store_true",
                        help="stack the reliable-delivery layer on the "
                        "pool transports")
    parser.add_argument("--queue-depth", type=int, default=None,
                        help="max queued jobs before SUBMIT is rejected "
                        "(overrides OMBPY_SERVICE_QUEUE_DEPTH)")
    parser.add_argument("--default-deadline", type=float, default=None,
                        metavar="SECONDS",
                        help="default per-job wall-clock deadline "
                        "(overrides OMBPY_SERVICE_DEADLINE_S)")
    parser.add_argument("--retry-max", type=int, default=None,
                        help="retry cap for rank-failure jobs "
                        "(overrides OMBPY_SERVICE_RETRY_MAX)")
    parser.add_argument("--drain-grace", type=float, default=None,
                        metavar="SECONDS",
                        help="drain grace before forced shutdown "
                        "(overrides OMBPY_SERVICE_DRAIN_GRACE_S)")
    parser.add_argument("--metrics-out", default=None, metavar="FILE",
                        help="write merged service+pool telemetry JSON "
                        "here on shutdown")
    args = parser.parse_args(argv)

    try:
        config = ServiceConfig.from_env(
            queue_depth=args.queue_depth,
            default_deadline_s=args.default_deadline,
            retry_max=args.retry_max,
            drain_grace_s=args.drain_grace,
        )
    except ValueError as exc:
        print(f"ombpy-serve: {exc}", file=sys.stderr)
        return 2

    fault_plan = None
    if args.faults:
        from ..faults import FaultPlan

        try:
            with open(args.faults, encoding="utf-8") as fh:
                fault_plan = FaultPlan.from_json(fh.read())
        except (OSError, ValueError) as exc:
            print(f"ombpy-serve: bad fault plan: {exc}", file=sys.stderr)
            return 2
    elif args.fault_seed is not None:
        from ..faults import FaultPlan

        fault_plan = FaultPlan.chaos(args.fault_seed)

    from .server import BenchmarkService

    pool = None
    if args.pool == "process":
        if fault_plan is not None:
            print("ombpy-serve: --faults/--fault-seed apply to the "
                  "threads pool; use OMBPY_FAULTS for process ranks",
                  file=sys.stderr)
            return 2
        from .procpool import ProcessRankPool

        env_extra = {}
        if args.reliable:
            from ..mpi.reliability import ENV_RELIABLE

            env_extra[ENV_RELIABLE] = "1"
        try:
            pool = ProcessRankPool(
                args.pool_size, transport=args.transport,
                env_extra=env_extra,
            )
        except (OSError, TimeoutError, ValueError) as exc:
            print(f"ombpy-serve: pool startup failed: {exc}",
                  file=sys.stderr)
            return 1

    socket_path = args.socket
    if args.tcp is None and socket_path is None:
        socket_path = DEFAULT_SOCKET
    try:
        service = BenchmarkService(
            pool_size=args.pool_size,
            config=config,
            socket_path=socket_path,
            tcp=args.tcp,
            pool=pool,
            fault_plan=fault_plan,
            reliable=args.reliable,
            metrics_out=args.metrics_out,
        )
    except (OSError, ValueError) as exc:
        print(f"ombpy-serve: {exc}", file=sys.stderr)
        if pool is not None:
            pool.stop()
        return 1

    def _drain(signum, frame):  # noqa: ARG001 - signal signature
        # Re-entering drain is safe (idempotent); do the minimum in the
        # handler and let the control loop finish the shutdown.
        threading.Thread(target=service.drain, daemon=True).start()

    old_term = signal.signal(signal.SIGTERM, _drain)
    old_int = signal.signal(signal.SIGINT, _drain)
    try:
        service.start()
        addr = service.address
        where = (f"socket={addr}" if isinstance(addr, str)
                 else f"tcp={addr[0]}:{addr[1]}")
        substrate = service.pool.describe()["substrate"]
        print(f"OMBPY-SERVE READY {where} pool={args.pool_size} "
              f"substrate={substrate}", flush=True)
        service.serve_forever()
    finally:
        service.stop()
        signal.signal(signal.SIGTERM, old_term)
        signal.signal(signal.SIGINT, old_int)
    return 0


# ---------------------------------------------------------------------------
# ombpy-submit
# ---------------------------------------------------------------------------
def _add_endpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--socket", default=None, metavar="PATH",
                        help=f"daemon UDS path (default {DEFAULT_SOCKET})")
    parser.add_argument("--tcp", type=_tcp_addr, default=None,
                        metavar="HOST:PORT", help="daemon TCP address")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="client-side timeout, seconds (default 30)")


def _client(args) -> ServiceClient:
    if args.tcp is not None:
        return ServiceClient(tcp=args.tcp, timeout=args.timeout)
    return ServiceClient(socket_path=args.socket or DEFAULT_SOCKET,
                         timeout=args.timeout)


def _print_job(job: dict) -> None:
    state = job["state"]
    line = f"{job['job_id']}: {state}"
    if job.get("attempts", 0) > 1:
        line += f" (attempt {job['attempts']})"
    if job.get("error"):
        line += f" — {job['error']}"
    print(line)
    result = job.get("result")
    if state == DONE and isinstance(result, dict) and "rows" in result:
        from ..core.output import print_table

        print_table(table_from_wire(result))
    elif state == DONE and result is not None:
        print(result)


def submit_main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="ombpy-submit",
        description="client for the ombpy-serve benchmark service",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_status = sub.add_parser("status", help="service health probe")
    _add_endpoint_args(p_status)

    p_submit = sub.add_parser("submit", help="submit a job")
    _add_endpoint_args(p_submit)
    p_submit.add_argument("benchmark", nargs="?", default="osu_latency",
                          help="benchmark registry name")
    p_submit.add_argument("--ranks", type=int, default=2)
    p_submit.add_argument("-m", "--message-sizes", default=None,
                          metavar="MIN:MAX")
    p_submit.add_argument("-i", "--iterations", type=int, default=None)
    p_submit.add_argument("-x", "--warmup", type=int, default=None)
    p_submit.add_argument("-b", "--buffer", default=None)
    p_submit.add_argument("--api", default=None,
                          choices=("buffer", "pickle", "native"))
    p_submit.add_argument("-W", "--window-size", type=int, default=None)
    p_submit.add_argument("--priority", type=int, default=0,
                          help="higher runs first (default 0)")
    p_submit.add_argument("--deadline", type=float, default=None,
                          metavar="SECONDS", help="per-job deadline")
    p_submit.add_argument("--retries", type=int, default=None,
                          help="per-job rank-failure retry cap")
    p_submit.add_argument("--sleep", type=float, default=None,
                          metavar="SECONDS",
                          help="submit a rank-holding sleep job instead "
                          "of a benchmark")
    p_submit.add_argument("--validate", action="store_true",
                          help="run the job under the runtime verifier")
    p_submit.add_argument("--label", default="")
    p_submit.add_argument("--wait", action="store_true",
                          help="block until the job finishes and print "
                          "its result")

    p_result = sub.add_parser("result", help="fetch a job's outcome")
    _add_endpoint_args(p_result)
    p_result.add_argument("job_id")
    p_result.add_argument("--wait", action="store_true")

    p_cancel = sub.add_parser("cancel", help="cancel a job")
    _add_endpoint_args(p_cancel)
    p_cancel.add_argument("job_id")

    p_drain = sub.add_parser("drain", help="ask the daemon to drain")
    _add_endpoint_args(p_drain)

    args = parser.parse_args(argv)
    try:
        with _client(args) as client:
            return _dispatch(client, args)
    except (ConnectionError, OSError, TimeoutError) as exc:
        print(f"ombpy-submit: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except ServiceError as exc:
        print(f"ombpy-submit: {exc}", file=sys.stderr)
        if exc.reply.get("reply") == REJECTED:
            return EXIT_REJECTED
        return EXIT_FAILED


def _dispatch(client: ServiceClient, args) -> int:
    if args.command == "status":
        status = client.status()
        pool = status["pool"]
        print(f"state={status['state']} substrate={pool['substrate']} "
              f"pool={pool['live']}/{pool['size']} "
              f"failed={pool['failed_ranks']} "
              f"queue={status['queue_depth']} "
              f"running={status['running']} "
              f"uptime={status['uptime_s']}s")
        for state, count in sorted(status.get("jobs", {}).items()):
            print(f"  jobs.{state}={count}")
        return 0

    if args.command == "submit":
        if args.sleep is not None:
            spec = JobSpec(
                kind=KIND_SLEEP, ranks=args.ranks, seconds=args.sleep,
                priority=args.priority, deadline_s=args.deadline,
                max_retries=args.retries, label=args.label,
            )
        else:
            options: dict = {}
            if args.message_sizes:
                lo, _, hi = args.message_sizes.partition(":")
                options["min_size"] = int(lo)
                options["max_size"] = int(hi) if hi else int(lo)
            if args.iterations is not None:
                options["iterations"] = args.iterations
            if args.warmup is not None:
                options["warmup"] = args.warmup
            if args.buffer is not None:
                options["buffer"] = args.buffer
            if args.api is not None:
                options["api"] = args.api
            if args.window_size is not None:
                options["window_size"] = args.window_size
            spec = JobSpec(
                kind=KIND_BENCHMARK, benchmark=args.benchmark,
                ranks=args.ranks, options=options,
                priority=args.priority, deadline_s=args.deadline,
                max_retries=args.retries, validate=args.validate,
                label=args.label,
            )
        job_id = client.submit(spec)
        if not args.wait:
            print(job_id)
            return EXIT_DONE
        job = client.result(job_id, wait=True, timeout=args.timeout)
        _print_job(job)
        return exit_code_for(job)

    if args.command == "result":
        if args.wait:
            job = client.result(args.job_id, wait=True,
                                timeout=args.timeout)
        else:
            job = client.job(args.job_id)
            if job["state"] not in TERMINAL_STATES:
                print(f"{job['job_id']}: {job['state']}")
                return EXIT_FAILED
        _print_job(job)
        return exit_code_for(job)

    if args.command == "cancel":
        job = client.cancel(args.job_id)
        _print_job(job)
        return 0

    if args.command == "drain":
        client.drain()
        print("draining")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")
