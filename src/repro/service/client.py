"""Client for the benchmark service: timeouts and reconnect backoff.

:class:`ServiceClient` speaks the newline-JSON protocol to an
``ombpy-serve`` daemon over UDS or TCP.  Every request carries a
client-side socket timeout, and the initial connect retries with
jittered exponential backoff — a client racing the daemon's startup
(the CI smoke test does exactly this) converges instead of crashing.
"""

from __future__ import annotations

import random
import socket
import time

from .protocol import TERMINAL_STATES, JobSpec, read_message, write_message

#: Connect/backoff defaults.
CONNECT_TRIES = 8
BACKOFF_BASE_S = 0.05
BACKOFF_CAP_S = 2.0


class ServiceError(RuntimeError):
    """The daemon answered with an ERROR/REJECTED reply."""

    def __init__(self, reply: dict) -> None:
        super().__init__(reply.get("reason") or reply.get("reply") or "error")
        self.reply = reply


class ServiceClient:
    """One connection to the service; reconnects lazily on demand."""

    def __init__(
        self,
        socket_path: str | None = None,
        tcp: tuple[str, int] | None = None,
        timeout: float = 30.0,
        connect_tries: int = CONNECT_TRIES,
    ) -> None:
        if (socket_path is None) == (tcp is None):
            raise ValueError("give exactly one of socket_path or tcp")
        self._socket_path = socket_path
        self._tcp = tcp
        self.timeout = timeout
        self.connect_tries = max(1, connect_tries)
        self._sock: socket.socket | None = None
        self._fh = None

    # -- connection -------------------------------------------------------
    def _connect_once(self) -> socket.socket:
        if self._socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self._socket_path)
        else:
            sock = socket.create_connection(self._tcp, timeout=self.timeout)
        return sock

    def connect(self) -> None:
        """Connect with jittered exponential backoff."""
        if self._sock is not None:
            return
        last: Exception | None = None
        for attempt in range(self.connect_tries):
            try:
                self._sock = self._connect_once()
                self._fh = self._sock.makefile("rb")
                return
            except OSError as exc:
                last = exc
                delay = min(BACKOFF_CAP_S, BACKOFF_BASE_S * (2 ** attempt))
                time.sleep(delay * random.uniform(0.5, 1.5))
        target = self._socket_path or f"{self._tcp[0]}:{self._tcp[1]}"
        raise ConnectionError(
            f"could not reach benchmark service at {target} "
            f"after {self.connect_tries} tries: {last}"
        )

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
            self._fh = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServiceClient":
        self.connect()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- request plumbing -------------------------------------------------
    def request(self, obj: dict, timeout: float | None = None) -> dict:
        """One request/reply round trip.  A broken connection is retried
        once on a fresh socket before giving up."""
        for attempt in (1, 2):
            self.connect()
            try:
                if timeout is not None:
                    self._sock.settimeout(timeout)
                try:
                    write_message(self._sock, obj)
                    reply = read_message(self._fh)
                finally:
                    if timeout is not None:
                        self._sock.settimeout(self.timeout)
                if reply is None:
                    raise ConnectionError("service closed the connection")
                return reply
            except (OSError, ConnectionError):
                self.close()
                if attempt == 2:
                    raise
        raise AssertionError("unreachable")

    def _checked(self, obj: dict, timeout: float | None = None) -> dict:
        reply = self.request(obj, timeout=timeout)
        if not reply.get("ok"):
            raise ServiceError(reply)
        return reply

    # -- operations -------------------------------------------------------
    def submit(self, spec: JobSpec) -> str:
        """Submit a job; returns its id.  Raises :class:`ServiceError`
        with the rejection reason when admission control says no."""
        reply = self._checked({"op": "SUBMIT", "job": spec.to_wire()})
        return reply["job_id"]

    def status(self) -> dict:
        return self._checked({"op": "STATUS"})

    def job(self, job_id: str) -> dict:
        return self._checked({"op": "JOB", "job_id": job_id})["job"]

    def result(self, job_id: str, wait: bool = True,
               timeout: float | None = None) -> dict:
        """Fetch a job's terminal record, optionally blocking until it
        finishes (server-side wait, client socket timeout padded)."""
        request = {"op": "RESULT", "job_id": job_id, "wait": wait}
        sock_timeout = None
        if wait:
            request["timeout_s"] = timeout
            if timeout is not None:
                sock_timeout = timeout + 10.0
        reply = self._checked(request, timeout=sock_timeout)
        return reply["job"]

    def cancel(self, job_id: str) -> dict:
        return self._checked({"op": "CANCEL", "job_id": job_id})["job"]

    def drain(self) -> None:
        self._checked({"op": "DRAIN"})

    def run(self, spec: JobSpec, timeout: float | None = None) -> dict:
        """Submit and wait: returns the terminal job record."""
        job_id = self.submit(spec)
        return self.result(job_id, wait=True, timeout=timeout)

    def wait_state(self, job_id: str, states=TERMINAL_STATES,
                   timeout: float = 30.0, poll: float = 0.05) -> dict:
        """Client-side poll until the job reaches one of ``states``."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in states:
                return job
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still {job['state']} after {timeout}s"
                )
            time.sleep(poll)
