"""The benchmark service daemon: admission, deadlines, retry, drain.

:class:`BenchmarkService` owns a warm rank pool (threads by default,
processes via ``--pool process``) and a listening socket (UDS or TCP).
Three kinds of thread cooperate under one lock:

* **acceptor + per-connection handlers** — parse requests, run
  admission control, answer queries.  They never touch the pool
  directly except through the control queue.
* **the control loop** — the only thread that dispatches to the pool.
  It consumes pool events (job done / job failed / rank dead), enforces
  deadlines (watchdog), schedules retries with capped-exponential
  backoff, completes drains, and flips the service state machine
  ``SERVING → DEGRADED → DRAINING → STOPPED``.
* **signal-driven drain** — SIGTERM/SIGINT ask for a graceful drain;
  queued and running jobs get ``drain_grace_s`` to finish, stragglers
  are killed.

Failure classification (what gets retried):

* a job whose *member* rank died (``dead_member``) is a genuine rank
  failure → retried on the shrunken pool up to the retry cap;
* a job that saw ``RankFailedError``/``CommRevokedError`` while none of
  its own members died is **collateral** — on the shared in-process
  fabric a death is visible to every engine — and is requeued without
  charging its retry budget (bounded by :data:`COLLATERAL_REQUEUE_CAP`);
* deadline kills, cancels, and application errors are never retried.
"""

from __future__ import annotations

import heapq
import itertools
import json
import os
import socket
import threading
import time

from ..telemetry import MetricsRegistry, merge_snapshots
from . import protocol
from .config import ServiceConfig
from .pool import JobRun, ThreadRankPool, job_context
from .protocol import (
    ACCEPTED, CANCELLED, DEADLINE, DONE, ERROR, FAILED, JobSpec, QUEUED,
    REJECTED, RUNNING, TERMINAL_STATES, read_message,
)

#: Service states.
SERVING = "SERVING"
DEGRADED = "DEGRADED"
DRAINING = "DRAINING"
STOPPED = "STOPPED"

#: How many times a job may be requeued for free because an *unrelated*
#: rank death poisoned its engines mid-run.
COLLATERAL_REQUEUE_CAP = 3

#: Control-loop tick: bounds deadline-detection latency.
_TICK_S = 0.05


class JobRecord:
    """Server-side lifecycle record for one submitted job."""

    __slots__ = (
        "job_id", "spec", "state", "attempts", "collateral_requeues",
        "result", "error", "failure_kind", "submitted_at", "started_at",
        "finished_at", "deadline_at", "run",
    )

    def __init__(self, job_id: str, spec: JobSpec) -> None:
        self.job_id = job_id
        self.spec = spec
        self.state = QUEUED
        self.attempts = 0
        self.collateral_requeues = 0
        self.result: dict | None = None
        self.error: str | None = None
        #: Why a FAILED job failed: "rank_failure", "collateral",
        #: "pool_degraded", "pool_lost", or "app_error".  Clients
        #: (ombpy-submit exit codes, the campaign driver's retry
        #: accounting) branch on this instead of parsing the error text.
        self.failure_kind: str | None = None
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self.deadline_at: float | None = None   # monotonic, while RUNNING
        self.run: JobRun | None = None

    def to_wire(self) -> dict:
        return {
            "job_id": self.job_id,
            "state": self.state,
            "spec": self.spec.to_wire(),
            "attempts": self.attempts,
            "result": self.result,
            "error": self.error,
            "failure_kind": self.failure_kind,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }


class BenchmarkService:
    """The daemon.  Construct, :meth:`start`, then :meth:`serve_forever`
    (or drive :meth:`drain`/:meth:`stop` yourself in tests)."""

    def __init__(
        self,
        pool_size: int = 4,
        config: ServiceConfig | None = None,
        socket_path: str | None = None,
        tcp: tuple[str, int] | None = None,
        pool=None,
        fault_plan=None,
        reliable: bool = False,
        metrics_out: str | None = None,
    ) -> None:
        self.config = config or ServiceConfig()
        if pool is not None:
            self.pool = pool
        else:
            self.pool = ThreadRankPool(
                pool_size, fault_plan=fault_plan, reliable=reliable
            )
        self.metrics_out = metrics_out
        self.metrics = MetricsRegistry()
        self._m_submitted = self.metrics.counter("service.jobs.submitted")
        self._m_accepted = self.metrics.counter("service.jobs.accepted")
        self._m_rejected = self.metrics.counter("service.jobs.rejected")
        self._m_completed = self.metrics.counter("service.jobs.completed")
        self._m_failed = self.metrics.counter("service.jobs.failed")
        self._m_cancelled = self.metrics.counter("service.jobs.cancelled")
        self._m_deadline = self.metrics.counter("service.jobs.deadline")
        self._m_retries = self.metrics.counter("service.jobs.retries")
        self._m_rank_deaths = self.metrics.counter("service.pool.rank_deaths")
        self._g_live = self.metrics.gauge("service.pool.live")
        self._g_queue = self.metrics.gauge("service.queue.depth")
        self._g_degraded = self.metrics.gauge("service.degraded")
        self._g_live.set(self.pool.live_count())

        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self.state = SERVING
        self._started_at = time.time()
        self._jobs: dict[str, JobRecord] = {}
        self._queue: list[tuple[int, int, str]] = []   # (-priority, seq, id)
        self._retry_heap: list[tuple[float, str]] = []  # (due_monotonic, id)
        self._seq = itertools.count(1)
        self._serial = itertools.count(1)
        self._stop_evt = threading.Event()
        self._stop_done = threading.Event()
        self._drain_deadline: float | None = None

        # -- listener ----------------------------------------------------
        self._socket_path = None
        if tcp is not None:
            self._server = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._server.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._server.bind(tcp)
        else:
            if socket_path is None:
                raise ValueError("need socket_path or tcp address")
            self._socket_path = socket_path
            try:
                os.unlink(socket_path)
            except FileNotFoundError:
                pass
            self._server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._server.bind(socket_path)
        self._server.listen(16)
        self._server.settimeout(0.2)
        self._threads: list[threading.Thread] = []

    @property
    def address(self):
        """Bound address: UDS path or ``(host, port)``."""
        return self._socket_path or self._server.getsockname()

    # -- lifecycle --------------------------------------------------------
    def start(self) -> None:
        for target, name in (
            (self._accept_loop, "service-accept"),
            (self._control_loop, "service-control"),
        ):
            t = threading.Thread(target=target, name=name, daemon=True)
            t.start()
            self._threads.append(t)

    def serve_forever(self) -> None:
        """Block until the service reaches STOPPED."""
        with self._lock:
            while self.state != STOPPED:
                self._changed.wait(timeout=1.0)

    def drain(self) -> None:
        """Stop admitting; let queued + running jobs finish within the
        drain grace, then stop.  Idempotent."""
        with self._lock:
            if self.state in (DRAINING, STOPPED):
                return
            self.state = DRAINING
            self._drain_deadline = time.monotonic() + self.config.drain_grace_s
            self._changed.notify_all()

    def stop(self) -> None:
        """Hard stop: kill in-flight jobs, stop the pool, close sockets,
        write merged telemetry.  Idempotent."""
        with self._lock:
            if self.state == STOPPED:
                # Another thread is (or finished) tearing down; wait so
                # our caller sees a fully-stopped service — in
                # particular, the merged telemetry file on disk.
                already_stopped = True
            else:
                already_stopped = False
                self.state = STOPPED
        if already_stopped:
            self._stop_done.wait(timeout=30.0)
            return
        with self._lock:
            running = [r.job_id for r in self._jobs.values()
                       if r.state == RUNNING]
            queued_ids = [jid for _, _, jid in self._queue]
            self._queue.clear()
            self._retry_heap.clear()
            self._changed.notify_all()
        for job_id in running:
            self.pool.kill(job_id)
        with self._lock:
            for job_id in queued_ids:
                rec = self._jobs.get(job_id)
                if rec is not None and rec.state == QUEUED:
                    self._finish(rec, CANCELLED, error="service stopped")
        try:
            self._stop_evt.set()
            self._server.close()
            if self._socket_path:
                try:
                    os.unlink(self._socket_path)
                except OSError:
                    pass
            self.pool.stop()
            self._write_metrics()
        finally:
            self._stop_done.set()

    def _write_metrics(self) -> None:
        if not self.metrics_out:
            return
        per_rank = {}
        if hasattr(self.pool, "telemetry_snapshots"):
            per_rank = self.pool.telemetry_snapshots()
        doc = {
            "service": self.metrics.snapshot(),
            "jobs": {jid: rec.to_wire() for jid, rec in self._jobs.items()},
            "ranks": {str(r): s for r, s in per_rank.items()},
        }
        if per_rank:
            doc["merged"] = merge_snapshots(list(per_rank.values()))
        tmp = self.metrics_out + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
        os.replace(tmp, self.metrics_out)

    # -- admission --------------------------------------------------------
    def submit(self, spec: JobSpec):
        """Admission control.  Returns ``(job_id, None)`` on acceptance
        or ``(None, reason)`` on rejection."""
        self._m_submitted.inc()
        reason = self._admission_error(spec)
        if reason is not None:
            self._m_rejected.inc()
            return None, reason
        with self._lock:
            if self.state in (DRAINING, STOPPED):
                self._m_rejected.inc()
                return None, "service is draining; not admitting new jobs"
            if len(self._queue) >= self.config.queue_depth:
                self._m_rejected.inc()
                return None, (
                    f"queue full ({self.config.queue_depth} jobs); "
                    "retry later (backpressure)"
                )
            seq = next(self._seq)
            job_id = f"job-{seq:06d}"
            rec = JobRecord(job_id, spec)
            self._jobs[job_id] = rec
            heapq.heappush(self._queue, (-spec.priority, seq, job_id))
            self._g_queue.set(len(self._queue))
            self._m_accepted.inc()
            self._changed.notify_all()
            return job_id, None

    def _admission_error(self, spec: JobSpec) -> str | None:
        if spec.ranks > self.pool.live_count():
            return (
                f"job needs {spec.ranks} ranks but only "
                f"{self.pool.live_count()} are live in the pool"
            )
        if spec.kind == protocol.KIND_BENCHMARK:
            from ..core.options import Options
            from ..core.registry import get_benchmark

            try:
                bench = get_benchmark(spec.benchmark)
            except KeyError as exc:
                return str(exc)
            if spec.ranks < bench.min_ranks:
                return (
                    f"{spec.benchmark} needs at least {bench.min_ranks} "
                    f"ranks, job asked for {spec.ranks}"
                )
            try:
                Options(**spec.options)
            except (TypeError, ValueError) as exc:
                return f"invalid benchmark options: {exc}"
        return None

    def cancel(self, job_id: str) -> tuple[JobRecord | None, str | None]:
        with self._lock:
            rec = self._jobs.get(job_id)
            if rec is None:
                return None, f"unknown job {job_id!r}"
            if rec.state in TERMINAL_STATES:
                return rec, None
            if rec.state == QUEUED:
                self._queue = [e for e in self._queue if e[2] != job_id]
                heapq.heapify(self._queue)
                self._retry_heap = [e for e in self._retry_heap
                                    if e[1] != job_id]
                heapq.heapify(self._retry_heap)
                self._g_queue.set(len(self._queue))
                self._finish(rec, CANCELLED, error="cancelled by client")
                return rec, None
            # RUNNING: mark first so the pool's failure event is folded
            # into the cancel rather than counted as a job failure.
            rec.state = CANCELLED
        self.pool.kill(job_id)
        return rec, None

    def status(self) -> dict:
        with self._lock:
            counts: dict[str, int] = {}
            for rec in self._jobs.values():
                counts[rec.state] = counts.get(rec.state, 0) + 1
            return {
                "state": self.state,
                "pool": self.pool.describe(),
                "queue_depth": len(self._queue),
                "running": counts.get(RUNNING, 0),
                "jobs": counts,
                "metrics": self.metrics.snapshot(),
                "uptime_s": round(time.time() - self._started_at, 3),
            }

    def wait_terminal(self, job_id: str, timeout: float | None):
        """Block until ``job_id`` is terminal (or timeout); returns the
        record, or None for an unknown id."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while True:
                rec = self._jobs.get(job_id)
                if rec is None or rec.state in TERMINAL_STATES:
                    return rec
                if self.state == STOPPED:
                    return rec
                wait = None if deadline is None \
                    else deadline - time.monotonic()
                if wait is not None and wait <= 0:
                    return rec
                self._changed.wait(timeout=wait if wait is None
                                   else min(wait, 1.0))

    # -- control loop -----------------------------------------------------
    def _control_loop(self) -> None:
        while not self._stop_evt.is_set():
            try:
                event = self.pool.events.get(timeout=_TICK_S)
            except Exception:
                event = None
            if event is not None:
                self._handle_pool_event(event)
                # Drain any burst without waiting a tick each.
                while True:
                    try:
                        self._handle_pool_event(self.pool.events.get_nowait())
                    except Exception:
                        break
            self._check_deadlines()
            self._dispatch_ready()
            self._check_drain_done()

    def _handle_pool_event(self, event: dict) -> None:
        etype = event.get("type")
        if etype == "rank_dead":
            self._m_rank_deaths.inc()
            self._g_live.set(self.pool.live_count())
            with self._lock:
                if self.state == SERVING:
                    self.state = DEGRADED
                    self._g_degraded.set(1)
                self._changed.notify_all()
            return
        if etype == "pool_lost":
            with self._lock:
                for rec in self._jobs.values():
                    if rec.state in (QUEUED, RUNNING):
                        self._finish(
                            rec, FAILED,
                            error=f"pool lost: {event.get('reason')}",
                            failure_kind="pool_lost",
                        )
                self._queue.clear()
                self._g_queue.set(0)
            self.stop()
            return
        job_id = event.get("job_id")
        with self._lock:
            rec = self._jobs.get(job_id)
            if rec is None:
                return
            if rec.state == CANCELLED:
                # Cancel raced the pool; the revoke-driven failure event
                # is the kill taking effect, not a new outcome.
                if rec.finished_at is None:
                    self._finish(rec, CANCELLED,
                                 error=rec.error or "cancelled by client")
                return
            if rec.state == DEADLINE:
                if rec.finished_at is None:
                    self._finish(rec, DEADLINE, error=rec.error)
                return
            if rec.state != RUNNING:
                return
            if etype == "job_done":
                rec.result = event.get("result")
                self._finish(rec, DONE)
                return
            # job_failed
            self._classify_failure(rec, event)

    def _classify_failure(self, rec: JobRecord, event: dict) -> None:
        """Decide FAILED / retry / collateral-requeue.  Lock held."""
        error = event.get("error") or "job failed"
        kinds = set(event.get("kinds") or ())
        dead_member = bool(event.get("dead_member"))
        if dead_member:
            cap = rec.spec.max_retries
            if cap is None:
                cap = self.config.retry_max
            if rec.spec.ranks > self.pool.live_count():
                self._finish(rec, FAILED, error=(
                    f"rank failure: {error} (pool shrank below job size: "
                    f"needs {rec.spec.ranks}, {self.pool.live_count()} live)"
                ), failure_kind="rank_failure")
                return
            if rec.attempts <= cap:
                self._schedule_retry(rec, error)
                return
            self._finish(rec, FAILED, error=f"rank failure: {error} "
                         f"(retries exhausted after {rec.attempts} attempts)",
                         failure_kind="rank_failure")
            return
        if kinds and kinds <= {"rank_failed", "revoked"}:
            # None of this job's members died: an unrelated death on the
            # shared fabric poisoned its engines.  Requeue for free.
            if rec.collateral_requeues < COLLATERAL_REQUEUE_CAP:
                rec.collateral_requeues += 1
                rec.state = QUEUED
                rec.run = None
                rec.deadline_at = None
                heapq.heappush(
                    self._queue,
                    (-rec.spec.priority, next(self._seq), rec.job_id),
                )
                self._g_queue.set(len(self._queue))
                self._changed.notify_all()
                return
            self._finish(rec, FAILED,
                         error=f"collateral rank-failure exposure: {error}",
                         failure_kind="collateral")
            return
        self._finish(rec, FAILED, error=error, failure_kind="app_error")

    def _schedule_retry(self, rec: JobRecord, error: str) -> None:
        """Queue a retryable job behind its capped-exponential backoff."""
        self._m_retries.inc()
        rec.state = QUEUED
        rec.run = None
        rec.deadline_at = None
        rec.error = f"retrying after rank failure: {error}"
        due = time.monotonic() + self.config.retry_backoff_s(rec.attempts)
        heapq.heappush(self._retry_heap, (due, rec.job_id))
        self._changed.notify_all()

    def _check_deadlines(self) -> None:
        now = time.monotonic()
        expired = []
        with self._lock:
            for rec in self._jobs.values():
                if rec.state == RUNNING and rec.deadline_at is not None \
                        and now >= rec.deadline_at:
                    rec.state = DEADLINE
                    rec.error = (
                        f"deadline exceeded "
                        f"({rec.spec.deadline_s or self.config.default_deadline_s}s)"
                    )
                    self._m_deadline.inc()
                    expired.append(rec.job_id)
        for job_id in expired:
            # Revoke the job's context: members unblock with
            # CommRevokedError, the pool frees them, and the eventual
            # job_failed event folds into the DEADLINE outcome above.
            self.pool.kill(job_id)

    def _dispatch_ready(self) -> None:
        while True:
            with self._lock:
                if self.state == STOPPED:
                    return
                now = time.monotonic()
                while self._retry_heap and self._retry_heap[0][0] <= now:
                    _, job_id = heapq.heappop(self._retry_heap)
                    rec = self._jobs.get(job_id)
                    if rec is not None and rec.state == QUEUED:
                        heapq.heappush(
                            self._queue,
                            (-rec.spec.priority, next(self._seq), job_id),
                        )
                self._g_queue.set(len(self._queue))
                rec = self._pop_dispatchable()
                if rec is None:
                    return
                run = JobRun(
                    job_id=rec.job_id, spec=rec.spec, members=[],
                    context=job_context(next(self._serial)),
                )
                rec.run = run
                rec.state = RUNNING
                rec.attempts += 1
                rec.started_at = time.time()
                deadline_s = rec.spec.deadline_s
                if deadline_s is None:
                    deadline_s = self.config.default_deadline_s
                rec.deadline_at = time.monotonic() + deadline_s
                self._g_queue.set(len(self._queue))
            self.pool.dispatch(run)

    def _pop_dispatchable(self) -> JobRecord | None:
        """Pop the best queued job the pool can run right now.  Lock
        held.  Skips (keeps queued) jobs that need more free ranks than
        currently available; fails jobs that can never run again."""
        kept = []
        picked = None
        while self._queue:
            entry = heapq.heappop(self._queue)
            rec = self._jobs.get(entry[2])
            if rec is None or rec.state != QUEUED:
                continue
            if rec.spec.ranks > self.pool.live_count():
                self._finish(
                    rec, FAILED,
                    error=(
                        f"pool degraded below job size: needs "
                        f"{rec.spec.ranks} ranks, "
                        f"{self.pool.live_count()} live"
                    ),
                    failure_kind="pool_degraded",
                )
                continue
            if self.pool.can_dispatch(rec.spec.ranks):
                picked = rec
                break
            kept.append(entry)
            if not self.pool.concurrent:
                break
        for entry in kept:
            heapq.heappush(self._queue, entry)
        return picked

    def _check_drain_done(self) -> None:
        with self._lock:
            if self.state != DRAINING:
                return
            pending = any(
                rec.state in (QUEUED, RUNNING) for rec in self._jobs.values()
            )
            overdue = (
                self._drain_deadline is not None
                and time.monotonic() >= self._drain_deadline
            )
            if pending and not overdue:
                return
        self.stop()

    def _finish(self, rec: JobRecord, state: str,
                error: str | None = None,
                failure_kind: str | None = None) -> None:
        """Move a job to a terminal state.  Lock held."""
        rec.state = state
        if error is not None:
            rec.error = error
        elif state == DONE:
            rec.error = None    # drop any stale retry annotation
        if state == FAILED:
            rec.failure_kind = failure_kind or "app_error"
        rec.finished_at = time.time()
        rec.deadline_at = None
        if state == DONE:
            self._m_completed.inc()
        elif state == FAILED:
            self._m_failed.inc()
        elif state == CANCELLED:
            self._m_cancelled.inc()
        self._changed.notify_all()

    # -- connection handling ----------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop_evt.is_set():
            try:
                conn, _ = self._server.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            t = threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="service-conn", daemon=True,
            )
            t.start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            fh = conn.makefile("rb")
            while True:
                try:
                    request = read_message(fh)
                except (ValueError, OSError) as exc:
                    protocol.write_message(conn, {
                        "ok": False, "reply": ERROR,
                        "reason": f"bad request: {exc}",
                    })
                    return
                if request is None:
                    return
                try:
                    reply = self._handle_request(request)
                except Exception as exc:  # noqa: BLE001 - reply, don't die
                    reply = {
                        "ok": False, "reply": ERROR,
                        "reason": f"{type(exc).__name__}: {exc}",
                    }
                try:
                    protocol.write_message(conn, reply)
                except OSError:
                    return
        finally:
            try:
                conn.close()
            except OSError:
                pass

    def _handle_request(self, request: dict) -> dict:
        op = request.get("op")
        if op == "SUBMIT":
            try:
                spec = JobSpec.from_wire(request.get("job"))
            except (TypeError, ValueError) as exc:
                self._m_submitted.inc()
                self._m_rejected.inc()
                return {"ok": False, "reply": REJECTED,
                        "reason": f"invalid job spec: {exc}"}
            job_id, reason = self.submit(spec)
            if job_id is None:
                return {"ok": False, "reply": REJECTED, "reason": reason}
            with self._lock:
                depth = len(self._queue)
            return {"ok": True, "reply": ACCEPTED,
                    "job_id": job_id, "queue_depth": depth}
        if op == "STATUS":
            return {"ok": True, "reply": "STATUS", **self.status()}
        if op == "JOB":
            rec = self._jobs.get(request.get("job_id", ""))
            if rec is None:
                return {"ok": False, "reply": ERROR,
                        "reason": f"unknown job {request.get('job_id')!r}"}
            with self._lock:
                return {"ok": True, "reply": "JOB", "job": rec.to_wire()}
        if op == "RESULT":
            job_id = request.get("job_id", "")
            timeout = request.get("timeout_s")
            if request.get("wait"):
                rec = self.wait_terminal(job_id, timeout)
            else:
                rec = self._jobs.get(job_id)
            if rec is None:
                return {"ok": False, "reply": ERROR,
                        "reason": f"unknown job {job_id!r}"}
            with self._lock:
                wire = rec.to_wire()
            if wire["state"] not in TERMINAL_STATES:
                return {"ok": False, "reply": ERROR,
                        "reason": f"job {job_id} not finished "
                                  f"(state {wire['state']})",
                        "job": wire}
            return {"ok": True, "reply": "RESULT", "job": wire}
        if op == "CANCEL":
            rec, reason = self.cancel(request.get("job_id", ""))
            if rec is None:
                return {"ok": False, "reply": ERROR, "reason": reason}
            with self._lock:
                return {"ok": True, "reply": "CANCELLED",
                        "job": rec.to_wire()}
        if op == "DRAIN":
            self.drain()
            return {"ok": True, "reply": "DRAINING"}
        return {"ok": False, "reply": ERROR,
                "reason": f"unknown op {op!r}"}
