"""Process-backed rank pool: true rank processes spawned once, kept warm.

:class:`ProcessRankPool` presents the same event-queue surface as
:class:`~repro.service.pool.ThreadRankPool`, but its ranks are real
processes from :func:`repro.mpi.launcher.spawn_ranks` running
:mod:`repro.service.worker`.  The pool leader dials back on a private
control socket; job directives flow leader-ward and fan out inside the
worker world.  A dead process is detected both ways — the survivors
shrink and report ``SHRUNK``, and the monitor thread sees the exit —
so the server learns of degradation even if the whole worker world is
lost.

Teardown always runs :meth:`SpawnedRanks.cleanup`, the idempotent
resource sweep shared with ``ombpy-run``: a service that drains and
relaunches its pool many times in one process must never leak UDS
socket dirs or SHM segments.
"""

from __future__ import annotations

import os
import queue
import socket
import tempfile
import threading
import time
import sys

from ..mpi.launcher import spawn_ranks
from .pool import JobRun
from .protocol import read_message, write_message
from .worker import ENV_CTRL


class ProcessRankPool:
    """N warm rank processes serving jobs one at a time."""

    #: Process ranks block in collectives between directives, so jobs
    #: are serialized; the server queues behind the single slot.
    concurrent = False

    def __init__(
        self,
        size: int,
        transport: str = "tcp",
        env_extra: dict[str, str] | None = None,
        startup_timeout: float = 60.0,
    ) -> None:
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = size
        self.events: queue.Queue = queue.Queue()
        self._lock = threading.Lock()
        self._live = 0              # 0 until HELLO arrives
        self._dead: set[int] = set()
        self._busy_job: str | None = None
        self._stopping = False
        self._ctrl_dir = tempfile.mkdtemp(prefix="ombpy-service-")
        self._ctrl_path = os.path.join(self._ctrl_dir, "ctrl.sock")
        self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._listener.bind(self._ctrl_path)
        self._listener.listen(4)
        self._listener.settimeout(0.2)
        self._conn: socket.socket | None = None
        env = dict(env_extra or {})
        env[ENV_CTRL] = self._ctrl_path
        self._handle = spawn_ranks(
            size,
            [sys.executable, "-m", "repro.service.worker"],
            transport=transport,
            env_extra=env,
        )
        self._threads = [
            threading.Thread(target=self._accept_loop,
                             name="procpool-accept", daemon=True),
            threading.Thread(target=self._monitor_loop,
                             name="procpool-monitor", daemon=True),
        ]
        for t in self._threads:
            t.start()
        deadline = time.monotonic() + startup_timeout
        while time.monotonic() < deadline:
            with self._lock:
                if self._live > 0:
                    return
            time.sleep(0.05)
        self.stop()
        raise TimeoutError(
            f"worker pool did not report HELLO within {startup_timeout}s"
        )

    # -- server-facing surface -------------------------------------------
    def live_count(self) -> int:
        with self._lock:
            return self._live if self._live else self.size

    def failed_ranks(self) -> set[int]:
        with self._lock:
            return set(self._dead)

    def free_count(self) -> int:
        with self._lock:
            return 0 if self._busy_job is not None else self._live

    def can_dispatch(self, nranks: int) -> bool:
        with self._lock:
            return (
                self._conn is not None
                and self._busy_job is None
                and nranks <= self._live
            )

    def dispatch(self, run: JobRun) -> None:
        with self._lock:
            if self._conn is None or self._busy_job is not None:
                raise RuntimeError("dispatch on a busy or headless pool")
            self._busy_job = run.job_id
            conn = self._conn
        run.members = list(range(run.spec.ranks))
        run.pending = set(run.members)
        try:
            write_message(conn, {
                "op": "RUN",
                "job_id": run.job_id,
                "spec": run.spec.to_wire(),
            })
        except OSError as exc:
            with self._lock:
                self._busy_job = None
            self.events.put({
                "type": "job_failed", "job_id": run.job_id,
                "error": f"control channel lost: {exc}",
                "kinds": ["rank_failed"], "dead_member": True,
            })

    def kill(self, job_id: str) -> bool:
        """No mid-job preemption across the process boundary: the server
        marks the outcome and folds the late result when it arrives."""
        return False

    def describe(self) -> dict:
        with self._lock:
            return {
                "substrate": "processes",
                "size": self.size,
                "live": self._live,
                "free": 0 if self._busy_job is not None else self._live,
                "failed_ranks": sorted(self._dead),
            }

    def telemetry_snapshots(self) -> dict[int, dict]:
        return {}

    def stop(self, timeout: float = 10.0) -> None:
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
            conn = self._conn
        if conn is not None:
            try:
                write_message(conn, {"op": "SHUTDOWN"})
            except OSError:
                pass
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if all(code is not None for code in self._handle.poll_exits()):
                break
            time.sleep(0.05)
        # cleanup() kills stragglers and sweeps UDS/SHM artifacts; it is
        # idempotent, so a drain-then-atexit double call is harmless.
        self._handle.cleanup()
        try:
            self._listener.close()
        except OSError:
            pass
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass
        try:
            os.unlink(self._ctrl_path)
        except OSError:
            pass
        try:
            os.rmdir(self._ctrl_dir)
        except OSError:
            pass

    # -- control-channel plumbing ----------------------------------------
    def _accept_loop(self) -> None:
        while True:
            with self._lock:
                if self._stopping:
                    return
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            with self._lock:
                old = self._conn
                self._conn = conn
            if old is not None:
                try:
                    old.close()
                except OSError:
                    pass
            threading.Thread(
                target=self._reader_loop, args=(conn,),
                name="procpool-reader", daemon=True,
            ).start()

    def _reader_loop(self, conn: socket.socket) -> None:
        fh = conn.makefile("rb")
        while True:
            try:
                msg = read_message(fh)
            except (ValueError, OSError):
                msg = None
            if msg is None:
                return
            self._handle_worker_message(msg)

    def _handle_worker_message(self, msg: dict) -> None:
        op = msg.get("op")
        if op == "HELLO":
            with self._lock:
                self._live = int(msg.get("size", self.size))
            return
        if op == "SHRUNK":
            with self._lock:
                self._live = int(msg.get("size", 0))
                new_dead = [
                    r for r in msg.get("failed", []) if r not in self._dead
                ]
                self._dead.update(new_dead)
                victim = self._busy_job
                self._busy_job = None
            for rank in new_dead:
                self.events.put({
                    "type": "rank_dead", "rank": rank,
                    "reason": "worker process died",
                })
            if victim is not None:
                self.events.put({
                    "type": "job_failed", "job_id": victim,
                    "error": f"rank process died mid-job "
                             f"(failed ranks: {sorted(self._dead)})",
                    "kinds": ["crash"], "dead_member": True,
                })
            return
        if op == "RESULT":
            with self._lock:
                if self._busy_job == msg.get("job_id"):
                    self._busy_job = None
            self.events.put({
                "type": "job_done", "job_id": msg.get("job_id"),
                "result": msg.get("result"),
            })
            return
        if op == "JOB_FAILED":
            with self._lock:
                if self._busy_job == msg.get("job_id"):
                    self._busy_job = None
            self.events.put({
                "type": "job_failed", "job_id": msg.get("job_id"),
                "error": msg.get("error") or "job failed",
                "kinds": ["error"], "dead_member": False,
            })

    def _monitor_loop(self) -> None:
        while True:
            with self._lock:
                if self._stopping:
                    return
            codes = self._handle.poll_exits()
            if all(code is not None for code in codes):
                with self._lock:
                    stopping = self._stopping
                if not stopping:
                    self.events.put({
                        "type": "pool_lost",
                        "reason": f"all worker ranks exited "
                                  f"(codes {codes})",
                    })
                return
            time.sleep(0.2)
