"""Service tuning knobs: the ``OMBPY_SERVICE_*`` environment.

Mirrors the convention of the resilience knobs (``OMBPY_HB_*``,
``OMBPY_REL_*``, ``OMBPY_ULFM_TIMEOUT``): every knob has a safe default,
is read once at service start, and a malformed value fails fast with an
error naming the variable and the accepted range — a daemon must not
come up half-configured.

| variable | default | meaning |
|---|---|---|
| ``OMBPY_SERVICE_QUEUE_DEPTH``     | 64    | max queued jobs before SUBMIT is REJECTED (backpressure) |
| ``OMBPY_SERVICE_DEADLINE_S``      | 120.0 | default per-job wall-clock deadline, seconds |
| ``OMBPY_SERVICE_RETRY_MAX``       | 1     | retry cap for retryable (rank-failure) jobs |
| ``OMBPY_SERVICE_DRAIN_GRACE_S``   | 30.0  | seconds a drain waits for in-flight jobs before forcing shutdown |
| ``OMBPY_SERVICE_RETRY_BACKOFF_MS``| 100.0 | initial retry backoff; doubles per attempt, capped at 5 s |

The same values are overridable per run from the ``ombpy-serve`` command
line, which wins over the environment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

ENV_QUEUE_DEPTH = "OMBPY_SERVICE_QUEUE_DEPTH"
ENV_DEADLINE = "OMBPY_SERVICE_DEADLINE_S"
ENV_RETRY_MAX = "OMBPY_SERVICE_RETRY_MAX"
ENV_DRAIN_GRACE = "OMBPY_SERVICE_DRAIN_GRACE_S"
ENV_RETRY_BACKOFF = "OMBPY_SERVICE_RETRY_BACKOFF_MS"

#: Retry backoff ceiling: ``backoff = min(CAP, base * 2**attempt)``.
RETRY_BACKOFF_CAP_S = 5.0


def _env_int(name: str, default: int, minimum: int) -> int:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be an integer >= {minimum}, got {raw!r}"
        ) from None
    if value < minimum:
        raise ValueError(
            f"{name} must be an integer >= {minimum}, got {value}"
        )
    return value


def _env_float(name: str, default: float, minimum: float,
               exclusive: bool = False) -> float:
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ValueError(
            f"{name} must be a number {'>' if exclusive else '>='} "
            f"{minimum} (seconds), got {raw!r}"
        ) from None
    if value < minimum or (exclusive and value == minimum):
        raise ValueError(
            f"{name} must be a number {'>' if exclusive else '>='} "
            f"{minimum} (seconds), got {value}"
        )
    return value


@dataclass(frozen=True)
class ServiceConfig:
    """Validated service configuration (admission, deadlines, retries)."""

    queue_depth: int = 64
    default_deadline_s: float = 120.0
    retry_max: int = 1
    drain_grace_s: float = 30.0
    retry_backoff_ms: float = 100.0

    def __post_init__(self) -> None:
        if self.queue_depth < 1:
            raise ValueError(
                f"queue depth must be >= 1, got {self.queue_depth}"
            )
        if self.default_deadline_s <= 0:
            raise ValueError(
                f"default deadline must be > 0 seconds, "
                f"got {self.default_deadline_s}"
            )
        if self.retry_max < 0:
            raise ValueError(
                f"retry cap must be >= 0, got {self.retry_max}"
            )
        if self.drain_grace_s < 0:
            raise ValueError(
                f"drain grace must be >= 0 seconds, "
                f"got {self.drain_grace_s}"
            )
        if self.retry_backoff_ms <= 0:
            raise ValueError(
                f"retry backoff must be > 0 ms, "
                f"got {self.retry_backoff_ms}"
            )

    def retry_backoff_s(self, attempt: int) -> float:
        """Capped-exponential backoff before retry number ``attempt``."""
        base = self.retry_backoff_ms / 1000.0
        return min(RETRY_BACKOFF_CAP_S, base * (2 ** max(0, attempt - 1)))

    @classmethod
    def from_env(cls, **overrides) -> "ServiceConfig":
        """Build from ``OMBPY_SERVICE_*``; ``overrides`` (CLI flags) win.

        Raises ``ValueError`` naming the offending variable on any
        malformed or out-of-range value.
        """
        values = {
            "queue_depth": _env_int(ENV_QUEUE_DEPTH, cls.queue_depth, 1),
            "default_deadline_s": _env_float(
                ENV_DEADLINE, cls.default_deadline_s, 0.0, exclusive=True
            ),
            "retry_max": _env_int(ENV_RETRY_MAX, cls.retry_max, 0),
            "drain_grace_s": _env_float(
                ENV_DRAIN_GRACE, cls.drain_grace_s, 0.0
            ),
            "retry_backoff_ms": _env_float(
                ENV_RETRY_BACKOFF, cls.retry_backoff_ms, 0.0,
                exclusive=True,
            ),
        }
        values.update({k: v for k, v in overrides.items() if v is not None})
        return cls(**values)
