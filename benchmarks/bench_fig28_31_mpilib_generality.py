"""Figs 28-31 — OMB-Py generality: MVAPICH2 vs Intel MPI on Frontera.

Paper: average latency difference 0.36 us across all message sizes
(Figs 28/29); average bandwidth difference 856 MB/s (Figs 30/31).
"""

import pytest

from figure_common import LARGE, SMALL
from repro.core.output import format_comparison
from repro.core.results import average_overhead
from repro.simulator import FRONTERA, INTEL_MPI, MVAPICH2, simulate_pt2pt

ALL_SIZES = SMALL + LARGE


def test_fig28_29_mpilib_latency(benchmark, report):
    def produce():
        mv = simulate_pt2pt(
            FRONTERA, "inter", api="buffer", mpilib=MVAPICH2
        )
        im = simulate_pt2pt(
            FRONTERA, "inter", api="buffer", mpilib=INTEL_MPI
        )
        return mv, im

    mv, im = benchmark(produce)
    report.section("Fig 28/29: OMB-Py latency, MVAPICH2 vs Intel MPI")
    report.table(format_comparison([mv, im], ["MVAPICH2", "IntelMPI"]))

    diff = average_overhead(mv, im, ALL_SIZES)
    report.row("avg latency difference (all sizes)", 0.36, f"{diff:.3f}")
    assert diff == pytest.approx(0.36, abs=0.03)
    # Flat difference: constant across the sweep, per the paper.
    deltas = [
        im.row_for(s).value - mv.row_for(s).value for s in mv.sizes()
    ]
    assert max(deltas) - min(deltas) < 0.05


def test_fig30_31_mpilib_bandwidth(benchmark, report):
    def produce():
        mv = simulate_pt2pt(
            FRONTERA, "inter", api="buffer", metric="bandwidth",
            mpilib=MVAPICH2,
        )
        im = simulate_pt2pt(
            FRONTERA, "inter", api="buffer", metric="bandwidth",
            mpilib=INTEL_MPI,
        )
        return mv, im

    mv, im = benchmark(produce)
    report.section("Fig 30/31: OMB-Py bandwidth, MVAPICH2 vs Intel MPI")
    report.table(format_comparison([mv, im], ["MVAPICH2", "IntelMPI"]))

    diff = -average_overhead(mv, im, ALL_SIZES)
    report.row("avg bandwidth difference (all sizes)", 856, f"{diff:.0f}",
               "MB/s")
    assert diff == pytest.approx(856, rel=0.25)
    # MVAPICH2 never slower than Intel MPI in this calibration.
    for size in mv.sizes():
        assert mv.row_for(size).value >= im.row_for(size).value
