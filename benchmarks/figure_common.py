"""Shared machinery for the figure-reproduction benchmarks.

Each ``bench_figNN_*`` file regenerates one figure's curve family through
the calibrated cluster simulator (the paper's hardware does not exist
here; see DESIGN.md §2), prints the series side by side, reports
paper-vs-measured overhead statistics, and asserts the shape criteria.
Several benches additionally run the *live* runtime at laptop scale to
check that the qualitative ordering holds on real execution.
"""

from __future__ import annotations

from repro.core.output import format_comparison
from repro.core.results import ResultTable, average_overhead
from repro.simulator.api import DEFAULT_LARGE_SIZES, DEFAULT_SMALL_SIZES

SMALL = DEFAULT_SMALL_SIZES
LARGE = DEFAULT_LARGE_SIZES


def check_overhead(
    report,
    title: str,
    base: ResultTable,
    other: ResultTable,
    paper_small: float,
    paper_large: float,
    rel: float = 0.15,
    unit: str = "us",
) -> None:
    """Print + assert small/large-range average overheads vs the paper."""
    small = average_overhead(base, other, SMALL)
    large = average_overhead(base, other, LARGE)
    report.section(title)
    report.table(format_comparison([base, other], ["OMB (native)", "OMB-Py"]))
    report.row("avg overhead, small msgs", paper_small, f"{small:.3f}", unit)
    report.row("avg overhead, large msgs", paper_large, f"{large:.3f}", unit)
    assert small == approx(paper_small, rel)
    assert large == approx(paper_large, rel)
    # Structural shape: OMB-Py never beats the native baseline.
    for size in base.sizes():
        assert other.row_for(size).value >= base.row_for(size).value


def approx(target: float, rel: float):
    import pytest

    return pytest.approx(target, rel=rel)


def relative_overhead_shrinks(base: ResultTable, other: ResultTable) -> None:
    """Paper insight 1: overhead noticeable small, negligible large."""
    small_rel = other.row_for(1).value / base.row_for(1).value
    largest = base.sizes()[-1]
    large_rel = other.row_for(largest).value / base.row_for(largest).value
    assert small_rel > large_rel
    assert large_rel < 1.15


def live_latency_table(api: str, buffer: str = "numpy", device: str = "cpu",
                       ranks: int = 2, max_size: int = 4096,
                       iterations: int = 30) -> ResultTable:
    """Run the real osu_latency benchmark on ranks-as-threads."""
    from repro.core import Options, get_benchmark
    from repro.core.runner import BenchContext
    from repro.mpi.world import run_on_threads

    opts = Options(
        device=device, buffer=buffer, api=api, min_size=1,
        max_size=max_size, iterations=iterations, warmup=5,
    )
    bench = get_benchmark("osu_latency")
    tables = run_on_threads(
        ranks, lambda c: bench.run(BenchContext(c, opts)), timeout=120
    )
    return tables[0]
