"""Figs 10/11 — inter-node CPU latency, OMB vs OMB-Py, Frontera.

Paper: 0.43 us small / 0.63 us large average overhead.  Inter-node large
overhead is far below intra-node large overhead (both paths cross the
NIC, so the Python side forces no extra copy the C side avoids).
"""

from figure_common import check_overhead
from repro.core.results import average_overhead
from repro.simulator import FRONTERA, simulate_pt2pt
from repro.simulator.api import DEFAULT_LARGE_SIZES


def test_fig10_11_inter_latency(benchmark, report):
    def produce():
        omb = simulate_pt2pt(FRONTERA, "inter", api="native")
        py = simulate_pt2pt(FRONTERA, "inter", api="buffer")
        return omb, py

    omb, py = benchmark(produce)
    check_overhead(
        report, "Fig 10/11: inter-node latency, Frontera",
        omb, py, paper_small=0.43, paper_large=0.63,
    )

    # Inter-node large overhead << intra-node large overhead.
    intra_omb = simulate_pt2pt(FRONTERA, "intra", api="native")
    intra_py = simulate_pt2pt(FRONTERA, "intra", api="buffer")
    inter_large = average_overhead(omb, py, DEFAULT_LARGE_SIZES)
    intra_large = average_overhead(intra_omb, intra_py, DEFAULT_LARGE_SIZES)
    report.row("large ovh inter vs intra", "0.63 < 2.31",
               f"{inter_large:.2f} < {intra_large:.2f}")
    assert inter_large < intra_large / 2
