"""Fig 38 — distributed matrix multiplication, 1-224 processes.

Paper: 4704 x 4704 operands; 79.63 s sequential -> 0.614 s on 224
processes (129.8x).  Full scale via the calibrated model; live section
runs the real row-partitioned algorithm on scaled operands.
"""

import numpy as np
import pytest

from repro.ml.datasets import random_matrix
from repro.ml.distributed import (
    distributed_matmul,
    run_sequential_vs_distributed,
    sequential_matmul,
)
from repro.simulator import simulate_ml


def test_fig38_matmul_speedup_curve(benchmark, report):
    series = benchmark(lambda: simulate_ml("matmul"))

    report.section("Fig 38: distributed matmul, RI2 (simulated full scale)")
    report.table(f"  {'procs':>6} {'time_s':>10} {'speedup':>9}")
    for p, t, s in series:
        report.table(f"  {p:>6} {t:>10.3f} {s:>9.1f}")

    by_procs = {p: (t, s) for p, t, s in series}
    report.row("sequential time", 79.63, f"{by_procs[1][0]:.2f}", "s")
    report.row("time @ 224 procs", 0.614, f"{by_procs[224][0]:.3f}", "s")
    report.row("speedup @ 224 procs", 129.8, f"{by_procs[224][1]:.1f}", "x")
    assert by_procs[1][0] == pytest.approx(79.63, rel=0.01)
    assert by_procs[224][0] == pytest.approx(0.614, rel=0.10)
    assert by_procs[224][1] == pytest.approx(129.8, rel=0.10)
    # Matmul scales best of the three workloads (lowest serial fraction).
    knn_224 = {p: s for p, _t, s in simulate_ml("knn")}[224]
    assert by_procs[224][1] > knn_224


def test_fig38_matmul_live_scaled(benchmark, report):
    """Live run: 512 x 512 operands, 4 ranks, identical product."""
    A, B = random_matrix(512, seed=1), random_matrix(512, seed=2)

    def produce():
        return run_sequential_vs_distributed(
            "matmul",
            lambda: sequential_matmul(A, B),
            lambda c: distributed_matmul(c, A, B),
            processes=4,
        )

    res = benchmark.pedantic(produce, rounds=1, iterations=1)
    report.section("Fig 38 live: 512x512 matmul on 4 ranks")
    assert np.allclose(res.result_sequential, res.result_distributed)
    report.row("products identical", "yes", "yes")
    report.row("live speedup (bounded by 1 core)", "-",
               f"{res.speedup:.2f}", "x")
