"""Fig 36 — distributed k-NN execution time and speedup, 1-224 processes.

Paper: Dota2 dataset (102,944 x 116); 112.9 s sequential -> 1.07 s on
224 processes (105.6x).  The full-scale curve is reproduced through the
calibrated Amdahl model (this machine has 1 core — see EXPERIMENTS.md);
the live section runs the real distributed algorithm on a scaled-down
synthetic Dota2 and checks accuracy equivalence plus timing sanity.
"""

import pytest

from repro.ml.datasets import dota2_like, train_test_split
from repro.ml.distributed import (
    distributed_knn,
    run_sequential_vs_distributed,
    sequential_knn,
)
from repro.simulator import simulate_ml


def test_fig36_knn_speedup_curve(benchmark, report):
    series = benchmark(lambda: simulate_ml("knn"))

    report.section("Fig 36: distributed k-NN, RI2 (simulated full scale)")
    report.table(f"  {'procs':>6} {'time_s':>10} {'speedup':>9}")
    for p, t, s in series:
        report.table(f"  {p:>6} {t:>10.2f} {s:>9.1f}")

    by_procs = {p: (t, s) for p, t, s in series}
    report.row("sequential time", 112.9, f"{by_procs[1][0]:.1f}", "s")
    report.row("time @ 224 procs", 1.07, f"{by_procs[224][0]:.2f}", "s")
    report.row("speedup @ 224 procs", 105.6, f"{by_procs[224][1]:.1f}", "x")
    assert by_procs[1][0] == pytest.approx(112.9, rel=0.01)
    assert by_procs[224][0] == pytest.approx(1.07, rel=0.10)
    assert by_procs[224][1] == pytest.approx(105.6, rel=0.10)
    # Near-linear within a node, sublinear beyond (the figure's shape).
    assert by_procs[2][1] > 1.9
    assert by_procs[28][1] > 20
    assert by_procs[224][1] < 224 * 0.55


def test_fig36_knn_live_scaled(benchmark, report):
    """Live run at laptop scale: identical accuracy, mechanism exercised."""
    X, y = dota2_like(n_samples=2000, seed=36)
    Xtr, Xte, ytr, yte = train_test_split(X, y, seed=36)

    def produce():
        return run_sequential_vs_distributed(
            "knn",
            lambda: sequential_knn(Xtr, ytr, Xte, yte),
            lambda c: distributed_knn(c, Xtr, ytr, Xte, yte),
            processes=4,
        )

    res = benchmark.pedantic(produce, rounds=1, iterations=1)
    report.section("Fig 36 live: scaled k-NN on 4 ranks (1-core machine)")
    report.row("accuracy distributed == sequential", "equal",
               f"{res.result_distributed:.4f}=={res.result_sequential:.4f}")
    report.row("live speedup (bounded by 1 core)", "-",
               f"{res.speedup:.2f}", "x")
    assert res.result_distributed == pytest.approx(
        res.result_sequential, abs=1e-12
    )
    assert res.distributed_s > 0
