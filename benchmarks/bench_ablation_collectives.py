"""Ablation 1 — collective algorithm selection.

DESIGN.md §5.1: the runtime picks algorithms by message size like
MVAPICH2's tuning tables.  This ablation forces each algorithm across the
sweep, on the live runtime and in the analytic model, and verifies the
selector's switch points are on the right side: tree/doubling algorithms
win for small messages, ring/pairwise for large.
"""

import time

import numpy as np

from repro.mpi import ops
from repro.mpi.collectives import selector
from repro.mpi.world import run_on_threads
from repro.simulator.collective_cost import allgather_us, allreduce_us
from repro.simulator.loggp import NetworkModel

NET = NetworkModel(alpha_us=1.1, beta_us_per_byte=1 / 11500)


def _live_allreduce_time(algorithm: str, nbytes: int, ranks: int = 4,
                         iters: int = 30) -> float:
    """Wall time per allreduce call (us) with one algorithm forced."""
    selector.force("allreduce", algorithm)
    try:
        def work(comm):
            send = np.zeros(nbytes // 8)
            for _ in range(5):
                comm.allreduce_array(send, ops.SUM)
            comm.barrier()
            t0 = time.perf_counter_ns()
            for _ in range(iters):
                comm.allreduce_array(send, ops.SUM)
            return (time.perf_counter_ns() - t0) / iters / 1e3

        return max(run_on_threads(ranks, work, timeout=120))
    finally:
        selector.force("allreduce", None)


def test_ablation_allreduce_algorithms_live(benchmark, report):
    def produce():
        return {
            alg: {
                nbytes: _live_allreduce_time(alg, nbytes)
                for nbytes in (64, 262144)
            }
            for alg in selector.available("allreduce")
        }

    times = benchmark.pedantic(produce, rounds=1, iterations=1)
    report.section("Ablation: live allreduce algorithms (us per call)")
    for alg, by_size in times.items():
        report.table(
            f"  {alg:<20} 64B={by_size[64]:>9.1f}  "
            f"256KB={by_size[262144]:>9.1f}"
        )
    # Every algorithm completes and produces sane positive timings.
    for alg, by_size in times.items():
        assert all(v > 0 for v in by_size.values()), alg


def test_ablation_analytic_switch_points(benchmark, report):
    """Model-level: the selector's thresholds sit where the curves cross."""
    def produce():
        p = 16
        out = {}
        for n in (256, 2048, 8192, 65536, 1 << 20):
            rd = p.bit_length() * (NET.latency_us(n))
            ring = 2 * (p - 1) * NET.latency_us(-(-n // p))
            out[n] = (rd, ring)
        return out

    curves = benchmark(produce)
    report.section("Ablation: recursive-doubling vs ring allreduce cost")
    for n, (rd, ring) in curves.items():
        report.table(f"  n={n:>8}: rd={rd:>10.1f}us ring={ring:>10.1f}us")
    # Small: doubling wins (fewer latency terms); large: ring wins
    # (bandwidth-optimal segments).
    assert curves[256][0] < curves[256][1]
    assert curves[1 << 20][0] > curves[1 << 20][1]

    # The dispatch formula agrees with its own components at extremes.
    assert allreduce_us(NET, 16, 256) <= curves[256][1]
    assert allgather_us(NET, 16, 1 << 20) == (16 - 1) * NET.latency_us(1 << 20)
