"""Ablation 5 — live transport choice.

DESIGN.md §5.5: identical benchmark code runs over the in-process
threads fabric and over real processes on three fabrics — localhost TCP,
Unix-domain sockets, and shared-memory rings.  This ablation measures
osu_latency on each and checks that every fabric produces a complete,
sane curve (they differ in kernel involvement: TCP > UDS > SHM).
"""

import subprocess
import sys
import textwrap

from figure_common import live_latency_table

_TCP_BENCH = textwrap.dedent("""
    import sys
    from repro.core import Options, get_benchmark
    from repro.core.runner import BenchContext
    from repro.mpi import init
    from repro.core.output import format_table

    world = init()
    opts = Options(min_size=1, max_size=4096, iterations=30, warmup=5)
    table = get_benchmark("osu_latency").run(BenchContext(world.comm, opts))
    if world.rank == 0:
        for row in table.rows:
            print(f"ROW {row.size} {row.value:.3f}")
    world.finalize()
""")


def test_ablation_transport_inproc_vs_tcp(benchmark, report, tmp_path):
    def produce():
        inproc = live_latency_table("buffer", max_size=4096, iterations=30)

        script = tmp_path / "proc_latency.py"
        script.write_text(_TCP_BENCH)
        curves = {}
        for fabric in ("tcp", "uds", "shm"):
            rows = None
            # Child startup can flake under full-suite load on heavily
            # oversubscribed hosts (observed once for shm on a 1-core
            # box: a rank stalled pre-main on a futex); retry a couple
            # of times with a bounded per-attempt timeout.
            for _attempt in range(3):
                try:
                    proc = subprocess.run(
                        [sys.executable, "-m", "repro.mpi.launcher",
                         "-n", "2", "--transport", fabric, str(script)],
                        capture_output=True, timeout=120, text=True,
                    )
                except subprocess.TimeoutExpired:
                    continue
                if proc.returncode != 0:
                    continue
                rows = {}
                for line in proc.stdout.splitlines():
                    if line.startswith("ROW "):
                        _tag, size, value = line.split()
                        rows[int(size)] = float(value)
                break
            curves[fabric] = rows
        return inproc, curves

    inproc, curves = benchmark.pedantic(produce, rounds=1, iterations=1)
    report.section("Ablation: transport latency (2 ranks, us)")
    for size in sorted(inproc.sizes()):
        row = f"  {size:>6} B: inproc={inproc.row_for(size).value:>8.1f}"
        for fabric in ("tcp", "uds", "shm"):
            rows = curves[fabric]
            cell = f"{rows[size]:>8.1f}" if rows else "     n/a"
            row += f"  {fabric}={cell}"
        report.table(row)
    # The socket fabrics must always work; shm is best-effort on
    # oversubscribed single-core hosts (it has dedicated tests).
    for fabric in ("tcp", "uds"):
        rows = curves[fabric]
        assert rows is not None, f"{fabric} failed all attempts"
        assert set(rows) == set(inproc.sizes()), fabric
        assert all(v > 0 for v in rows.values()), fabric
    if curves["shm"] is not None:
        assert all(v > 0 for v in curves["shm"].values())
    else:
        report.table("  (shm skipped: child startup flaked under load)")
