"""Table I — feature comparison of OMB-Py vs mpi4py demos, IMB, SMB.

Regenerates the feature matrix from the registry metadata and verifies the
claims that are checkable against this codebase (every feature OMB-Py
claims must actually be exercised by the suite).
"""

from repro.core.registry import (
    CATEGORIES,
    FEATURE_COLUMNS,
    FEATURE_MATRIX,
    available_benchmarks,
)
from repro.core.options import APIS, GPU_BUFFERS


def test_table1_feature_matrix(benchmark, report):
    def build():
        rows = []
        width = max(len(f) for f in FEATURE_MATRIX)
        header = f"{'feature':<{width}} | " + " | ".join(
            f"{c:<12}" for c in FEATURE_COLUMNS
        )
        rows.append(header)
        rows.append("-" * len(header))
        for feature, support in FEATURE_MATRIX.items():
            rows.append(
                f"{feature:<{width}} | "
                + " | ".join(f"{s:<12}" for s in support)
            )
        return "\n".join(rows)

    table = benchmark(build)
    report.section("Table I: feature comparison")
    report.table(table)

    # Verify OMB-Py's claimed features against the actual implementation.
    names = available_benchmarks()
    assert CATEGORIES["pt2pt"], "point_to_point"
    assert len(CATEGORIES["collective"]) == 9, "blocking_collectives"
    assert len(CATEGORIES["vector"]) == 4, "vector_collectives"
    assert "pickle" in APIS, "pickle_and_buffer_apis"
    assert set(GPU_BUFFERS) == {"cupy", "pycuda", "numba"}, "gpu_buffers"
    from repro.ml.distributed import (  # noqa: F401  ml_workload_benchmarks
        distributed_kmeans_hpo,
        distributed_knn,
        distributed_matmul,
    )
    # 17 paper benchmarks + 7 extensions (non-blocking, one-sided, MT, mbw).
    assert len(names) == 24
