"""Shared fixtures for the figure/table reproduction benchmarks.

Every ``bench_*`` file reproduces one table or figure from the paper.  Run
the full harness with::

    pytest benchmarks/ --benchmark-only

Each benchmark prints the regenerated series (OSU-style columns) plus a
paper-vs-measured comparison block, and asserts the *shape* criteria from
DESIGN.md §4 — who wins, by roughly what factor, where crossovers fall.
"""

import pytest


@pytest.fixture
def report():
    """Collect comparison lines and print them at the end of the bench."""
    lines: list[str] = []

    class Reporter:
        def row(self, label: str, paper, measured, unit: str = "us") -> None:
            lines.append(
                f"  {label:<42} paper={paper:>10}  "
                f"measured={measured:>12}  [{unit}]"
            )

        def section(self, title: str) -> None:
            lines.append(f"== {title} ==")

        def table(self, text: str) -> None:
            lines.append(text)

    yield Reporter()
    print()
    for line in lines:
        print(line)
