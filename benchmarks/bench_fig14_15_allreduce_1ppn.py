"""Figs 14/15 — Allreduce latency, 16 nodes x 1 PPN, Frontera.

Paper: OMB-Py overhead 0.93 us (small) / 14.13 us (large).
"""

from figure_common import check_overhead
from repro.simulator import FRONTERA, simulate_collective


def test_fig14_15_allreduce_1ppn(benchmark, report):
    def produce():
        omb = simulate_collective(
            "allreduce", FRONTERA, nodes=16, ppn=1, api="native"
        )
        py = simulate_collective(
            "allreduce", FRONTERA, nodes=16, ppn=1, api="buffer"
        )
        return omb, py

    omb, py = benchmark(produce)
    check_overhead(
        report, "Fig 14/15: Allreduce 16 nodes x 1 PPN, Frontera",
        omb, py, paper_small=0.93, paper_large=14.13,
    )
