"""Figs 4/5 — intra-node CPU latency, OMB vs OMB-Py, Frontera.

Paper: identical trends; OMB-Py overhead 0.44 us (small) / 2.31 us (large).
Also runs the live runtime (native vs bindings ping-pong on threads) to
confirm the same qualitative ordering on real execution.
"""

from figure_common import (
    check_overhead,
    live_latency_table,
    relative_overhead_shrinks,
)
from repro.core.results import average_overhead
from repro.simulator import FRONTERA, simulate_pt2pt


def test_fig04_05_intra_frontera(benchmark, report):
    def produce():
        omb = simulate_pt2pt(FRONTERA, "intra", api="native")
        py = simulate_pt2pt(FRONTERA, "intra", api="buffer")
        return omb, py

    omb, py = benchmark(produce)
    check_overhead(
        report, "Fig 4/5: intra-node latency, Frontera",
        omb, py, paper_small=0.44, paper_large=2.31,
    )
    relative_overhead_shrinks(omb, py)


def test_fig04_05_live_shape(benchmark, report):
    """Live cross-check: bindings add overhead over native, shrinking
    relatively with size, on the real runtime."""
    native, buffered = benchmark.pedantic(
        lambda: (live_latency_table("native"), live_latency_table("buffer")),
        rounds=1, iterations=1,
    )
    small = average_overhead(native, buffered, [1, 2, 4, 8, 16])
    report.section("Fig 4/5 live: native vs bindings ping-pong (threads)")
    report.row("live small-msg overhead (>0 expected)", ">0", f"{small:.2f}")
    assert small > 0
