"""Extension benchmarks beyond the paper's v1 scope.

The paper ships point-to-point and blocking collectives and plans the
rest; the original C OMB already covers non-blocking collectives and
one-sided operations.  These benches exercise this reproduction's
implementations of both:

* ``osu_ibcast`` / ``osu_iallreduce`` — non-blocking collective latency
  plus the OSU-style communication/computation overlap percentage;
* ``osu_put_latency`` / ``osu_get_latency`` / ``osu_acc_latency`` —
  one-sided RMA latency over the window service.
"""

from repro.core import Options, get_benchmark
from repro.core.runner import BenchContext
from repro.mpi.world import run_on_threads

FAST = Options(min_size=4, max_size=4096, iterations=10, warmup=2)


def _run(name, n=2, options=FAST):
    bench = get_benchmark(name)

    def work(comm):
        table = bench.run(BenchContext(comm, options))
        extra = getattr(bench, "overlap_percent", None)
        return table, dict(extra) if extra else {}

    return run_on_threads(n, work, timeout=240)[0]


def test_ext_nonblocking_collectives(benchmark, report):
    def produce():
        return {
            name: _run(name, n=4)
            for name in ("osu_ibcast", "osu_iallreduce")
        }

    results = benchmark.pedantic(produce, rounds=1, iterations=1)
    report.section("Extension: non-blocking collectives (4 ranks)")
    for name, (table, overlap) in results.items():
        for row in table.rows:
            ov = overlap.get(row.size)
            ov_s = f"{ov:5.1f}%" if ov is not None else "  n/a"
            report.table(
                f"  {name:<16} {row.size:>6} B  {row.value:>9.1f} us  "
                f"overlap={ov_s}"
            )
        assert all(r.value > 0 for r in table.rows), name
        # Overlap is a valid percentage wherever it was measured.
        assert all(0.0 <= v <= 100.0 for v in overlap.values()), name


def test_ext_onesided_latency(benchmark, report):
    def produce():
        return {
            name: _run(name)[0]
            for name in (
                "osu_put_latency", "osu_get_latency", "osu_acc_latency"
            )
        }

    tables = benchmark.pedantic(produce, rounds=1, iterations=1)
    report.section("Extension: one-sided RMA latency (2 ranks)")
    for name, table in tables.items():
        first, last = table.rows[0], table.rows[-1]
        report.table(
            f"  {name:<18} {first.size}B={first.value:.1f}us  "
            f"{last.size}B={last.value:.1f}us"
        )
        assert all(r.value > 0 for r in table.rows), name
    # Get is a round trip (request + reply); Put is acked — both pay two
    # message latencies here, so they should be the same order.
    put = tables["osu_put_latency"].rows[0].value
    get = tables["osu_get_latency"].rows[0].value
    assert 0.2 < put / get < 5.0
