"""Figs 12/13 — inter-node CPU bandwidth, OMB vs OMB-Py, Frontera.

Paper: curves agree up to ~32 B; OMB-Py deficit peaks at ~1.05 GB/s in the
512 B - 8 KB band and shrinks to ~331 MB/s for large messages.
"""

import pytest

from figure_common import LARGE
from repro.core.output import format_comparison
from repro.core.results import average_overhead
from repro.simulator import FRONTERA, simulate_pt2pt

MID_BAND = [2 ** k for k in range(9, 14)]    # 512 B .. 8 KB
TINY = [1, 2, 4, 8, 16, 32]


def test_fig12_13_inter_bandwidth(benchmark, report):
    def produce():
        omb = simulate_pt2pt(
            FRONTERA, "inter", api="native", metric="bandwidth"
        )
        py = simulate_pt2pt(
            FRONTERA, "inter", api="buffer", metric="bandwidth"
        )
        return omb, py

    omb, py = benchmark(produce)
    report.section("Fig 12/13: inter-node bandwidth, Frontera (MB/s)")
    report.table(format_comparison([omb, py], ["OMB (native)", "OMB-Py"]))

    tiny_deficit = -average_overhead(omb, py, TINY)
    mid_deficit = -average_overhead(omb, py, MID_BAND)
    large_deficit = -average_overhead(omb, py, LARGE)
    report.row("deficit, tiny msgs (similar)", "~0", f"{tiny_deficit:.0f}",
               "MB/s")
    report.row("deficit, 512B-8KB band", 1050, f"{mid_deficit:.0f}", "MB/s")
    report.row("deficit, large msgs", 331, f"{large_deficit:.0f}", "MB/s")

    assert mid_deficit == pytest.approx(1050, rel=0.25)
    assert large_deficit == pytest.approx(331, rel=0.25)
    # Shape: small sizes nearly identical; mid band worst; large recovers.
    assert tiny_deficit < mid_deficit / 4
    assert large_deficit < mid_deficit
    # OMB-Py never exceeds native bandwidth.
    for size in omb.sizes():
        assert py.row_for(size).value <= omb.row_for(size).value
