"""Figs 8/9 — intra-node CPU latency, OMB vs OMB-Py, RI2.

Paper: 0.41 us small / 1.76 us large average overhead.
"""

from figure_common import check_overhead, relative_overhead_shrinks
from repro.simulator import RI2, simulate_pt2pt


def test_fig08_09_intra_ri2(benchmark, report):
    def produce():
        omb = simulate_pt2pt(RI2, "intra", api="native")
        py = simulate_pt2pt(RI2, "intra", api="buffer")
        return omb, py

    omb, py = benchmark(produce)
    check_overhead(
        report, "Fig 8/9: intra-node latency, RI2",
        omb, py, paper_small=0.41, paper_large=1.76,
    )
    relative_overhead_shrinks(omb, py)
