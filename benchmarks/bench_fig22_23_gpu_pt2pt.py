"""Figs 22/23 — GPU point-to-point latency, three device-buffer libraries
vs OMB-GPU, RI2.

Paper: small-range average overheads 3.54 / 3.44 / 5.85 us and large-range
8.35 / 7.92 / 11.4 us for CuPy / PyCUDA / Numba; CuPy ~= PyCUDA < Numba,
with Numba's latency overhead ~2x.  Also runs the live runtime with the
three simulated array libraries to confirm the ordering emerges from the
real binding code paths (Numba's per-access CAI rebuild).
"""

import pytest

from figure_common import LARGE, SMALL, live_latency_table
from repro.core.output import format_comparison
from repro.core.results import average_overhead
from repro.simulator import RI2_GPU, simulate_pt2pt

PAPER = {
    "cupy": (3.54, 8.35),
    "pycuda": (3.44, 7.92),
    "numba": (5.85, 11.4),
}


def test_fig22_23_gpu_pt2pt(benchmark, report):
    def produce():
        omb = simulate_pt2pt(RI2_GPU, api="native", device="gpu")
        curves = {
            buf: simulate_pt2pt(RI2_GPU, api="buffer", buffer=buf)
            for buf in PAPER
        }
        return omb, curves

    omb, curves = benchmark(produce)
    report.section("Fig 22/23: GPU pt2pt latency, RI2 (8 nodes, V100)")
    report.table(format_comparison(
        [omb] + list(curves.values()),
        ["OMB-GPU"] + list(curves),
    ))

    for buf, (paper_small, paper_large) in PAPER.items():
        small = average_overhead(omb, curves[buf], SMALL)
        large = average_overhead(omb, curves[buf], LARGE)
        report.row(f"{buf} small overhead", paper_small, f"{small:.2f}")
        report.row(f"{buf} large overhead", paper_large, f"{large:.2f}")
        assert small == pytest.approx(paper_small, rel=0.12)
        assert large == pytest.approx(paper_large, rel=0.12)

    # Ordering: CuPy ~= PyCUDA < Numba, Numba ~2x (paper insight 3).
    cupy_small = average_overhead(omb, curves["cupy"], SMALL)
    pycuda_small = average_overhead(omb, curves["pycuda"], SMALL)
    numba_small = average_overhead(omb, curves["numba"], SMALL)
    assert abs(cupy_small - pycuda_small) < 0.2 * cupy_small
    assert 1.4 < numba_small / cupy_small < 2.1


def test_fig22_23_live_gpu_ordering(benchmark, report):
    """Live check: the real bindings + simulated device libraries give
    CuPy/PyCUDA cheaper communication than Numba."""
    def produce():
        return {
            buf: live_latency_table(
                "buffer", buffer=buf, device="gpu", max_size=256,
                iterations=60,
            )
            for buf in ("cupy", "pycuda", "numba")
        }

    tables = benchmark.pedantic(produce, rounds=1, iterations=1)
    small_sizes = [1, 4, 16, 64, 256]
    means = {
        buf: sum(t.row_for(s).value for s in small_sizes) / len(small_sizes)
        for buf, t in tables.items()
    }
    report.section("Fig 22/23 live: small-message latency by GPU buffer")
    for buf, v in means.items():
        report.row(f"{buf} live mean latency", "-", f"{v:.2f}")
    # Numba's layered CAI export must cost more than CuPy's cached one.
    assert means["numba"] > means["cupy"]
    assert means["numba"] > means["pycuda"]
