"""Figs 20/21 — Allgather latency, 16 nodes x 56 PPN (full subscription).

Paper: overhead grows with message size — 8 us at 1 B up to 345 us at
8 KB; past the rendezvous switch it blows up to 41 ms at 32 KB and
averages ~16 ms over the large range.
"""

import pytest

from figure_common import LARGE
from repro.core.output import format_comparison
from repro.core.results import average_overhead
from repro.simulator import FRONTERA, simulate_collective


def test_fig20_21_allgather_56ppn(benchmark, report):
    def produce():
        omb = simulate_collective(
            "allgather", FRONTERA, nodes=16, ppn=56, api="native"
        )
        py = simulate_collective(
            "allgather", FRONTERA, nodes=16, ppn=56, api="buffer"
        )
        return omb, py

    omb, py = benchmark(produce)
    report.section("Fig 20/21: Allgather 16 nodes x 56 PPN, Frontera")
    report.table(format_comparison([omb, py], ["OMB (native)", "OMB-Py"]))

    def delta(n):
        return py.row_for(n).value - omb.row_for(n).value

    report.row("overhead @ 1 B", 8, f"{delta(1):.1f}")
    report.row("overhead @ 8 KB", 345, f"{delta(8192):.0f}")
    report.row("overhead @ 32 KB (peak)", 41000, f"{delta(32768):.0f}")
    large_avg = average_overhead(omb, py, LARGE)
    report.row("avg overhead, large msgs", 16000, f"{large_avg:.0f}")

    assert delta(1) == pytest.approx(8.0, rel=0.25)
    assert delta(8192) == pytest.approx(345.0, rel=0.20)
    assert delta(32768) == pytest.approx(41000.0, rel=0.20)
    assert large_avg == pytest.approx(16000.0, rel=0.35)
    # Shape: monotone growth through the small range, peak at 32 KB.
    small_deltas = [delta(2 ** k) for k in range(0, 14)]
    assert all(b >= a for a, b in zip(small_deltas, small_deltas[1:]))
    assert delta(32768) == max(
        delta(s) for s in omb.sizes()
    )
