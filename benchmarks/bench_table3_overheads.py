"""Table III — the paper's summary of average OMB-Py overheads.

Columns: CPU intra / CPU inter / CPU Allreduce, GPU CuPy / PyCUDA / Numba
(pt2pt), each with a small-range and a large-range row.  Regenerated from
the same simulations as the per-figure benches and asserted as one block.
"""

import pytest

from figure_common import LARGE, SMALL
from repro.core.results import average_overhead
from repro.simulator import (
    FRONTERA,
    RI2_GPU,
    simulate_collective,
    simulate_pt2pt,
)

# (label, paper_small, paper_large) in microseconds.
PAPER = {
    "cpu_intra": (0.44, 2.31),
    "cpu_inter": (0.43, 0.63),
    "cpu_allreduce": (0.93, 14.13),
    "gpu_cupy": (3.54, 8.35),
    "gpu_pycuda": (3.44, 7.92),
    "gpu_numba": (5.85, 11.4),
}


def _measure():
    out = {}
    omb = simulate_pt2pt(FRONTERA, "intra", api="native")
    py = simulate_pt2pt(FRONTERA, "intra", api="buffer")
    out["cpu_intra"] = (
        average_overhead(omb, py, SMALL), average_overhead(omb, py, LARGE)
    )
    omb = simulate_pt2pt(FRONTERA, "inter", api="native")
    py = simulate_pt2pt(FRONTERA, "inter", api="buffer")
    out["cpu_inter"] = (
        average_overhead(omb, py, SMALL), average_overhead(omb, py, LARGE)
    )
    omb = simulate_collective("allreduce", FRONTERA, nodes=16, api="native")
    py = simulate_collective("allreduce", FRONTERA, nodes=16, api="buffer")
    out["cpu_allreduce"] = (
        average_overhead(omb, py, SMALL), average_overhead(omb, py, LARGE)
    )
    gpu_omb = simulate_pt2pt(RI2_GPU, api="native", device="gpu")
    for buf in ("cupy", "pycuda", "numba"):
        py = simulate_pt2pt(RI2_GPU, api="buffer", buffer=buf)
        out[f"gpu_{buf}"] = (
            average_overhead(gpu_omb, py, SMALL),
            average_overhead(gpu_omb, py, LARGE),
        )
    return out


def test_table3_overhead_summary(benchmark, report):
    measured = benchmark(_measure)

    report.section("Table III: average OMB-Py overheads (us)")
    report.table(
        f"  {'column':<16} {'paper S':>9} {'meas S':>9} "
        f"{'paper L':>9} {'meas L':>9}"
    )
    for key, (paper_s, paper_l) in PAPER.items():
        meas_s, meas_l = measured[key]
        report.table(
            f"  {key:<16} {paper_s:>9.2f} {meas_s:>9.2f} "
            f"{paper_l:>9.2f} {meas_l:>9.2f}"
        )
        assert meas_s == pytest.approx(paper_s, rel=0.15), key
        assert meas_l == pytest.approx(paper_l, rel=0.15), key

    # Paper insight: CPU average overheads ~30% latency; the GPU buffers
    # rank CuPy ~= PyCUDA < Numba.
    assert measured["gpu_numba"][0] > measured["gpu_cupy"][0]
    assert measured["gpu_numba"][0] > measured["gpu_pycuda"][0]
