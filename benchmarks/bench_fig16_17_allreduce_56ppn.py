"""Figs 16/17 — Allreduce latency, 16 nodes x 56 PPN (full subscription).

Paper: 4.21 us overhead for small messages; large messages degrade because
mpi4py initializes THREAD_MULTIPLE (OMB's C tests use THREAD_SINGLE) and
the extra progress threads oversubscribe the fully-subscribed cores during
the reduction computation.
"""

import pytest

from figure_common import LARGE, SMALL
from repro.core.output import format_comparison
from repro.core.results import average_overhead
from repro.mpi import constants as C
from repro.simulator import FRONTERA, simulate_collective


def test_fig16_17_allreduce_56ppn(benchmark, report):
    def produce():
        omb = simulate_collective(
            "allreduce", FRONTERA, nodes=16, ppn=56, api="native"
        )
        py = simulate_collective(
            "allreduce", FRONTERA, nodes=16, ppn=56, api="buffer"
        )
        return omb, py

    omb, py = benchmark(produce)
    report.section("Fig 16/17: Allreduce 16 nodes x 56 PPN, Frontera")
    report.table(format_comparison([omb, py], ["OMB (native)", "OMB-Py"]))

    small = average_overhead(omb, py, SMALL)
    report.row("avg overhead, small msgs", 4.21, f"{small:.2f}")
    assert small == pytest.approx(4.21, rel=0.25)

    # Large-message degradation: overhead grows far beyond the small-range
    # constant once the reduction computation is descheduled.
    large = average_overhead(omb, py, LARGE)
    report.row("avg overhead, large msgs (degraded)", ">> small",
               f"{large:.1f}")
    assert large > 10 * small

    # The 1-PPN run shows no such degradation factor.
    one_omb = simulate_collective(
        "allreduce", FRONTERA, nodes=16, ppn=1, api="native"
    )
    one_py = simulate_collective(
        "allreduce", FRONTERA, nodes=16, ppn=1, api="buffer"
    )
    one_large = average_overhead(one_omb, one_py, LARGE)
    assert large > 5 * one_large


def test_thread_level_default_is_multiple(benchmark):
    """The root cause the paper names: mpi4py defaults THREAD_MULTIPLE."""
    from repro.bindings import init

    def check():
        world = init()
        try:
            return world.runtime.thread_level
        finally:
            world.finalize()

    level = benchmark.pedantic(check, rounds=1, iterations=1)
    assert level == C.THREAD_MULTIPLE
