"""Ablation 3 — binding-overhead decomposition.

DESIGN.md §5.3: the simulator models the OMB-Py-vs-OMB delta as a fixed
per-call cost plus a per-byte touch cost.  This ablation zeroes each
component in turn and shows which paper observation each one carries:
the fixed cost explains the small-message overhead, the byte cost the
large-message overhead.
"""

from dataclasses import replace

import pytest

from figure_common import LARGE, SMALL
from repro.core.results import average_overhead
from repro.simulator import FRONTERA
from repro.simulator.api import simulate_pt2pt
from repro.simulator.clusters import ClusterModel


def _variant(call_us=None, byte_us=None) -> ClusterModel:
    binding = FRONTERA.binding_intra
    binding = replace(
        binding,
        call_us=binding.call_us if call_us is None else call_us,
        byte_us=binding.byte_us if byte_us is None else byte_us,
    )
    return replace(FRONTERA, binding_intra=binding)


def test_ablation_overhead_components(benchmark, report):
    def produce():
        out = {}
        for label, cluster in (
            ("full", FRONTERA),
            ("no_call_cost", _variant(call_us=0.0)),
            ("no_byte_cost", _variant(byte_us=0.0)),
        ):
            omb = simulate_pt2pt(cluster, "intra", api="native")
            py = simulate_pt2pt(cluster, "intra", api="buffer")
            out[label] = (
                average_overhead(omb, py, SMALL),
                average_overhead(omb, py, LARGE),
            )
        return out

    results = benchmark(produce)
    report.section("Ablation: binding-overhead decomposition (Frontera)")
    for label, (small, large) in results.items():
        report.table(f"  {label:<14} small={small:.3f}us large={large:.3f}us")

    full_s, full_l = results["full"]
    # Removing the per-call cost kills nearly all small-message overhead.
    assert results["no_call_cost"][0] < 0.15 * full_s
    # Removing the per-byte cost kills most large-message overhead but
    # leaves the small-message overhead intact.
    assert results["no_byte_cost"][1] < 0.25 * full_l
    assert results["no_byte_cost"][0] == pytest.approx(
        2 * FRONTERA.binding_intra.call_us, rel=0.05
    )
