"""Fig 37 — distributed k-means hyper-parameter optimization, 1-224 procs.

Paper: 7,000-point 2-D synthetic set; 1059.45 s sequential -> 11.15 s on
224 processes (95x).  Full scale via the calibrated model; live section
runs the real balanced-k sweep on the paper's dataset shape.
"""

import pytest

from repro.ml.datasets import make_blobs
from repro.ml.distributed import (
    distributed_kmeans_hpo,
    run_sequential_vs_distributed,
    sequential_kmeans_hpo,
)
from repro.simulator import simulate_ml


def test_fig37_kmeans_hpo_speedup_curve(benchmark, report):
    series = benchmark(lambda: simulate_ml("kmeans_hpo"))

    report.section("Fig 37: k-means HPO, RI2 (simulated full scale)")
    report.table(f"  {'procs':>6} {'time_s':>10} {'speedup':>9}")
    for p, t, s in series:
        report.table(f"  {p:>6} {t:>10.2f} {s:>9.1f}")

    by_procs = {p: (t, s) for p, t, s in series}
    report.row("sequential time", 1059.45, f"{by_procs[1][0]:.1f}", "s")
    report.row("time @ 224 procs", 11.15, f"{by_procs[224][0]:.2f}", "s")
    report.row("speedup @ 224 procs", 95.0, f"{by_procs[224][1]:.1f}", "x")
    assert by_procs[1][0] == pytest.approx(1059.45, rel=0.01)
    assert by_procs[224][0] == pytest.approx(11.15, rel=0.10)
    assert by_procs[224][1] == pytest.approx(95.0, rel=0.10)


def test_fig37_kmeans_hpo_live_scaled(benchmark, report):
    """Live run on the paper's dataset shape (7,000 x 2) at small k_max."""
    X, _ = make_blobs(n_samples=7000, n_features=2, centers=5, seed=37)

    def produce():
        return run_sequential_vs_distributed(
            "kmeans_hpo",
            lambda: sequential_kmeans_hpo(X, k_max=8, max_iter=25),
            lambda c: distributed_kmeans_hpo(c, X, k_max=8, max_iter=25),
            processes=4,
        )

    res = benchmark.pedantic(produce, rounds=1, iterations=1)
    report.section("Fig 37 live: 7,000x2 HPO sweep on 4 ranks")
    seq, dist = res.result_sequential, res.result_distributed
    assert set(seq) == set(dist)
    for k in seq:
        assert dist[k] == pytest.approx(seq[k], rel=1e-12)
    report.row("inertia curves identical", "yes", "yes")
    report.row("live speedup (bounded by 1 core)", "-",
               f"{res.speedup:.2f}", "x")
