"""Figs 26/27 — GPU Allgather latency, 8 nodes (1 V100 per node), RI2.

Paper small-range overheads: 12.139 / 11.94 / 17.24 us for CuPy / PyCUDA /
Numba; large-range: 15.28 / 16.54 / 19.72 us.
"""

import pytest

from figure_common import LARGE, SMALL
from repro.core.output import format_comparison
from repro.core.results import average_overhead
from repro.simulator import RI2_GPU, simulate_collective

PAPER_SMALL = {"cupy": 12.139, "pycuda": 11.94, "numba": 17.24}
PAPER_LARGE = {"cupy": 15.28, "pycuda": 16.54, "numba": 19.72}


def test_fig26_27_gpu_allgather(benchmark, report):
    def produce():
        omb = simulate_collective(
            "allgather", RI2_GPU, nodes=8, api="native", buffer="cupy"
        )
        curves = {
            buf: simulate_collective(
                "allgather", RI2_GPU, nodes=8, api="buffer", buffer=buf
            )
            for buf in PAPER_SMALL
        }
        return omb, curves

    omb, curves = benchmark(produce)
    report.section("Fig 26/27: GPU Allgather, 8 nodes, RI2")
    report.table(format_comparison(
        [omb] + list(curves.values()), ["OMB-GPU"] + list(curves)
    ))

    for buf in PAPER_SMALL:
        small = average_overhead(omb, curves[buf], SMALL)
        large = average_overhead(omb, curves[buf], LARGE)
        report.row(f"{buf} small overhead", PAPER_SMALL[buf], f"{small:.2f}")
        report.row(f"{buf} large overhead", PAPER_LARGE[buf], f"{large:.2f}")
        assert small == pytest.approx(PAPER_SMALL[buf], rel=0.12)
        assert large == pytest.approx(PAPER_LARGE[buf], rel=0.30)

    # CuPy and PyCUDA within ~15% of each other at every size.
    for size in omb.sizes():
        c = curves["cupy"].row_for(size).value
        p = curves["pycuda"].row_for(size).value
        assert abs(c - p) < 0.15 * c
