"""Ablation 6 — empirical collective tuning.

Runs the auto-tuner (the MVAPICH2 tuning-table generation process) on
the live runtime and prints the per-size winner table; asserts every
algorithm completes and the tuner's data is internally consistent with
its own winner/switch-point queries.
"""

from repro.core.tuning import format_tuning_table, tune
from repro.mpi.collectives import selector


def test_ablation_live_tuning_table(benchmark, report):
    def produce():
        return {
            op: tune(op, ranks=4, sizes=[64, 4096, 65536],
                     iterations=8, warmup=2)
            for op in ("allreduce", "allgather", "alltoall")
        }

    results = benchmark.pedantic(produce, rounds=1, iterations=1)
    report.section("Ablation: live collective tuning (4 ranks)")
    for op, result in results.items():
        report.table(format_tuning_table(result))
        # Every size has timings for at least two algorithms, all > 0.
        for size, table in result.timings.items():
            assert len(table) >= 2, (op, size)
            assert all(v > 0 for v in table.values()), (op, size)
        # Winner queries agree with the raw data.
        for size in result.timings:
            w = result.winner(size)
            assert result.timings[size][w] == min(
                result.timings[size].values()
            )
        # The selector was restored after tuning.
        assert selector.forced(op) is None
