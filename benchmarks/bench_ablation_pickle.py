"""Ablation 2 — pickle protocol cost decomposition.

DESIGN.md §5.2: how much of the lower-case methods' cost is serialization
(protocol version, payload size) vs transport.  Measures the real codec.
"""

import time

import numpy as np
import pytest

from repro.bindings.pickle_codec import PickleCodec


def _codec_time_us(codec: PickleCodec, payload, iters: int = 200) -> float:
    t0 = time.perf_counter_ns()
    for _ in range(iters):
        codec.loads(codec.dumps(payload))
    return (time.perf_counter_ns() - t0) / iters / 1e3


def test_ablation_pickle_protocols(benchmark, report):
    sizes = (64, 4096, 262144, 1 << 20)

    def produce():
        out = {}
        for protocol in (2, 4, 5):
            codec = PickleCodec(protocol=protocol)
            out[protocol] = {
                n: _codec_time_us(codec, np.zeros(n, dtype=np.uint8))
                for n in sizes
            }
        return out

    times = benchmark.pedantic(produce, rounds=1, iterations=1)
    report.section("Ablation: pickle round-trip cost by protocol (us)")
    for protocol, by_size in times.items():
        row = "  ".join(f"{n}B={v:.1f}" for n, v in by_size.items())
        report.table(f"  protocol {protocol}: {row}")

    # Protocol 5 (out-of-band buffers path in real mpi4py) must not be
    # slower than protocol 2 for large arrays.
    assert times[5][1 << 20] <= times[2][1 << 20] * 1.5
    # Cost grows superlinearly in bytes somewhere past 64 KB — the
    # mechanism behind the paper's Fig 33 divergence.
    for protocol, by_size in times.items():
        assert by_size[1 << 20] > by_size[64]


def test_ablation_pickle_framing_overhead(benchmark, report):
    """Wire-size overhead of pickling vs raw buffer bytes."""
    def produce():
        codec = PickleCodec()
        out = {}
        for n in (16, 1024, 65536):
            arr = np.zeros(n, dtype=np.uint8)
            out[n] = codec.overhead_bytes(arr.nbytes, arr)
        return out

    overheads = benchmark(produce)
    report.section("Ablation: pickle framing bytes over payload")
    for n, ovh in overheads.items():
        report.table(f"  payload {n:>6} B: +{ovh} B framing")
    # Framing is roughly constant: dtype/shape metadata, not data-scaled.
    assert overheads[65536] < overheads[16] + 200
    assert all(v > 0 for v in overheads.values())
