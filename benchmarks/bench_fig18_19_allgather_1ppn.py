"""Figs 18/19 — Allgather latency, 16 nodes x 1 PPN, Frontera.

Paper: OMB-Py overhead 0.92 us (small) / 23.4 us (large).
"""

from figure_common import check_overhead
from repro.simulator import FRONTERA, simulate_collective


def test_fig18_19_allgather_1ppn(benchmark, report):
    def produce():
        omb = simulate_collective(
            "allgather", FRONTERA, nodes=16, ppn=1, api="native"
        )
        py = simulate_collective(
            "allgather", FRONTERA, nodes=16, ppn=1, api="buffer"
        )
        return omb, py

    omb, py = benchmark(produce)
    check_overhead(
        report, "Fig 18/19: Allgather 16 nodes x 1 PPN, Frontera",
        omb, py, paper_small=0.92, paper_large=23.4,
    )
