"""Figs 32-35 — pickle (lower-case) vs direct buffer (upper-case) methods.

Paper: latency overhead 1.07 us small; curves diverge past 64 KB up to
~1510 us at 1 MB (Figs 32/33).  Bandwidth similar up to ~1 KB, pickle
deficit growing to ~2.4 GB/s at 8 KB, partial recovery, then dropping
again past 64 KB (Figs 34/35).  The live section measures the real
pickle codec against real buffer sends on the runtime.
"""

import pytest

from figure_common import SMALL, live_latency_table
from repro.core.output import format_comparison
from repro.core.results import average_overhead
from repro.simulator import FRONTERA, simulate_pt2pt


def test_fig32_33_pickle_latency(benchmark, report):
    def produce():
        direct = simulate_pt2pt(FRONTERA, "inter", api="buffer")
        pickled = simulate_pt2pt(FRONTERA, "inter", api="pickle")
        return direct, pickled

    direct, pickled = benchmark(produce)
    report.section("Fig 32/33: pickle vs direct-buffer latency")
    report.table(format_comparison(
        [direct, pickled], ["direct buffer", "pickle"]
    ))

    small = average_overhead(direct, pickled, SMALL)
    at_1m = pickled.row_for(1 << 20).value - direct.row_for(1 << 20).value
    at_64k = pickled.row_for(65536).value - direct.row_for(65536).value
    report.row("small-range overhead", 1.07, f"{small:.2f}")
    report.row("overhead @ 1 MB", 1510, f"{at_1m:.0f}")
    assert small == pytest.approx(1.07, rel=0.15)
    assert at_1m == pytest.approx(1510, rel=0.15)
    # Divergence starts after 64 KB.
    assert at_1m > 10 * at_64k


def test_fig34_35_pickle_bandwidth(benchmark, report):
    def produce():
        direct = simulate_pt2pt(
            FRONTERA, "inter", api="buffer", metric="bandwidth"
        )
        pickled = simulate_pt2pt(
            FRONTERA, "inter", api="pickle", metric="bandwidth"
        )
        return direct, pickled

    direct, pickled = benchmark(produce)
    report.section("Fig 34/35: pickle vs direct-buffer bandwidth")
    report.table(format_comparison(
        [direct, pickled], ["direct buffer", "pickle"]
    ))

    def deficit(n):
        return direct.row_for(n).value - pickled.row_for(n).value

    report.row("deficit @ 256 B (similar)", "~small", f"{deficit(256):.0f}",
               "MB/s")
    report.row("deficit @ 8 KB", "~2400", f"{deficit(8192):.0f}", "MB/s")
    # Similar at tiny sizes; worst around 8 KB; pickle below everywhere.
    assert deficit(256) < deficit(8192) / 3
    assert deficit(8192) == pytest.approx(2400, rel=0.5)
    for size in direct.sizes():
        assert pickled.row_for(size).value <= direct.row_for(size).value
    # Large messages drop again after the partial recovery (>=64 KB).
    assert deficit(1 << 20) > deficit(32768) * 0.5


def test_fig32_33_live_pickle_overhead(benchmark, report):
    """Live: the real pickle path is slower than the buffer path.

    Scheduling jitter on this 1-core box is several microseconds, so the
    check uses 4 MB payloads — where pickling's extra copy is hundreds of
    microseconds — and takes the median of repeated trials.
    """
    import statistics

    size = 4 << 20

    def produce():
        deltas = []
        for _ in range(3):
            direct = live_latency_table(
                "buffer", max_size=size, iterations=10
            )
            pickled = live_latency_table(
                "pickle", max_size=size, iterations=10
            )
            deltas.append(
                pickled.row_for(size).value - direct.row_for(size).value
            )
        return statistics.median(deltas)

    delta = benchmark.pedantic(produce, rounds=1, iterations=1)
    report.section("Fig 32/33 live: pickle overhead at 4 MB")
    report.row("live pickle overhead @ 4 MB (>0)", ">0", f"{delta:.0f}")
    assert delta > 0
