"""Ablation 4 — k-means HPO work scheduling.

DESIGN.md §5.4: the distributed HPO benchmark assigns k values to ranks
with a cost-balanced (LPT) schedule rather than contiguous blocks, because
the per-k cost grows with k.  This ablation quantifies the makespan gap
analytically and runs both schedules live.
"""

import time

import pytest

from repro.ml.datasets import make_blobs
from repro.ml.distributed.kmeans_hpo import _fit_inertias
from repro.ml.distributed.scheduler import (
    balanced_assignment,
    makespan,
    naive_block_assignment,
)
from repro.mpi.world import run_on_threads


def test_ablation_schedule_makespan_model(benchmark, report):
    """Analytic: LPT vs naive block split under linear cost(k) = k."""
    def produce():
        out = {}
        for k_max, nparts in ((10, 4), (28, 8), (56, 8), (112, 28)):
            ks = list(range(1, k_max + 1))
            lpt = makespan(balanced_assignment(ks, nparts))
            naive = makespan(naive_block_assignment(ks, nparts))
            out[(k_max, nparts)] = (lpt, naive)
        return out

    results = benchmark(produce)
    report.section("Ablation: HPO schedule makespan (cost units)")
    for (k_max, nparts), (lpt, naive) in results.items():
        report.table(
            f"  k_max={k_max:<4} ranks={nparts:<3} "
            f"LPT={lpt:<8.0f} naive={naive:<8.0f} "
            f"gain={naive / lpt:.2f}x"
        )
        assert lpt <= naive
    # The naive split's straggler (the block of largest ks) costs
    # meaningfully more whenever several ks land per rank.
    lpt, naive = results[(28, 8)]
    assert naive / lpt > 1.3


def test_ablation_schedule_live(benchmark, report):
    """Live: wall-clock of balanced vs naive assignment on 4 ranks."""
    X, _ = make_blobs(n_samples=1500, centers=4, seed=41)
    ks = list(range(1, 13))

    def run_schedule(assign_fn) -> float:
        parts = assign_fn(ks, 4)

        def work(comm):
            t0 = time.perf_counter()
            _fit_inertias(X, parts[comm.rank], max_iter=25, random_state=0)
            comm.barrier()
            return time.perf_counter() - t0

        return max(run_on_threads(4, work, timeout=300))

    def produce():
        return (
            run_schedule(balanced_assignment),
            run_schedule(naive_block_assignment),
        )

    balanced_s, naive_s = benchmark.pedantic(produce, rounds=1, iterations=1)
    report.section("Ablation: HPO schedule live wall clock (4 ranks)")
    report.row("balanced (LPT)", "-", f"{balanced_s:.2f}", "s")
    report.row("naive blocks", "-", f"{naive_s:.2f}", "s")
    # On a single-core box both serialize, so wall-clock parity is
    # expected; the live check only asserts both complete with the same
    # total work (covered by equality tests elsewhere) and sane timings.
    assert balanced_s > 0 and naive_s > 0
