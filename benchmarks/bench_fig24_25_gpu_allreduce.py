"""Figs 24/25 — GPU Allreduce latency, 8 nodes (1 V100 per node), RI2.

Paper small-range overheads: 18.64 / 17.63 / 23.1 us for CuPy / PyCUDA /
Numba; large-range: 20.67 / 21.74 / 25.01 us.
"""

import pytest

from figure_common import LARGE, SMALL
from repro.core.output import format_comparison
from repro.core.results import average_overhead
from repro.simulator import RI2_GPU, simulate_collective

PAPER_SMALL = {"cupy": 18.64, "pycuda": 17.63, "numba": 23.1}
PAPER_LARGE = {"cupy": 20.67, "pycuda": 21.74, "numba": 25.01}


def test_fig24_25_gpu_allreduce(benchmark, report):
    def produce():
        omb = simulate_collective(
            "allreduce", RI2_GPU, nodes=8, api="native", buffer="cupy"
        )
        curves = {
            buf: simulate_collective(
                "allreduce", RI2_GPU, nodes=8, api="buffer", buffer=buf
            )
            for buf in PAPER_SMALL
        }
        return omb, curves

    omb, curves = benchmark(produce)
    report.section("Fig 24/25: GPU Allreduce, 8 nodes, RI2")
    report.table(format_comparison(
        [omb] + list(curves.values()), ["OMB-GPU"] + list(curves)
    ))

    for buf in PAPER_SMALL:
        small = average_overhead(omb, curves[buf], SMALL)
        large = average_overhead(omb, curves[buf], LARGE)
        report.row(f"{buf} small overhead", PAPER_SMALL[buf], f"{small:.2f}")
        report.row(f"{buf} large overhead", PAPER_LARGE[buf], f"{large:.2f}")
        assert small == pytest.approx(PAPER_SMALL[buf], rel=0.12)
        # Large range: the paper's values sit only slightly above small;
        # accept the looser band that slightness implies.
        assert large == pytest.approx(PAPER_LARGE[buf], rel=0.25)

    # Ordering holds at every size.
    for size in omb.sizes():
        assert (
            curves["numba"].row_for(size).value
            > curves["cupy"].row_for(size).value
        )
