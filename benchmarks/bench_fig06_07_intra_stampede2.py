"""Figs 6/7 — intra-node CPU latency, OMB vs OMB-Py, Stampede2.

Paper: 0.41 us small / 4.13 us large average overhead; same trend as the
other clusters (paper insight 2: the three CPU architectures differ only
slightly in overhead, never in trend).
"""

from figure_common import check_overhead, relative_overhead_shrinks
from repro.simulator import FRONTERA, RI2, STAMPEDE2, simulate_pt2pt


def test_fig06_07_intra_stampede2(benchmark, report):
    def produce():
        omb = simulate_pt2pt(STAMPEDE2, "intra", api="native")
        py = simulate_pt2pt(STAMPEDE2, "intra", api="buffer")
        return omb, py

    omb, py = benchmark(produce)
    check_overhead(
        report, "Fig 6/7: intra-node latency, Stampede2",
        omb, py, paper_small=0.41, paper_large=4.13,
    )
    relative_overhead_shrinks(omb, py)


def test_same_trend_across_architectures(benchmark, report):
    """Paper insight 2: trends agree across Frontera/Stampede2/RI2."""
    def produce():
        out = {}
        for cluster in (FRONTERA, STAMPEDE2, RI2):
            omb = simulate_pt2pt(cluster, "intra", api="native")
            py = simulate_pt2pt(cluster, "intra", api="buffer")
            out[cluster.name] = (omb, py)
        return out

    curves = benchmark(produce)
    report.section("Cross-architecture trend check")
    for name, (omb, py) in curves.items():
        deltas = [
            py.row_for(s).value - omb.row_for(s).value for s in omb.sizes()
        ]
        # Overhead positive everywhere and grows (weakly) with size.
        assert all(d > 0 for d in deltas), name
        assert deltas[-1] >= deltas[0], name
        report.row(f"{name}: overhead span", "positive",
                   f"{deltas[0]:.2f}..{deltas[-1]:.2f}")
