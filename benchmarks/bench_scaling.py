#!/usr/bin/env python
"""osu-style scaling sweep: collective time vs rank count.

For each rank count N the sweep measures one collective at fixed
message sizes twice — flat (no topology) and hierarchical (with a
``--groups`` node-group map) — and reports the measured speedup next to
the LogGP-model prediction from :mod:`repro.simulator`, the
cross-validation described in ``docs/scaling.md``.  On process
transports the per-rank connection counts are recorded too, which is
where the fabric's O(group + groups) scaling shows up.

Examples (repo root)::

    python benchmarks/bench_scaling.py --ranks 2,8,32 --transport threads
    python benchmarks/bench_scaling.py --ranks 4,16 --transport uds \
        --collective allgather --sizes 8,1024 --groups auto --validate
    python benchmarks/bench_scaling.py --ranks 2,8,32 --transport threads \
        --verify --json /tmp/scaling.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.core.scaling import (                              # noqa: E402
    SCALING_OPS, measure_process, measure_threads, predict_ratio,
)

#: Measured hierarchical/flat ratios this far above the analytic
#: prediction fail --validate; generous because single-host runs
#: oversubscribe cores while the model assumes a quiet cluster.
VALIDATE_SLACK = 1.6


def _measure(args, ranks: int, size: int, groups: str | None) -> dict:
    if args.transport == "threads":
        return measure_threads(
            args.collective, ranks, size, groups=groups,
            iterations=args.iterations, warmup=args.warmup,
            verify=args.verify, timeout=args.timeout,
        )
    return measure_process(
        args.collective, ranks, size, transport=args.transport,
        groups=groups, iterations=args.iterations, warmup=args.warmup,
        timeout=args.timeout,
    )


def run_sweep(args) -> dict:
    points = []
    failures = []
    header = (
        f"{'N':>4} {'size':>8} {'flat_us':>10} {'hier_us':>10} "
        f"{'speedup':>8} {'pred':>6} {'conns flat':>10} {'hier':>6}"
    )
    print(f"# {args.collective} on {args.transport} "
          f"(groups={args.groups}, {args.iterations} iters)")
    print(header)
    for ranks in args.ranks:
        for size in args.sizes:
            flat = _measure(args, ranks, size, None)
            hier = _measure(args, ranks, size, args.groups) \
                if ranks > 2 else None
            measured = (
                hier["latency_us"] / flat["latency_us"]
                if hier and flat["latency_us"] > 0 else None
            )
            predicted = predict_ratio(
                args.collective, ranks, size, args.groups
            ) if hier else None
            point = {
                "ranks": ranks,
                "size": size,
                "flat_us": round(flat["latency_us"], 3),
                "hier_us": None if hier is None
                else round(hier["latency_us"], 3),
                "measured_ratio": None if measured is None
                else round(measured, 4),
                "predicted_ratio": None if predicted is None
                else round(predicted, 4),
                "flat_connections": flat.get("max_connections"),
                "hier_connections": None if hier is None
                else hier.get("max_connections"),
            }
            points.append(point)
            hier_s = "-" if point["hier_us"] is None \
                else f"{point['hier_us']:.2f}"
            speedup_s = f"{1 / measured:.2f}x" if measured else "-"
            pred_s = f"{predicted:.2f}" if predicted else "-"
            print(
                f"{ranks:>4} {size:>8} {point['flat_us']:>10.2f} "
                f"{hier_s:>10} {speedup_s:>8} {pred_s:>6} "
                f"{str(point['flat_connections'] or '-'):>10} "
                f"{str(point['hier_connections'] or '-'):>6}"
            )
            if args.validate and measured is not None \
                    and predicted is not None \
                    and measured > predicted * VALIDATE_SLACK:
                failures.append(
                    f"{args.collective} N={ranks} size={size}: measured "
                    f"hier/flat ratio {measured:.2f} exceeds LogGP "
                    f"prediction {predicted:.2f} x slack {VALIDATE_SLACK}"
                )
    return {
        "schema": "ombpy-bench-scaling/1",
        "collective": args.collective,
        "transport": args.transport,
        "groups": args.groups,
        "iterations": args.iterations,
        "warmup": args.warmup,
        "verify": args.verify,
        "points": points,
        "validation_failures": failures,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--ranks", default="2,8,32",
        help="comma-separated rank counts to sweep (default 2,8,32)",
    )
    parser.add_argument(
        "--sizes", default="8,1024",
        help="comma-separated message sizes in bytes (default 8,1024)",
    )
    parser.add_argument(
        "--collective", default="allreduce", choices=SCALING_OPS,
        help="collective to sweep (default allreduce)",
    )
    parser.add_argument(
        "--transport", default="threads",
        choices=("threads", "tcp", "uds", "shm"),
        help="threads = in-process fabric; tcp/uds/shm = real process "
        "ranks under the launcher",
    )
    parser.add_argument(
        "--groups", default="auto",
        help="node-group spec for the hierarchical leg (default auto)",
    )
    parser.add_argument("--iterations", type=int, default=20)
    parser.add_argument("--warmup", type=int, default=3)
    parser.add_argument(
        "--timeout", type=float, default=300.0,
        help="per-measurement timeout in seconds",
    )
    parser.add_argument(
        "--verify", action="store_true",
        help="run every rank under the runtime verifier "
        "(threads transport only)",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="fail if a measured hier/flat ratio exceeds the LogGP "
        "prediction by more than the slack factor",
    )
    parser.add_argument(
        "--json", default=None, metavar="FILE",
        help="also write the sweep as JSON to FILE",
    )
    args = parser.parse_args(argv)
    args.ranks = [int(v) for v in str(args.ranks).split(",") if v]
    args.sizes = [int(v) for v in str(args.sizes).split(",") if v]
    if args.verify and args.transport != "threads":
        parser.error("--verify needs --transport threads")

    doc = run_sweep(args)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.json}")
    if doc["validation_failures"]:
        for line in doc["validation_failures"]:
            print(f"VALIDATION FAILURE: {line}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
