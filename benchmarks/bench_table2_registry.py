"""Table II — the benchmark list OMB-Py supports, regenerated from the
registry and exercised live (every benchmark runs a minimal sweep)."""

from repro.core import Options, available_benchmarks, get_benchmark
from repro.core.registry import CATEGORIES
from repro.core.runner import BenchContext
from repro.mpi.world import run_on_threads

_PAPER_TABLE2 = {
    "pt2pt": {
        "osu_bibw", "osu_bw", "osu_latency", "osu_multi_lat",
    },
    "collective": {
        "osu_allgather", "osu_allreduce", "osu_alltoall", "osu_barrier",
        "osu_bcast", "osu_gather", "osu_reduce_scatter", "osu_reduce",
        "osu_scatter",
    },
    "vector": {
        "osu_allgatherv", "osu_alltoallv", "osu_gatherv", "osu_scatterv",
    },
}


def test_table2_supported_benchmarks(benchmark, report):
    opts = Options(min_size=1, max_size=16, iterations=2, warmup=0)

    def run_all():
        results = {}
        for name in available_benchmarks():
            bench = get_benchmark(name)
            tables = run_on_threads(
                4, lambda c, b=bench: b.run(BenchContext(c, opts)),
                timeout=60,
            )
            results[name] = len(tables[0])
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    report.section("Table II: supported benchmarks (rows per sweep)")
    for category, names in CATEGORIES.items():
        report.table(f"  {category}: {', '.join(names)}")

    # Registry must match the paper's Table II exactly, and every entry
    # must produce measurements.
    for category, expected in _PAPER_TABLE2.items():
        assert set(CATEGORIES[category]) == expected, category
    for name, nrows in results.items():
        assert nrows >= 1, name
