#!/usr/bin/env python
"""GPU-aware communication with CuPy / PyCUDA / Numba device buffers.

Demonstrates the CUDA-Array-Interface path the paper evaluates in
Figs. 22-27: device arrays from three libraries passed directly to the
upper-case communication methods, plus a latency comparison showing the
CuPy ~= PyCUDA < Numba ordering that emerges from each library's buffer
export cost.  Runs on the simulated device (no GPU required).

Usage::

    python examples/gpu_buffers.py [--ranks 2]
"""

import argparse

import numpy as np

from repro.bindings import Comm
from repro.core import Options, get_benchmark
from repro.core.output import format_comparison
from repro.core.runner import BenchContext
from repro.gpu import cupy_sim as cp
from repro.gpu import numba_sim, pycuda_sim
from repro.gpu.device import current_device
from repro.mpi import ops
from repro.mpi.world import run_on_threads


def demo_allreduce(ranks: int) -> None:
    """The mpi4py GPU tutorial's allreduce, on all three libraries."""
    def work(rt):
        comm = Comm(rt)
        # CuPy, as in the mpi4py docs.
        sendbuf = cp.arange(10, dtype="f8") + comm.rank
        recvbuf = cp.zeros(10, dtype="f8")
        cp.cuda.get_current_stream().synchronize()
        comm.Allreduce(sendbuf, recvbuf, ops.SUM)
        # PyCUDA.
        pa = pycuda_sim.gpuarray.to_gpu(np.full(4, float(comm.rank)))
        pb = pycuda_sim.gpuarray.zeros(4)
        comm.Allreduce(pa, pb, ops.SUM)
        # Numba.
        na = numba_sim.cuda.to_device(np.ones(4))
        nb = numba_sim.cuda.device_array(4)
        comm.Allreduce(na, nb, ops.SUM)
        if comm.rank == 0:
            print(f"cupy allreduce:   {recvbuf.get()[:4]} ...")
            print(f"pycuda allreduce: {pb.get()}")
            print(f"numba allreduce:  {nb.copy_to_host()}")
    run_on_threads(ranks, work)


def demo_latency_ordering(ranks: int) -> None:
    """osu_latency with each device-buffer library."""
    tables = []
    for buf in ("cupy", "pycuda", "numba"):
        opts = Options(
            device="gpu", buffer=buf, min_size=1, max_size=4096,
            iterations=60, warmup=10,
        )
        bench = get_benchmark("osu_latency")
        results = run_on_threads(
            ranks, lambda c, b=bench, o=opts: b.run(BenchContext(c, o))
        )
        tables.append(results[0])
    print("\nGPU buffer latency comparison (us):")
    print(format_comparison(tables, ["cupy", "pycuda", "numba"]))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=2)
    args = parser.parse_args()

    demo_allreduce(args.ranks)
    demo_latency_ordering(args.ranks)

    stats = current_device().stats
    print(f"device traffic: h2d={stats.h2d_bytes}B d2h={stats.d2h_bytes}B "
          f"kernels={stats.kernel_launches}")


if __name__ == "__main__":
    main()
