#!/usr/bin/env python
"""Project OMB-Py performance onto the paper's HPC clusters.

Uses the calibrated simulator to answer "what would this benchmark report
on Frontera / Stampede2 / RI2?" — the tool the figure benchmarks are built
on.  Prints the paper's headline comparisons:

* intra-node latency, OMB vs OMB-Py, on all three clusters (Figs 4-9);
* Allreduce at 1 vs 56 processes per node (Figs 14-17);
* GPU pt2pt latency for the three device-buffer libraries (Figs 22/23);
* the projected distributed-ML speedup curve (Figs 36-38).

Usage::

    python examples/cluster_projection.py [--cluster Frontera]
"""

import argparse

from repro.core.output import format_comparison
from repro.simulator import (
    CLUSTERS,
    RI2_GPU,
    simulate_collective,
    simulate_ml,
    simulate_pt2pt,
)

SIZES = [2 ** k for k in range(0, 21, 2)]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--cluster", default="Frontera",
        choices=[c for c in CLUSTERS if c != "RI2-GPU"],
    )
    args = parser.parse_args()
    cluster = CLUSTERS[args.cluster]

    print(f"=== {cluster.name}: intra-node latency, OMB vs OMB-Py (us) ===")
    omb = simulate_pt2pt(cluster, "intra", api="native", sizes=SIZES)
    py = simulate_pt2pt(cluster, "intra", api="buffer", sizes=SIZES)
    pickled = simulate_pt2pt(cluster, "intra", api="pickle", sizes=SIZES)
    print(format_comparison([omb, py, pickled],
                            ["OMB (C)", "OMB-Py buffer", "OMB-Py pickle"]))

    print(f"=== {cluster.name}: Allreduce, {cluster.max_nodes} nodes, "
          f"1 vs {cluster.node.cores} PPN (us) ===")
    one = simulate_collective(
        "allreduce", cluster, nodes=cluster.max_nodes, ppn=1,
        api="buffer", sizes=SIZES,
    )
    full = simulate_collective(
        "allreduce", cluster, nodes=cluster.max_nodes,
        ppn=cluster.node.cores, api="buffer", sizes=SIZES,
    )
    print(format_comparison([one, full], ["1 PPN", "full PPN"]))

    print("=== RI2 GPU pt2pt latency by device buffer (us) ===")
    gpu_tables = [
        simulate_pt2pt(RI2_GPU, api="buffer", buffer=buf, sizes=SIZES)
        for buf in ("cupy", "pycuda", "numba")
    ]
    print(format_comparison(gpu_tables, ["cupy", "pycuda", "numba"]))

    print("=== Projected distributed-ML speedups on RI2 (Figs 36-38) ===")
    print(f"{'procs':>6} {'knn':>8} {'kmeans':>8} {'matmul':>8}")
    curves = {w: dict((p, s) for p, _t, s in simulate_ml(w))
              for w in ("knn", "kmeans_hpo", "matmul")}
    for procs in sorted(curves["knn"]):
        print(f"{procs:>6} {curves['knn'][procs]:>7.1f}x "
              f"{curves['kmeans_hpo'][procs]:>7.1f}x "
              f"{curves['matmul'][procs]:>7.1f}x")


if __name__ == "__main__":
    main()
