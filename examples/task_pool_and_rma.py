#!/usr/bin/env python
"""Advanced runtime features: task pools and one-sided communication.

Two patterns the paper's ecosystem (mpi4py) popularized beyond raw
message passing, implemented here on the same runtime:

* ``MPIPoolExecutor`` — master/worker task farming (mpi4py.futures
  style), used to parallelize an irregular workload;
* one-sided RMA — a shared counter and a halo exchange implemented with
  ``Win.Put``/``Get``/``Accumulate`` instead of matched send/recv pairs.

Usage::

    python examples/task_pool_and_rma.py [--ranks 4]
"""

import argparse

import numpy as np

from repro.mpi import ops
from repro.mpi.futures import MPIPoolExecutor
from repro.mpi.rma import Win
from repro.mpi.world import run_on_threads


def _simulate_inference(batch: int) -> float:
    """Stand-in for an irregular per-task computation."""
    rng = np.random.default_rng(batch)
    m = rng.normal(size=(64 + batch % 64, 64))
    return float(np.linalg.norm(m @ m.T))


def demo_task_pool(ranks: int) -> None:
    print(f"--- MPIPoolExecutor on {ranks} ranks ---")

    def work(comm):
        with MPIPoolExecutor(comm) as pool:
            if pool is not None:
                results = pool.map(_simulate_inference, range(12))
                print(f"  12 tasks farmed to {comm.size - 1} workers; "
                      f"first results: {[f'{r:.1f}' for r in results[:3]]}")
    run_on_threads(ranks, work)


def demo_rma_counter(ranks: int) -> None:
    print(f"--- one-sided shared counter on {ranks} ranks ---")

    def work(comm):
        counter = np.zeros(1, dtype="i8")
        win = Win(comm, counter)
        try:
            # Every rank atomically adds its contribution to rank 0.
            win.Accumulate(
                np.array([comm.rank + 1], dtype="i8"), 0, ops.SUM
            )
            win.Fence()
            if comm.rank == 0:
                expect = comm.size * (comm.size + 1) // 2
                print(f"  accumulated counter: {counter[0]} "
                      f"(expected {expect})")
        finally:
            win.Free()
    run_on_threads(ranks, work)


def demo_rma_halo(ranks: int) -> None:
    print(f"--- one-sided halo exchange on {ranks} ranks ---")

    def work(comm):
        p, r = comm.size, comm.rank
        # Each rank owns interior cells + 2 halo slots [left | core | right].
        core = 4
        field = np.full(core + 2, float(r), dtype="f8")
        win = Win(comm, field)
        try:
            win.Fence()
            # Push my boundary cells into the neighbours' halo slots.
            right, left = (r + 1) % p, (r - 1) % p
            win.Put(field[core:core + 1], right, offset=0)  # their left halo
            win.Put(field[1:2], left, offset=(core + 1) * 8)  # their right
            win.Fence()
            assert field[0] == float(left)
            assert field[core + 1] == float(right)
        finally:
            win.Free()
        if r == 0:
            print(f"  halo exchange verified on {p} ranks")
    run_on_threads(ranks, work)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=4)
    args = parser.parse_args()
    demo_task_pool(args.ranks)
    demo_rma_counter(args.ranks)
    demo_rma_halo(args.ranks)


if __name__ == "__main__":
    main()
