#!/usr/bin/env python
"""Distributed Monte Carlo estimation of pi.

The workload the paper's related work (Wazir et al., Raspberry Pi
cluster) uses to compare mpi4py against sequential execution: each rank
samples points in the unit square independently; hit counts are combined
with a single Reduce.  Near-zero communication, so it scales almost
perfectly — the opposite end of the communication-intensity spectrum from
the micro-benchmarks.

Usage::

    python examples/monte_carlo_pi.py [--ranks 4] [--samples 2000000]
    ombpy-run -n 4 python examples/monte_carlo_pi.py --samples 2000000
"""

import argparse
import math
import os
import time

import numpy as np

from repro.mpi import init, ops
from repro.mpi.world import ENV_RANK, run_on_threads


def local_hits(samples: int, seed: int) -> int:
    """Count samples landing inside the quarter circle (vectorized)."""
    rng = np.random.default_rng(seed)
    hits = 0
    chunk = 1 << 20
    remaining = samples
    while remaining > 0:
        n = min(chunk, remaining)
        x = rng.random(n)
        y = rng.random(n)
        hits += int(np.count_nonzero(x * x + y * y <= 1.0))
        remaining -= n
    return hits


def estimate(comm, total_samples: int) -> float | None:
    """Distributed estimate; result on rank 0."""
    share = total_samples // comm.size
    if comm.rank == comm.size - 1:
        share += total_samples % comm.size
    hits = local_hits(share, seed=1234 + comm.rank)
    combined = comm.reduce_array(
        np.array([hits, share], dtype="i8"), ops.SUM, 0
    )
    if combined is None:
        return None
    return 4.0 * combined[0] / combined[1]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--samples", type=int, default=2_000_000)
    args = parser.parse_args()

    if ENV_RANK in os.environ:
        world = init()
        try:
            t0 = time.perf_counter()
            pi = estimate(world.comm, args.samples)
            if world.rank == 0:
                _report(pi, args.samples, world.size, time.perf_counter() - t0)
        finally:
            world.finalize()
        return

    t0 = time.perf_counter()
    results = run_on_threads(
        args.ranks, lambda c: estimate(c, args.samples)
    )
    _report(results[0], args.samples, args.ranks, time.perf_counter() - t0)


def _report(pi: float, samples: int, ranks: int, seconds: float) -> None:
    err = abs(pi - math.pi)
    print(f"pi ~= {pi:.6f} from {samples:,} samples on {ranks} ranks "
          f"({seconds:.2f} s); |error| = {err:.2e}")
    # Monte Carlo error scales ~1/sqrt(n); allow a wide safety factor.
    assert err < 20.0 / math.sqrt(samples), "estimate outside noise bounds"


if __name__ == "__main__":
    main()
