#!/usr/bin/env python
"""The paper's three distributed ML benchmarks, sequential vs parallel.

Runs k-NN classification (Dota2-shaped synthetic data), k-means
hyper-parameter optimization, and distributed matrix multiplication on N
ranks, reporting execution time and speedup versus sequential execution —
the laptop-scale version of the paper's Figs. 36-38 (their full-scale
curves are reproduced by ``benchmarks/bench_fig36..38``).

Usage::

    python examples/distributed_ml.py [--ranks 4] [--scale 0.02]

``--scale`` shrinks the paper's dataset sizes (1.0 = full paper sizes:
102,944 x 116 k-NN set and 4704 x 4704 matrices — minutes of compute).
"""

import argparse

from repro.ml.datasets import dota2_like, make_blobs, random_matrix, train_test_split
from repro.ml.distributed import (
    distributed_kmeans_hpo,
    distributed_knn,
    distributed_matmul,
    run_sequential_vs_distributed,
    sequential_kmeans_hpo,
    sequential_knn,
    sequential_matmul,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--scale", type=float, default=0.02)
    args = parser.parse_args()

    results = []

    # --- k-NN (paper §IV-G-1) ---
    n = max(int(102_944 * args.scale), 400)
    X, y = dota2_like(n_samples=n, seed=1)
    Xtr, Xte, ytr, yte = train_test_split(X, y, seed=1)
    results.append(run_sequential_vs_distributed(
        "knn",
        lambda: sequential_knn(Xtr, ytr, Xte, yte),
        lambda c: distributed_knn(c, Xtr, ytr, Xte, yte),
        processes=args.ranks,
    ))
    print(f"k-NN: {n} samples, accuracy seq="
          f"{results[-1].result_sequential:.4f} "
          f"dist={results[-1].result_distributed:.4f}")

    # --- k-means HPO (paper §IV-G-2; dataset is 7,000 x 2 in the paper) ---
    Xb, _ = make_blobs(n_samples=max(int(7000 * args.scale * 10), 500),
                       centers=5, seed=2)
    k_max = 8
    results.append(run_sequential_vs_distributed(
        "kmeans_hpo",
        lambda: sequential_kmeans_hpo(Xb, k_max=k_max, max_iter=30),
        lambda c: distributed_kmeans_hpo(c, Xb, k_max=k_max, max_iter=30),
        processes=args.ranks,
    ))
    print(f"k-means HPO: {len(Xb)} points, k=1..{k_max}")

    # --- matmul (paper §IV-G-3; 4704 x 4704 in the paper) ---
    dim = max(int(4704 * args.scale * 10), 128)
    A, B = random_matrix(dim, seed=3), random_matrix(dim, seed=4)
    results.append(run_sequential_vs_distributed(
        "matmul",
        lambda: sequential_matmul(A, B),
        lambda c: distributed_matmul(c, A, B),
        processes=args.ranks,
    ))
    print(f"matmul: {dim} x {dim}")

    print(f"\n{'workload':<12} {'ranks':>5} {'seq (s)':>9} "
          f"{'dist (s)':>9} {'speedup':>8}")
    for r in results:
        print(f"{r.workload:<12} {r.processes:>5} {r.sequential_s:>9.3f} "
              f"{r.distributed_s:>9.3f} {r.speedup:>7.2f}x")
    print("\nNote: on a single-core machine the distributed runs cannot "
          "beat sequential;\nthe full-scale speedup curves (Figs 36-38) are "
          "reproduced by the calibrated\nmodel in "
          "benchmarks/bench_fig36..38.")


if __name__ == "__main__":
    main()
