#!/usr/bin/env python
"""Quickstart: run OMB-Py benchmarks in one process or many.

Single process (ranks as threads, no launcher needed)::

    python examples/quickstart.py

Real processes over the TCP mesh::

    ombpy-run -n 2 python examples/quickstart.py
    # or equivalently: python -m repro.mpi.launcher -n 2 examples/quickstart.py

The script measures point-to-point latency and Allreduce latency with the
mpi4py-workalike buffer API and prints OSU-style tables.
"""

import os

from repro.core import Options, get_benchmark
from repro.core.output import print_table
from repro.core.runner import BenchContext
from repro.mpi import init
from repro.mpi.world import ENV_RANK, run_on_threads

OPTS = Options(min_size=1, max_size=65536, iterations=50, warmup=5)


def run_under_launcher() -> None:
    world = init()
    try:
        for name in ("osu_latency", "osu_allreduce"):
            table = get_benchmark(name).run(BenchContext(world.comm, OPTS))
            if world.rank == 0:
                print_table(table)
                print()
    finally:
        world.finalize()


def run_self_hosted(ranks: int = 2) -> None:
    print(f"(no launcher detected: self-hosting {ranks} ranks as threads)\n")
    for name in ("osu_latency", "osu_allreduce"):
        bench = get_benchmark(name)
        tables = run_on_threads(
            ranks, lambda comm, b=bench: b.run(BenchContext(comm, OPTS))
        )
        print_table(tables[0])
        print()


if __name__ == "__main__":
    if ENV_RANK in os.environ:
        run_under_launcher()
    else:
        run_self_hosted()
