#!/usr/bin/env python
"""2-D heat diffusion with halo exchange on a Cartesian grid.

The canonical MPI application pattern: the domain is block-partitioned
over a process grid; each Jacobi iteration exchanges one-cell halos with
the four neighbours, then applies the 5-point stencil.  Exercises the
Cartesian topology module, Sendrecv halo exchange, and an Allreduce
convergence check — the communication mix the paper's micro-benchmarks
exist to characterize.

Usage::

    python examples/heat_diffusion.py [--ranks 4] [--n 96] [--iters 200]
"""

import argparse

import numpy as np

from repro.mpi import ops
from repro.mpi.topology import CartComm, dims_create
from repro.mpi.world import run_on_threads


def solve(comm, n: int, iters: int, tol: float) -> tuple[np.ndarray, int]:
    """Jacobi solve of a hot-edge plate; returns (local block, iters)."""
    dims = dims_create(comm.size, 2)
    cart = CartComm(comm, dims, periods=[False, False])
    grid = cart.comm
    assert grid is not None
    py, px = cart.Get_coords()

    # Local block (rows x cols) + 1-cell halo on each side.
    rows, cols = n // dims[0], n // dims[1]
    u = np.zeros((rows + 2, cols + 2))
    # Boundary condition: the global top edge is held at 100 degrees.
    if py == 0:
        u[0, :] = 100.0

    up_src, up_dst = cart.Shift(0, 1)      # (from above, to below)
    left_src, left_dst = cart.Shift(1, 1)

    tag = 7
    for it in range(1, iters + 1):
        # Vertical halos: send my bottom row down, receive top halo, etc.
        down = grid.sendrecv_bytes(
            u[rows, 1:cols + 1].tobytes(), up_dst, tag, up_src, tag,
            cols * 8,
        )[0]
        if up_src >= 0:
            u[0, 1:cols + 1] = np.frombuffer(down, dtype="f8")
        upw = grid.sendrecv_bytes(
            u[1, 1:cols + 1].tobytes(), up_src, tag, up_dst, tag, cols * 8,
        )[0]
        if up_dst >= 0:
            u[rows + 1, 1:cols + 1] = np.frombuffer(upw, dtype="f8")
        # Horizontal halos.
        right = grid.sendrecv_bytes(
            np.ascontiguousarray(u[1:rows + 1, cols]).tobytes(),
            left_dst, tag, left_src, tag, rows * 8,
        )[0]
        if left_src >= 0:
            u[1:rows + 1, 0] = np.frombuffer(right, dtype="f8")
        leftw = grid.sendrecv_bytes(
            np.ascontiguousarray(u[1:rows + 1, 1]).tobytes(),
            left_src, tag, left_dst, tag, rows * 8,
        )[0]
        if left_dst >= 0:
            u[1:rows + 1, cols + 1] = np.frombuffer(leftw, dtype="f8")

        new_core = 0.25 * (
            u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
        )
        delta = float(np.max(np.abs(new_core - u[1:-1, 1:-1])))
        u[1:-1, 1:-1] = new_core
        if py == 0:
            u[0, :] = 100.0

        global_delta = grid.allreduce_array(
            np.array([delta]), ops.MAX
        )[0]
        if global_delta < tol:
            return u[1:-1, 1:-1], it
    return u[1:-1, 1:-1], iters


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--n", type=int, default=96)
    parser.add_argument("--iters", type=int, default=200)
    parser.add_argument("--tol", type=float, default=1e-3)
    args = parser.parse_args()

    def work(comm):
        block, iters = solve(comm, args.n, args.iters, args.tol)
        return comm.rank, float(block.mean()), iters

    results = run_on_threads(args.ranks, work, timeout=600)
    print(f"{args.n}x{args.n} plate on {args.ranks} ranks "
          f"({dims_create(args.ranks, 2)} grid):")
    for rank, mean, iters in results:
        print(f"  rank {rank}: block mean temperature {mean:7.3f} "
              f"after {iters} iterations")
    top_blocks = [m for r, m, _ in results[: args.ranks // 2 or 1]]
    print(f"  (top blocks are hotter: {max(top_blocks):.1f} near the "
          "100-degree edge)")


if __name__ == "__main__":
    main()
