#!/usr/bin/env python
"""2-D heat diffusion with halo exchange on a Cartesian grid.

The canonical MPI application pattern: the domain is block-partitioned
over a process grid; each Jacobi iteration exchanges one-cell halos with
the four neighbours, then applies the 5-point stencil.  Exercises the
Cartesian topology module, Sendrecv halo exchange, and an Allreduce
convergence check — the communication mix the paper's micro-benchmarks
exist to characterize.

Usage::

    python examples/heat_diffusion.py [--ranks 4] [--n 96] [--iters 200]
"""

import argparse

import numpy as np

from repro.mpi import ops
from repro.mpi.topology import CartComm, dims_create
from repro.mpi.world import run_on_threads


def solve(comm, n: int, iters: int, tol: float) -> tuple[np.ndarray, int]:
    """Jacobi solve of a hot-edge plate; returns (local block, iters)."""
    dims = dims_create(comm.size, 2)
    cart = CartComm(comm, dims, periods=[False, False])
    grid = cart.comm
    assert grid is not None
    py, px = cart.Get_coords()

    # Local block (rows x cols) + 1-cell halo on each side.
    rows, cols = n // dims[0], n // dims[1]
    u = np.zeros((rows + 2, cols + 2))
    # Boundary condition: the global top edge is held at 100 degrees.
    if py == 0:
        u[0, :] = 100.0

    up_src, up_dst = cart.Shift(0, 1)      # (from above, to below)
    left_src, left_dst = cart.Shift(1, 1)

    # One tag per direction; halos cross as four nonblocking pairs.
    tag_down, tag_up, tag_right, tag_left = 7, 8, 9, 10

    # Staging buffers for the outgoing halo rows/columns, double-buffered:
    # the fabric hands payloads to the receiver by reference, so set A may
    # still be read by a neighbour finishing iteration i while we stage
    # iteration i+1 — which must therefore use set B.  By i+2 the
    # neighbour's unpack of set A is ordered before our waits, so
    # alternating two sets is sufficient.
    stage = [
        [np.empty(cols), np.empty(cols), np.empty(rows), np.empty(rows)]
        for _ in range(2)
    ]
    views = [[b.data.cast("B") for b in bufs] for bufs in stage]

    core = np.empty((rows, cols))
    diff = np.empty((rows, cols))
    local_delta = np.empty(1)

    for it in range(1, iters + 1):
        # Post all four halo receives before any send (deadlock-free in
        # any grid shape), then stage and send, then complete everything.
        r_top = grid.irecv_bytes(up_src, tag_down, cols * 8)
        r_bot = grid.irecv_bytes(up_dst, tag_up, cols * 8)
        r_lft = grid.irecv_bytes(left_src, tag_right, rows * 8)
        r_rgt = grid.irecv_bytes(left_dst, tag_left, rows * 8)

        bot, top, rgt, lft = stage[it & 1]
        bview, tview, rview, lview = views[it & 1]
        bot[:] = u[rows, 1:cols + 1]
        top[:] = u[1, 1:cols + 1]
        rgt[:] = u[1:rows + 1, cols]
        lft[:] = u[1:rows + 1, 1]

        sends = (
            grid.isend_bytes(bview, up_dst, tag_down),
            grid.isend_bytes(tview, up_src, tag_up),
            grid.isend_bytes(rview, left_dst, tag_right),
            grid.isend_bytes(lview, left_src, tag_left),
        )
        for req in (r_top, r_bot, r_lft, r_rgt, *sends):
            req.wait()

        if up_src >= 0:
            u[0, 1:cols + 1] = memoryview(r_top.payload()).cast("d")
        if up_dst >= 0:
            u[rows + 1, 1:cols + 1] = memoryview(r_bot.payload()).cast("d")
        if left_src >= 0:
            u[1:rows + 1, 0] = memoryview(r_lft.payload()).cast("d")
        if left_dst >= 0:
            u[1:rows + 1, cols + 1] = memoryview(r_rgt.payload()).cast("d")

        # 5-point stencil into preallocated scratch (no per-iter allocs).
        np.add(u[:-2, 1:-1], u[2:, 1:-1], out=core)
        np.add(core, u[1:-1, :-2], out=core)
        np.add(core, u[1:-1, 2:], out=core)
        core *= 0.25
        np.subtract(core, u[1:-1, 1:-1], out=diff)
        np.abs(diff, out=diff)
        local_delta[0] = diff.max()
        u[1:-1, 1:-1] = core
        if py == 0:
            u[0, :] = 100.0

        global_delta = grid.allreduce_array(local_delta, ops.MAX)[0]
        if global_delta < tol:
            return u[1:-1, 1:-1], it
    return u[1:-1, 1:-1], iters


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, default=4)
    parser.add_argument("--n", type=int, default=96)
    parser.add_argument("--iters", type=int, default=200)
    parser.add_argument("--tol", type=float, default=1e-3)
    args = parser.parse_args()

    def work(comm):
        block, iters = solve(comm, args.n, args.iters, args.tol)
        return comm.rank, float(block.mean()), iters

    results = run_on_threads(args.ranks, work, timeout=600)
    print(f"{args.n}x{args.n} plate on {args.ranks} ranks "
          f"({dims_create(args.ranks, 2)} grid):")
    for rank, mean, iters in results:
        print(f"  rank {rank}: block mean temperature {mean:7.3f} "
              f"after {iters} iterations")
    top_blocks = [m for r, m, _ in results[: args.ranks // 2 or 1]]
    print(f"  (top blocks are hotter: {max(top_blocks):.1f} near the "
          "100-degree edge)")


if __name__ == "__main__":
    main()
